//! One `solve()` entry point over every homotopy driver.
//!
//! The drivers grew one at a time — [`crate::tracker::track`] (one
//! path), [`crate::lockstep::track_lockstep`] (shared front),
//! [`crate::queue::track_queue`] (refilling slot front),
//! [`crate::escalate::track_escalating_engine`] (precision retry) —
//! each with its own signature, slot sizing and result type. This
//! module puts one surface over all of them:
//!
//! * [`SolveRequest`] — *what* to solve: the target system, the start
//!   system and start points, the tolerances, a
//!   [`PrecisionPolicy`] (fixed precision or escalate-on-failure) and
//!   a [`SchedulerKind`];
//! * [`Scheduler`] — the object-safe trait the existing drivers now
//!   implement ([`PerPathScheduler`], [`LockstepScheduler`],
//!   [`QueueScheduler`]); schedulers are *performance* choices — the
//!   per-path and queue schedulers produce bit-identical endpoints;
//! * [`Solver`] — *where* to solve: it owns an engine spec
//!   ([`EngineBuilder`]) and provisions engines per precision on
//!   demand, so precision escalation re-enters the same scheduler at
//!   higher precision on the same backend instead of being a separate
//!   driver;
//! * [`SolveReport`] — one result shape for every combination: a
//!   [`PathReport`] per path (verdict, endpoint, target residual,
//!   precision used), the scheduler's [`QueueStats`] (occupancy,
//!   refills, round trips), the engine's modeled [`PipelineStats`] and
//!   [`EngineCaps`], and the escalation accounting.
//!
//! Scheduling and backend placement are never numerical decisions: for
//! the same request, the per-path and queue schedulers return
//! bit-identical endpoints on every backend reachable from the spec.
//!
//! ```
//! use polygpu_homotopy::solve::{SolveRequest, Solver};
//! use polygpu_polysys::parse_system;
//!
//! // All four total-degree paths of a conic intersection, tracked by
//! // the default queue scheduler on the default engine spec.
//! let target = parse_system::<f64>("x0^2 + x1^2 - 5; x0*x1 - 2").unwrap();
//! let report = Solver::new().solve(&SolveRequest::new(target)).unwrap();
//! assert_eq!(report.paths.len(), 4);
//! assert_eq!(report.successes(), 4);
//! assert!(report.paths.iter().all(|p| p.residual < 1e-8));
//! ```

use crate::escalate::UsedPrecision;
use crate::fallible::FaultReport;
use crate::homotopy::{random_gamma, Homotopy};
use crate::lockstep::{
    track_lockstep_recovering_traced, track_lockstep_recovering_traced_with, BatchHomotopy,
    LockstepPath,
};
use crate::queue::{track_queue_recovering_traced, QueueStats, SlotPolicy};
use crate::resident::{correct_resident, status_to_newton, track_queue_resident, track_resident};
use crate::start::{AnyStart, StartSystem};
use crate::tracker::{track, TrackOutcome, TrackParams};
use polygpu_complex::{Complex, Real};
use polygpu_core::engine::{
    AnyEvaluator, Backend, BuildError, ClusterProvider, Engine, EngineBuilder, EngineCaps,
    NoCluster,
};
use polygpu_core::pipeline::PipelineStats;
use polygpu_core::{BatchError, CorrectorMode, RecoveryPolicy};
use polygpu_obs::{
    MetaValue, MetricsRegistry, SpanKind, TelemetrySnapshot, TraceSink, Tracer, Track,
};
use polygpu_polyhedral::{mixed_cell_starts, CellError};
use polygpu_polysys::{NaiveEvaluator, System, SystemEvaluator};
use polygpu_qd::Dd;
use std::fmt;
use std::sync::Arc;

// ---------------------------------------------------------------------
// The scheduler trait and the three built-in schedulers
// ---------------------------------------------------------------------

/// The homotopy every scheduler runs over: an analytic start system
/// ([`AnyStart`] — total-degree or one mixed cell's binomial system)
/// against a boxed engine from the [`Solver`]'s spec.
pub type EngineHomotopy<R> = BatchHomotopy<R, AnyStart, Box<dyn AnyEvaluator<R>>>;

/// What a scheduler hands back: per-path endpoints in start order plus
/// its aggregate scheduling statistics.
#[derive(Debug, Clone)]
pub struct SchedulerRun<R> {
    /// Per-path endpoints, in start order.
    pub paths: Vec<LockstepPath<R>>,
    /// Rounds, round trips, occupancy numerators, step counts.
    pub stats: QueueStats,
    /// Faults seen and recovery work done at the scheduler level
    /// (`engine` is filled in by the solve layer after the run).
    pub fault: FaultReport,
}

/// An object-safe multi-path scheduling strategy: how the front of
/// live paths is formed and fed to the engine each round. The three
/// built-ins wrap the original drivers; implement this trait to plug a
/// custom strategy into the same [`EngineHomotopy`] (build one with
/// [`Solver::homotopy`]).
///
/// Scheduling is a performance decision only — [`PerPathScheduler`]
/// and [`QueueScheduler`] produce **bit-identical** endpoints for the
/// same request (the lockstep front shares its step size across paths,
/// so its trajectories legitimately differ once paths diverge in
/// difficulty).
pub trait Scheduler<R: Real> {
    /// Short stable name for reports and tables.
    fn name(&self) -> &'static str;

    /// Track every start through `h`, one endpoint per start, in
    /// order. `caps` describes the engine in `h` (for slot sizing);
    /// `recovery` governs round-level retry when the engine injects
    /// faults. A fault that outlives recovery comes back as
    /// [`SolveError::Fault`] — schedulers never panic on one.
    ///
    /// `trace` is the solve layer's span sink on [`Track::Scheduler`]:
    /// emit one [`SpanKind::Round`] span per scheduling round on the
    /// modeled clock (the built-ins do). A disabled sink must leave the
    /// run bit-identical — spans never feed back into scheduling.
    fn run(
        &mut self,
        h: &mut EngineHomotopy<R>,
        starts: &[Vec<Complex<R>>],
        params: &TrackParams,
        caps: &EngineCaps,
        recovery: &RecoveryPolicy,
        trace: &TraceSink,
    ) -> Result<SchedulerRun<R>, SolveError>;
}

/// [`crate::tracker::track`] behind the [`Scheduler`] trait: one path
/// at a time, one single-point evaluation per predictor or corrector
/// step — the reference the batched schedulers are checked against.
///
/// This scheduler drives the *infallible* single-point path and does
/// no fault recovery of its own: run it against fault-free engines
/// (its purpose is the bit-exact reference); chaos testing belongs to
/// the lockstep and queue schedulers.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerPathScheduler;

impl<R: Real> Scheduler<R> for PerPathScheduler {
    fn name(&self) -> &'static str {
        "per-path"
    }

    fn run(
        &mut self,
        h: &mut EngineHomotopy<R>,
        starts: &[Vec<Complex<R>>],
        params: &TrackParams,
        _caps: &EngineCaps,
        recovery: &RecoveryPolicy,
        trace: &TraceSink,
    ) -> Result<SchedulerRun<R>, SolveError> {
        let batches_before = h.f.engine_stats().batches;
        let mut paths = Vec::with_capacity(starts.len());
        let mut stats = QueueStats {
            slots: 1,
            ..Default::default()
        };
        let mut fault = FaultReport::default();
        for (i, x0) in starts.iter().enumerate() {
            let wall0 = h.f.engine_stats().wall_seconds;
            // Borrow the shared endpoints per path: same gamma, same
            // engine, exactly the legacy `track` call — or, in
            // device-resident mode, the same control flow with the
            // corrector fused on the engine (bit-identical endpoint,
            // O(P) flag download per iteration instead of the full
            // value/Jacobian round trip).
            let mut r = if params.corrector_mode == CorrectorMode::DeviceResident {
                let mut rounds = 0usize;
                track_resident(h, x0, params, &mut rounds, recovery, &mut fault)
                    .map_err(SolveError::Fault)?
            } else {
                let mut h1 = Homotopy::new(&mut h.g, &mut h.f, h.gamma);
                track(&mut h1, x0, *params)
            };
            stats.steps_accepted += r.steps_accepted;
            stats.steps_rejected += r.steps_rejected;
            stats.corrector_iterations += r.corrector_iterations;
            if trace.enabled() {
                // One "round" per path: this scheduler's unit of work.
                let wall1 = h.f.engine_stats().wall_seconds;
                trace.emit(
                    SpanKind::Round,
                    wall0,
                    wall1 - wall0,
                    2,
                    &[("path", MetaValue::U64(i as u64))],
                );
            }
            let end = r.points.pop().expect("tracker records the start point");
            paths.push(LockstepPath {
                outcome: r.outcome,
                x: end.x,
                t: end.t,
            });
        }
        // Every evaluation is its own device round trip here — read
        // the exact count off the engine instead of re-deriving it.
        stats.batch_rounds = (h.f.engine_stats().batches - batches_before) as usize;
        stats.rounds = stats.batch_rounds;
        stats.point_rounds = stats.batch_rounds;
        Ok(SchedulerRun {
            paths,
            stats,
            fault,
        })
    }
}

/// [`crate::lockstep::track_lockstep`] behind the [`Scheduler`] trait:
/// all paths share one `t` front and one step size, every round one
/// batched evaluation of the live paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct LockstepScheduler;

impl<R: Real> Scheduler<R> for LockstepScheduler {
    fn name(&self) -> &'static str {
        "lockstep"
    }

    fn run(
        &mut self,
        h: &mut EngineHomotopy<R>,
        starts: &[Vec<Complex<R>>],
        params: &TrackParams,
        _caps: &EngineCaps,
        recovery: &RecoveryPolicy,
        trace: &TraceSink,
    ) -> Result<SchedulerRun<R>, SolveError> {
        let (r, fault) = if params.corrector_mode == CorrectorMode::DeviceResident {
            // Same front, same step control; each round's corrector is
            // the engine's fused loop instead of one host round trip
            // per Newton iteration.
            let corrector = params.corrector;
            track_lockstep_recovering_traced_with(
                h,
                starts,
                *params,
                recovery,
                trace,
                &mut |h, pts, t_new, rounds, fault| {
                    let mut points = pts.to_vec();
                    let ts = vec![t_new; points.len()];
                    let statuses =
                        correct_resident(h, &mut points, &ts, &corrector, rounds, recovery, fault)?;
                    Ok(points
                        .into_iter()
                        .zip(statuses)
                        .map(|(x, s)| status_to_newton(x, s))
                        .collect())
                },
            )
        } else {
            track_lockstep_recovering_traced(h, starts, *params, recovery, trace)
        }
        .map_err(SolveError::Fault)?;
        let stats = r.stats();
        Ok(SchedulerRun {
            paths: r.paths,
            stats,
            fault,
        })
    }
}

/// [`crate::queue::track_queue`] behind the [`Scheduler`] trait: a
/// refilling slot front sized by a [`SlotPolicy`].
/// [`SlotPolicy::Auto`] resolves through [`EngineCaps::auto_slots`] to
/// `devices × per-device capacity`, clamped to the engine's batch
/// capacity — a point-sharded cluster run keeps every device's batch
/// full each round, while a row-sharded cluster (whose devices all see
/// every point) stays at one device's worth.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueScheduler {
    pub slots: SlotPolicy,
}

impl<R: Real> Scheduler<R> for QueueScheduler {
    fn name(&self) -> &'static str {
        "queue"
    }

    fn run(
        &mut self,
        h: &mut EngineHomotopy<R>,
        starts: &[Vec<Complex<R>>],
        params: &TrackParams,
        caps: &EngineCaps,
        recovery: &RecoveryPolicy,
        trace: &TraceSink,
    ) -> Result<SchedulerRun<R>, SolveError> {
        let slots = self.slots.resolve(caps.auto_slots(), starts.len());
        let (r, fault) = if params.corrector_mode == CorrectorMode::DeviceResident {
            track_queue_resident(h, starts, *params, slots, recovery, trace)
        } else {
            track_queue_recovering_traced(
                h,
                starts,
                *params,
                SlotPolicy::Fixed(slots),
                recovery,
                trace,
            )
        }
        .map_err(SolveError::Fault)?;
        Ok(SchedulerRun {
            paths: r.paths,
            stats: r.stats,
            fault,
        })
    }
}

/// Which built-in [`Scheduler`] a [`SolveRequest`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// One path at a time — the bit-exact reference.
    ///
    /// ```
    /// use polygpu_homotopy::solve::{SchedulerKind, SolveRequest, Solver};
    /// use polygpu_polysys::parse_system;
    ///
    /// let target = parse_system::<f64>("x0^2 - 1; x1^2 - 1").unwrap();
    /// let req = SolveRequest::new(target).with_scheduler(SchedulerKind::PerPath);
    /// let report = Solver::new().solve(&req).unwrap();
    /// assert_eq!(report.successes(), 4);
    /// ```
    PerPath,
    /// One shared `t` front, every evaluation batched.
    ///
    /// ```
    /// use polygpu_homotopy::solve::{SchedulerKind, SolveRequest, Solver};
    /// use polygpu_polysys::parse_system;
    ///
    /// let target = parse_system::<f64>("x0^2 - 1; x1^2 - 1").unwrap();
    /// let req = SolveRequest::new(target).with_scheduler(SchedulerKind::Lockstep);
    /// let report = Solver::new().solve(&req).unwrap();
    /// assert!(report.stats.batch_rounds < report.paths.len() * report.stats.rounds);
    /// ```
    Lockstep,
    /// A refilling slot front — full batches until the queue drains.
    ///
    /// ```
    /// use polygpu_homotopy::solve::{SchedulerKind, SolveRequest, Solver};
    /// use polygpu_homotopy::queue::SlotPolicy;
    /// use polygpu_polysys::parse_system;
    ///
    /// let target = parse_system::<f64>("x0^3 - 1; x1^3 - 1").unwrap();
    /// let req = SolveRequest::new(target).with_scheduler(SchedulerKind::Queue {
    ///     slots: SlotPolicy::Fixed(3),
    /// });
    /// let report = Solver::new().solve(&req).unwrap();
    /// assert!(report.occupancy() > 0.8);
    /// ```
    Queue { slots: SlotPolicy },
}

impl Default for SchedulerKind {
    /// The queue scheduler with [`SlotPolicy::Auto`] — full device
    /// occupancy on any backend.
    fn default() -> Self {
        SchedulerKind::Queue {
            slots: SlotPolicy::Auto,
        }
    }
}

impl SchedulerKind {
    /// Short stable name for reports and tables.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::PerPath => "per-path",
            SchedulerKind::Lockstep => "lockstep",
            SchedulerKind::Queue { .. } => "queue",
        }
    }

    /// The built-in scheduler this kind selects, in precision `R` (one
    /// kind instantiates for every precision, which is how escalation
    /// re-enters the same scheduler at higher precision).
    pub fn instantiate<R: Real>(&self) -> Box<dyn Scheduler<R>> {
        match self {
            SchedulerKind::PerPath => Box::new(PerPathScheduler),
            SchedulerKind::Lockstep => Box::new(LockstepScheduler),
            SchedulerKind::Queue { slots } => Box::new(QueueScheduler { slots: *slots }),
        }
    }
}

// ---------------------------------------------------------------------
// The request
// ---------------------------------------------------------------------

/// Which precision(s) a solve runs in.
#[derive(Debug, Clone, Copy)]
pub enum PrecisionPolicy {
    /// Every path tracked in one precision with the request's params.
    Fixed(UsedPrecision),
    /// Track in hardware doubles first; the paths that fail re-enter
    /// the **same scheduler** on the **same backend spec** in
    /// double-double with `dd_params` (typically tighter tolerances) —
    /// the paper's "a couple or perhaps just one solution path may
    /// require extended multiprecision arithmetic".
    Escalating { dd_params: TrackParams },
}

impl Default for PrecisionPolicy {
    fn default() -> Self {
        PrecisionPolicy::Fixed(UsedPrecision::Double)
    }
}

impl PrecisionPolicy {
    /// Escalation retrying failed paths with the same params as the
    /// double pass.
    pub fn escalating_with(params: TrackParams) -> Self {
        PrecisionPolicy::Escalating { dd_params: params }
    }
}

/// Which start points a [`SolveRequest`] tracks.
#[derive(Debug, Clone, Default)]
pub enum StartSelection {
    /// Every total-degree start solution (`∏ dᵢ` paths — mind the
    /// Bézout number).
    #[default]
    All,
    /// The first `n` start solutions in mixed-radix order.
    FirstN(u128),
    /// Specific start-solution indices.
    Indices(Vec<u128>),
    /// Explicit start points (yours to match the start system).
    Points(Vec<Vec<Complex<f64>>>),
}

/// Which start-system construction a [`SolveRequest`] tracks paths
/// from.
///
/// The two kinds bound the path count differently: total-degree tracks
/// one path per Bézout root (`∏ dᵢ`), mixed cells one path per unit of
/// mixed volume (Bernstein's bound) — strictly fewer for sparse
/// targets, and the dominant cost of a solve is the number of paths.
///
/// ```
/// use polygpu_homotopy::solve::{SolveRequest, Solver, StartKind};
/// use polygpu_polysys::parse_system;
///
/// // Sparse quadratics: Bézout 4, mixed volume 2 — half the paths.
/// let target = parse_system::<f64>("x0*x1 + x0 + 1; x0*x1 + x1 + 2").unwrap();
/// let dense = Solver::new().solve(&SolveRequest::new(target.clone())).unwrap();
/// let sparse = Solver::new()
///     .solve(&SolveRequest::new(target).with_start_kind(StartKind::MixedCells { lift_seed: 7 }))
///     .unwrap();
/// assert_eq!(dense.paths.len(), 4);
/// assert_eq!(sparse.paths.len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StartKind {
    /// The total-degree system `xᵢ^{dᵢ} − 1` from
    /// [`SolveRequest::start`] (or a custom [`StartSystem`] installed
    /// with [`SolveRequest::with_start`]).
    #[default]
    TotalDegree,
    /// One binomial start system per mixed cell of the target's lifted
    /// Newton polytopes ([`polygpu_polyhedral::mixed_cell_starts`]).
    /// The cells — and therefore every path — are a pure function of
    /// the target's support and `lift_seed`. [`SolveRequest::start`]
    /// is ignored; [`StartSelection::Points`] is rejected typed (a
    /// point's cell is not recoverable from coordinates).
    MixedCells { lift_seed: u64 },
}

/// One start system and the start points tracked from it —
/// [`SolveRequest::resolve_groups`] returns one group per start
/// system, in path order.
pub type StartGroup<R> = (AnyStart, Vec<Vec<Complex<R>>>);

/// Everything `solve()` needs: the problem, the tolerances, the
/// precision policy and the scheduler. Engine placement lives in the
/// [`Solver`], so one request runs unchanged on every backend.
///
/// ```
/// use polygpu_homotopy::prelude::*;
/// use polygpu_polysys::parse_system;
///
/// let target = parse_system::<f64>("x0^2 + x1^2 - 5; x0*x1 - 2").unwrap();
/// let req = SolveRequest::new(target)
///     .with_starts(StartSelection::FirstN(2))
///     .with_gamma_seed(7)
///     .with_precision(PrecisionPolicy::escalating_with(TrackParams::default()))
///     .with_scheduler(SchedulerKind::default());
/// let report = Solver::new().solve(&req).unwrap();
/// assert_eq!(report.paths.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// The target system `F` (the engine spec provisions its
    /// evaluators, in every precision the policy needs).
    pub target: System<f64>,
    /// The start system `G` (evaluated analytically on the host).
    /// Used by [`StartKind::TotalDegree`]; ignored under
    /// [`StartKind::MixedCells`], which derives its per-cell binomial
    /// start systems from the target's support.
    pub start: StartSystem,
    /// Which start-system construction to track paths from.
    pub start_kind: StartKind,
    /// Which paths to track.
    pub starts: StartSelection,
    /// Seed of the gamma trick; equal seeds describe equal paths
    /// across schedulers, backends and precisions.
    pub gamma_seed: u64,
    /// Step-size and corrector controls (of the double pass, under
    /// escalation).
    pub params: TrackParams,
    pub precision: PrecisionPolicy,
    pub scheduler: SchedulerKind,
    /// Round-level retry policy for injected faults (see
    /// [`crate::fallible`]). Irrelevant — and free — on fault-free
    /// engines; with fault injection armed it bounds the retries before
    /// a fault surfaces as [`SolveError::Fault`].
    pub recovery: RecoveryPolicy,
    /// Span sink observing this solve on the modeled clock (disabled by
    /// default — see [`SolveRequest::with_tracer`]). Tracing never
    /// feeds back into the solve: outputs and modeled timings are
    /// bit-identical with and without a tracer installed.
    pub trace: TraceSink,
    /// Free-form request tag (`None` by default). The solver ignores
    /// it; serving layers use it to correlate a request through queues,
    /// reports and span exports without inventing a side table.
    pub label: Option<String>,
}

impl SolveRequest {
    /// A request tracking **all** total-degree paths of `target` with
    /// default tolerances, the queue scheduler and fixed double
    /// precision. Panics if a polynomial has total degree zero (no
    /// total-degree start system exists); build the [`StartSystem`]
    /// yourself and use [`SolveRequest::with_start`] for anything
    /// nonstandard.
    pub fn new(target: System<f64>) -> Self {
        let degrees: Vec<u32> = target.polys().iter().map(|p| p.total_degree()).collect();
        SolveRequest {
            start: StartSystem::new(degrees),
            start_kind: StartKind::TotalDegree,
            target,
            starts: StartSelection::All,
            gamma_seed: 0x9E37,
            params: TrackParams::default(),
            precision: PrecisionPolicy::default(),
            scheduler: SchedulerKind::default(),
            recovery: RecoveryPolicy::default(),
            trace: TraceSink::noop(),
            label: None,
        }
    }

    /// Tag this request with a correlation label (tenant name, job id).
    /// Purely descriptive: two requests differing only in label solve
    /// bit-identically.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    pub fn with_start(mut self, start: StartSystem) -> Self {
        self.start = start;
        self
    }

    pub fn with_start_kind(mut self, kind: StartKind) -> Self {
        self.start_kind = kind;
        self
    }

    pub fn with_starts(mut self, starts: StartSelection) -> Self {
        self.starts = starts;
        self
    }

    pub fn with_gamma_seed(mut self, seed: u64) -> Self {
        self.gamma_seed = seed;
        self
    }

    pub fn with_params(mut self, params: TrackParams) -> Self {
        self.params = params;
        self
    }

    /// Where the Newton corrector's linear solves run.
    /// [`CorrectorMode::Host`] (the default) downloads values and
    /// Jacobians every iteration; [`CorrectorMode::DeviceResident`]
    /// runs the fused evaluate → factor → solve → update loop on the
    /// engine, downloading only the O(paths) convergence-flag vector
    /// per iteration. Endpoints are bit-identical either way — the
    /// mode only moves modeled transfer traffic (compare
    /// [`SolveReport::engine`]'s `h2d_bytes`/`d2h_bytes`).
    ///
    /// ```
    /// use polygpu_core::engine::{Backend, Engine};
    /// use polygpu_core::CorrectorMode;
    /// use polygpu_homotopy::solve::{SolveRequest, Solver};
    /// use polygpu_polysys::{random_system, BenchmarkParams};
    ///
    /// let solver = || Solver::from_builder(
    ///     Engine::builder().backend(Backend::GpuBatch { capacity: 4 }),
    /// );
    /// let target = random_system::<f64>(&BenchmarkParams { n: 2, m: 2, k: 2, d: 2, seed: 3 });
    /// let host = solver().solve(&SolveRequest::new(target.clone())).unwrap();
    /// let resident = solver()
    ///     .solve(&SolveRequest::new(target).with_corrector(CorrectorMode::DeviceResident))
    ///     .unwrap();
    /// assert_eq!(resident.successes(), host.successes());
    /// assert!(resident.engine.d2h_bytes < host.engine.d2h_bytes);
    /// ```
    pub fn with_corrector(mut self, mode: CorrectorMode) -> Self {
        self.params.corrector_mode = mode;
        self
    }

    pub fn with_precision(mut self, precision: PrecisionPolicy) -> Self {
        self.precision = precision;
        self
    }

    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Install a [`Tracer`] observing this solve: spans for the whole
    /// solve, each precision pass, every scheduler round and — through
    /// the engine the [`Solver`]'s spec provisions — every device
    /// operation, all timestamped on the *modeled* clock. Same request,
    /// same seed ⇒ the same spans, byte for byte once exported.
    ///
    /// ```
    /// use polygpu_homotopy::solve::{SolveRequest, Solver};
    /// use polygpu_obs::{CollectingTracer, SpanKind};
    /// use polygpu_polysys::parse_system;
    /// use std::sync::Arc;
    ///
    /// let tracer = Arc::new(CollectingTracer::new());
    /// let target = parse_system::<f64>("x0^2 - 1; x1^2 - 1").unwrap();
    /// let req = SolveRequest::new(target).with_tracer(tracer.clone());
    /// Solver::new().solve(&req).unwrap();
    /// let spans = tracer.spans();
    /// assert_eq!(spans[0].kind, SpanKind::Solve);
    /// assert!(spans.iter().any(|s| s.kind == SpanKind::Round));
    /// ```
    pub fn with_tracer(mut self, tracer: Arc<dyn Tracer>) -> Self {
        self.trace = TraceSink::new(tracer);
        self
    }

    /// Install an already-configured [`TraceSink`] (e.g. one shared
    /// with other solves, or rebased to splice this solve into a longer
    /// modeled timeline). [`SolveRequest::with_tracer`] is the common
    /// entry point.
    pub fn with_trace_sink(mut self, sink: TraceSink) -> Self {
        self.trace = sink;
        self
    }

    /// The concrete start points this request tracks, in path order.
    pub fn resolve_starts(&self) -> Result<Vec<Vec<Complex<f64>>>, SolveError> {
        let count = self.start.solution_count();
        let by_index = |idx: u128| -> Result<Vec<Complex<f64>>, SolveError> {
            if idx >= count {
                return Err(SolveError::StartIndexOutOfRange { index: idx, count });
            }
            Ok(self.start.solution_by_index(idx))
        };
        match &self.starts {
            StartSelection::All => (0..count).map(by_index).collect(),
            StartSelection::FirstN(n) => (0..count.min(*n)).map(by_index).collect(),
            StartSelection::Indices(idx) => idx.iter().map(|&i| by_index(i)).collect(),
            StartSelection::Points(points) => {
                let expected = self.start.degrees().len();
                for (i, x) in points.iter().enumerate() {
                    if x.len() != expected {
                        return Err(SolveError::PointDimension {
                            point: i,
                            got: x.len(),
                            expected,
                        });
                    }
                }
                Ok(points.clone())
            }
        }
    }

    /// The start systems and start points this request tracks, as the
    /// solver runs them: one group per start system, concatenated in
    /// path order. [`StartKind::TotalDegree`] yields one group
    /// (`resolve_starts`); [`StartKind::MixedCells`] yields one group
    /// per mixed cell, with [`StartSelection`] indexing the
    /// concatenation of every cell's roots (count = mixed volume).
    pub fn resolve_groups(&self) -> Result<Vec<StartGroup<f64>>, SolveError> {
        let lift_seed = match self.start_kind {
            StartKind::TotalDegree => {
                let start = AnyStart::TotalDegree(self.start.clone());
                return Ok(vec![(start, self.resolve_starts()?)]);
            }
            StartKind::MixedCells { lift_seed } => lift_seed,
        };
        let mc = mixed_cell_starts(&self.target, lift_seed).map_err(SolveError::MixedCells)?;
        let count = mc.mixed_volume;
        // Per-cell index ranges over the concatenated root order.
        let mut ranges = Vec::with_capacity(mc.cells.len());
        let mut off = 0u128;
        for cell in &mc.cells {
            ranges.push((off, cell.start.solution_count()));
            off += cell.start.solution_count();
        }
        let take = |cell: usize, lo: u128, hi: u128| -> (AnyStart, Vec<Vec<Complex<f64>>>) {
            let start = &mc.cells[cell].start;
            let points = (lo..hi).map(|i| start.solution_by_index(i)).collect();
            (AnyStart::Binomial(start.clone()), points)
        };
        let mut groups = Vec::new();
        match &self.starts {
            StartSelection::All => {
                for (cell, &(_, len)) in ranges.iter().enumerate() {
                    groups.push(take(cell, 0, len));
                }
            }
            StartSelection::FirstN(n) => {
                let mut remaining = *n;
                for (cell, &(_, len)) in ranges.iter().enumerate() {
                    if remaining == 0 {
                        break;
                    }
                    let here = len.min(remaining);
                    groups.push(take(cell, 0, here));
                    remaining -= here;
                }
            }
            StartSelection::Indices(idx) => {
                // Consecutive indices in the same cell share a group, a
                // cell switch opens a new one — path order stays the
                // requested index order.
                let mut last_cell = usize::MAX;
                for &i in idx {
                    if i >= count {
                        return Err(SolveError::StartIndexOutOfRange { index: i, count });
                    }
                    let cell = ranges
                        .partition_point(|&(start, _)| start <= i)
                        .saturating_sub(1);
                    let point = mc.cells[cell].start.solution_by_index(i - ranges[cell].0);
                    if cell == last_cell {
                        groups.last_mut().expect("group opened above").1.push(point);
                    } else {
                        groups.push((
                            AnyStart::Binomial(mc.cells[cell].start.clone()),
                            vec![point],
                        ));
                        last_cell = cell;
                    }
                }
            }
            StartSelection::Points(_) => {
                return Err(SolveError::PointsWithMixedCells);
            }
        }
        if groups.is_empty() {
            // Zero paths selected: keep one (empty) group so the solve
            // still provisions an engine and reports its caps.
            groups.push(take(0, 0, 0));
        }
        Ok(groups)
    }
}

// ---------------------------------------------------------------------
// The report
// ---------------------------------------------------------------------

/// A path endpoint in the precision that produced it.
#[derive(Debug, Clone, PartialEq)]
pub enum PathEndpoint {
    Double(Vec<Complex<f64>>),
    DoubleDouble(Vec<Complex<Dd>>),
}

impl PathEndpoint {
    pub fn precision(&self) -> UsedPrecision {
        match self {
            PathEndpoint::Double(_) => UsedPrecision::Double,
            PathEndpoint::DoubleDouble(_) => UsedPrecision::DoubleDouble,
        }
    }

    /// The endpoint in double-double (exact promotion when the path
    /// finished in doubles).
    pub fn to_dd(&self) -> Vec<Complex<Dd>> {
        match self {
            PathEndpoint::Double(x) => x.iter().map(|z| z.convert()).collect(),
            PathEndpoint::DoubleDouble(x) => x.clone(),
        }
    }

    /// The endpoint rounded to hardware doubles.
    pub fn to_f64(&self) -> Vec<Complex<f64>> {
        match self {
            PathEndpoint::Double(x) => x.clone(),
            PathEndpoint::DoubleDouble(x) => x.iter().map(|z| z.convert()).collect(),
        }
    }
}

/// One path's verdict.
#[derive(Debug, Clone)]
pub struct PathReport {
    /// Why tracking stopped (success means `t = 1` was reached).
    pub outcome: TrackOutcome,
    /// `t` of the last accepted point (`1.0` on success).
    pub t: f64,
    /// The last accepted point, in the precision that produced it.
    pub endpoint: PathEndpoint,
    /// Max-norm residual of the **target** system at the endpoint
    /// (evaluated in the endpoint's precision; diagnostic only for
    /// failed paths, which stopped short of `t = 1`).
    pub residual: f64,
}

impl PathReport {
    pub fn success(&self) -> bool {
        self.outcome == TrackOutcome::Success
    }

    /// Which precision finished this path.
    pub fn precision(&self) -> UsedPrecision {
        self.endpoint.precision()
    }
}

/// The double-double pass of an escalating solve.
#[derive(Debug, Clone)]
pub struct EscalationReport {
    /// Paths the double pass failed and the dd pass retried.
    pub retried: usize,
    /// Retried paths that succeeded in double-double.
    pub rescued: usize,
    /// The dd pass's scheduler statistics.
    pub stats: QueueStats,
    /// The dd engine's modeled cost (provisioned from the same spec).
    pub engine: PipelineStats,
    /// Faults seen and recovery work done during the dd pass.
    pub fault: FaultReport,
}

/// The uniform result of [`Solver::solve`]: per-path verdicts plus the
/// scheduler, engine and escalation telemetry the old drivers scattered
/// across four result types.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// One verdict per tracked path, in start order.
    pub paths: Vec<PathReport>,
    /// The scheduler that ran.
    pub scheduler: SchedulerKind,
    /// Backend name (from [`EngineCaps::backend`]).
    pub backend: &'static str,
    /// Engine shape and placement (devices, capacities, residency).
    pub caps: EngineCaps,
    /// Scheduler statistics of the primary (double, unless the policy
    /// fixed double-double) pass — occupancy, rounds, refills.
    pub stats: QueueStats,
    /// The primary engine's modeled cost statistics.
    pub engine: PipelineStats,
    /// Faults seen and recovery work done during the primary pass
    /// (scheduler-level retries plus the engine's own fault
    /// accounting). All zeros on fault-free runs.
    pub fault: FaultReport,
    /// Present when an escalation pass ran.
    pub escalation: Option<EscalationReport>,
    /// Every stats struct above, flattened into one sorted, diffable,
    /// serializable snapshot (`pipeline.*`, `scheduler.*`, `fault.*`,
    /// `escalation.*`, `solve.*` keys).
    ///
    /// ```
    /// use polygpu_homotopy::solve::{SolveRequest, Solver};
    /// use polygpu_obs::MetricValue;
    /// use polygpu_polysys::parse_system;
    ///
    /// let target = parse_system::<f64>("x0^2 - 1; x1^2 - 1").unwrap();
    /// let report = Solver::new().solve(&SolveRequest::new(target)).unwrap();
    /// assert_eq!(
    ///     report.telemetry.get("solve.paths"),
    ///     Some(MetricValue::Counter(4))
    /// );
    /// // One schema for dashboards and regression diffs.
    /// assert!(report.telemetry.to_json().starts_with('{'));
    /// assert!(report.telemetry.diff(&report.telemetry).is_empty());
    /// ```
    pub telemetry: TelemetrySnapshot,
}

impl SolveReport {
    /// Paths that reached `t = 1`.
    pub fn successes(&self) -> usize {
        self.paths.iter().filter(|p| p.success()).count()
    }

    /// Mean slot occupancy of the primary pass (see
    /// [`QueueStats::occupancy`]).
    pub fn occupancy(&self) -> f64 {
        self.stats.occupancy()
    }

    /// Paths the escalation pass retried in double-double.
    pub fn escalated(&self) -> usize {
        self.escalation.as_ref().map_or(0, |e| e.retried)
    }

    /// Fraction of paths that needed double-double.
    pub fn escalation_rate(&self) -> f64 {
        if self.paths.is_empty() {
            0.0
        } else {
            self.escalated() as f64 / self.paths.len() as f64
        }
    }

    /// Modeled end-to-end duration: engine wall clock plus scheduler-
    /// level recovery backoff, both passes included — the duration of
    /// the root [`SpanKind::Solve`] span an installed tracer sees.
    pub fn modeled_wall_seconds(&self) -> f64 {
        self.engine.wall_clock_seconds()
            + self.fault.backoff_seconds
            + self.escalation.as_ref().map_or(0.0, |e| {
                e.engine.wall_clock_seconds() + e.fault.backoff_seconds
            })
    }

    /// Modeled end-to-end throughput: paths per modeled engine second,
    /// both passes included (`0.0` for engines without a device model,
    /// e.g. the CPU reference).
    pub fn paths_per_second(&self) -> f64 {
        let wall = self.engine.wall_clock_seconds()
            + self
                .escalation
                .as_ref()
                .map_or(0.0, |e| e.engine.wall_clock_seconds());
        if wall > 0.0 {
            self.paths.len() as f64 / wall
        } else {
            0.0
        }
    }
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a solve could not run (tracking failures are *verdicts* in the
/// report, not errors).
#[derive(Debug)]
#[non_exhaustive]
pub enum SolveError {
    /// The engine spec failed to provision a backend.
    Build(BuildError),
    /// The target is rectangular (`rows != dim`): path tracking solves
    /// square systems only. Rectangular row blocks are an *evaluator*
    /// concept (row-sharded clusters cut them internally).
    RectangularTarget { rows: usize, dim: usize },
    /// Start and target systems disagree in dimension.
    DimensionMismatch { start: usize, target: usize },
    /// A start index beyond the start system's solution count.
    StartIndexOutOfRange { index: u128, count: u128 },
    /// An explicit start point whose length is not the start-system
    /// dimension.
    PointDimension {
        point: usize,
        got: usize,
        expected: usize,
    },
    /// An injected fault outlived the request's [`RecoveryPolicy`]
    /// (device loss, or retries exhausted) — typed, never a panic.
    /// The partial pass is discarded; rerun with a stronger policy or
    /// a fleet engine with internal failover.
    Fault(BatchError),
    /// [`StartKind::MixedCells`] could not construct start systems for
    /// this target (not square, dimension above the mixed-cell cap,
    /// a single-monomial polynomial, degenerate liftings, …).
    MixedCells(CellError),
    /// [`StartSelection::Points`] combined with
    /// [`StartKind::MixedCells`]: explicit points carry no record of
    /// which cell's binomial system they solve, so there is no start
    /// system to track them from. Use [`StartSelection::Indices`].
    PointsWithMixedCells,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Build(e) => write!(f, "engine provisioning: {e}"),
            SolveError::RectangularTarget { rows, dim } => write!(
                f,
                "target has {rows} polynomials in {dim} variables; solving needs a square system"
            ),
            SolveError::DimensionMismatch { start, target } => write!(
                f,
                "start system dimension {start} does not match target dimension {target}"
            ),
            SolveError::StartIndexOutOfRange { index, count } => write!(
                f,
                "start index {index} out of range (start system has {count} solutions)"
            ),
            SolveError::PointDimension {
                point,
                got,
                expected,
            } => write!(
                f,
                "start point {point} has {got} coordinates, expected {expected}"
            ),
            SolveError::Fault(e) => write!(f, "evaluation fault outlived recovery: {e}"),
            SolveError::MixedCells(e) => write!(f, "mixed-cell start construction: {e}"),
            SolveError::PointsWithMixedCells => write!(
                f,
                "explicit start points cannot be tracked from mixed-cell start systems \
                 (no cell is recoverable from coordinates); select by index instead"
            ),
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::Build(e) => Some(e),
            SolveError::Fault(e) => Some(e),
            SolveError::MixedCells(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildError> for SolveError {
    fn from(e: BuildError) -> Self {
        SolveError::Build(e)
    }
}

// ---------------------------------------------------------------------
// The solver
// ---------------------------------------------------------------------

/// The unified solving entry point: owns an engine spec and provisions
/// engines per precision on demand, so one `solve()` call covers every
/// scheduler × backend × precision combination the request selects.
///
/// [`Solver::new`] carries the core backends (CPU reference,
/// single-point GPU, batched GPU); [`Solver::from_builder`] accepts
/// any [`EngineBuilder`] — pass the facade's (or
/// `polygpu_cluster::engine_builder()`) for the cluster backend.
pub struct Solver<P: ClusterProvider = NoCluster> {
    builder: EngineBuilder<P>,
}

impl Solver<NoCluster> {
    /// A solver over the CPU reference backend — the spec every
    /// system shape fits (the device backends require the paper's
    /// uniform shape). Select a device or cluster backend with
    /// [`Solver::from_builder`]; endpoints are bit-identical either
    /// way.
    pub fn new() -> Self {
        Solver::from_builder(Engine::builder().backend(Backend::CpuReference))
    }
}

impl Default for Solver<NoCluster> {
    fn default() -> Self {
        Solver::new()
    }
}

impl<P: ClusterProvider> From<EngineBuilder<P>> for Solver<P> {
    fn from(builder: EngineBuilder<P>) -> Self {
        Solver::from_builder(builder)
    }
}

impl<P: ClusterProvider> Solver<P> {
    /// A solver provisioning engines from `builder` (the spec is
    /// reused for every precision the policy demands).
    pub fn from_builder(builder: EngineBuilder<P>) -> Self {
        Solver { builder }
    }

    /// The engine spec this solver provisions from.
    pub fn builder(&self) -> &EngineBuilder<P> {
        &self.builder
    }

    /// Build the request's homotopy in precision `R` over a fresh
    /// engine from this solver's spec — the entry point for custom
    /// [`Scheduler`] implementations. The gamma is the exactly-widened
    /// `f64` gamma of `gamma_seed`, so every precision describes the
    /// same paths.
    pub fn homotopy<R: Real>(
        &self,
        target: &System<R>,
        start: &StartSystem,
        gamma_seed: u64,
    ) -> Result<EngineHomotopy<R>, SolveError> {
        self.homotopy_any(target, &AnyStart::TotalDegree(start.clone()), gamma_seed)
    }

    /// [`Solver::homotopy`] over any [`AnyStart`] — how the solve loop
    /// builds the homotopy of each mixed cell's binomial start system.
    pub fn homotopy_any<R: Real>(
        &self,
        target: &System<R>,
        start: &AnyStart,
        gamma_seed: u64,
    ) -> Result<EngineHomotopy<R>, SolveError> {
        if !target.is_square() {
            return Err(SolveError::RectangularTarget {
                rows: target.rows(),
                dim: target.dim(),
            });
        }
        if start.dim() != target.dim() {
            return Err(SolveError::DimensionMismatch {
                start: start.dim(),
                target: target.dim(),
            });
        }
        let engine = self.builder.build(target)?;
        let gamma: Complex<R> = random_gamma::<f64>(gamma_seed).convert();
        Ok(BatchHomotopy::new(start.clone(), engine, gamma))
    }

    /// Provision engines for the request's precision policy, run its
    /// scheduler over its start points, and collect the uniform
    /// [`SolveReport`].
    pub fn solve(&self, req: &SolveRequest) -> Result<SolveReport, SolveError> {
        let groups = req.resolve_groups()?;
        let mut report = match req.precision {
            PrecisionPolicy::Fixed(UsedPrecision::Double) => {
                let pass = self.run_groups(req, &req.target, &groups, req.params, 0.0)?;
                SolveReport {
                    paths: report_f64(&req.target, pass.paths),
                    scheduler: req.scheduler,
                    backend: pass.caps.backend,
                    caps: pass.caps,
                    stats: pass.stats,
                    engine: pass.engine,
                    fault: pass.fault,
                    escalation: None,
                    telemetry: TelemetrySnapshot::default(),
                }
            }
            PrecisionPolicy::Fixed(UsedPrecision::DoubleDouble) => {
                let target_dd = req.target.convert::<Dd>();
                let groups_dd = widen_groups(&groups);
                let pass = self.run_groups(req, &target_dd, &groups_dd, req.params, 0.0)?;
                let paths = report_dd(&target_dd, pass.paths);
                SolveReport {
                    paths,
                    scheduler: req.scheduler,
                    backend: pass.caps.backend,
                    caps: pass.caps,
                    stats: pass.stats,
                    engine: pass.engine,
                    fault: pass.fault,
                    escalation: None,
                    telemetry: TelemetrySnapshot::default(),
                }
            }
            PrecisionPolicy::Escalating { dd_params } => {
                let pass = self.run_groups(req, &req.target, &groups, req.params, 0.0)?;
                let failed: Vec<usize> = pass
                    .paths
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| !p.success())
                    .map(|(i, _)| i)
                    .collect();
                // Every failed path's report is replaced by its dd
                // retry below, so only successful endpoints are worth
                // a residual evaluation here.
                let mut paths = report_f64_successes_only(&req.target, pass.paths);
                let escalation = if failed.is_empty() {
                    None
                } else {
                    // Re-enter the same scheduler at higher precision:
                    // same spec, same gamma (exactly widened), the
                    // failed paths' start points only — regrouped by
                    // their start system (failed indices are increasing
                    // and groups concatenate in order, so retry order
                    // matches `failed`). The dd pass's spans start
                    // where the primary pass's clock ended.
                    let target_dd = req.target.convert::<Dd>();
                    let retry_groups = retry_groups_of(&groups, &failed);
                    let dd =
                        self.run_groups(req, &target_dd, &retry_groups, dd_params, pass.wall)?;
                    let rescued = dd.paths.iter().filter(|p| p.success()).count();
                    let dd_reports = report_dd(&target_dd, dd.paths);
                    for (&i, r) in failed.iter().zip(dd_reports) {
                        paths[i] = r;
                    }
                    Some(EscalationReport {
                        retried: failed.len(),
                        rescued,
                        stats: dd.stats,
                        engine: dd.engine,
                        fault: dd.fault,
                    })
                };
                SolveReport {
                    paths,
                    scheduler: req.scheduler,
                    backend: pass.caps.backend,
                    caps: pass.caps,
                    stats: pass.stats,
                    engine: pass.engine,
                    fault: pass.fault,
                    escalation,
                    telemetry: TelemetrySnapshot::default(),
                }
            }
        };
        report.telemetry = telemetry_of(&report);
        // The root span: the whole solve, both passes, on the modeled
        // clock from zero.
        req.trace.on(Track::Scheduler).emit(
            SpanKind::Solve,
            0.0,
            report.modeled_wall_seconds(),
            0,
            &[
                ("paths", MetaValue::U64(report.paths.len() as u64)),
                ("scheduler", MetaValue::Str(report.scheduler.name())),
            ],
        );
        Ok(report)
    }

    /// One precision pass over every start-system group: one
    /// [`Solver::run_pass`] per group, chained on the modeled clock
    /// (each group's spans start where the previous group's ended) and
    /// merged into one [`Pass`] — paths concatenate in group order,
    /// statistics sum. A total-degree solve is the one-group case and
    /// runs exactly as before.
    fn run_groups<R: Real>(
        &self,
        req: &SolveRequest,
        target: &System<R>,
        groups: &[StartGroup<R>],
        params: TrackParams,
        base: f64,
    ) -> Result<Pass<R>, SolveError> {
        let mut acc: Option<Pass<R>> = None;
        let mut offset = base;
        for (start, starts) in groups {
            let pass = self.run_pass(req, start, target, starts, params, offset)?;
            offset += pass.wall;
            acc = Some(match acc {
                None => pass,
                Some(mut merged) => {
                    merged.merge(pass);
                    merged
                }
            });
        }
        Ok(acc.expect("resolve_groups yields at least one group"))
    }

    /// One scheduler pass in precision `R`: fresh engine, fresh
    /// homotopy over `start`, the request's scheduler. `base` is the
    /// pass's origin on the solve's modeled clock — `0.0` for the
    /// primary pass, the primary pass's wall for the escalation pass —
    /// so every span of a two-pass solve lands on one monotone
    /// timeline.
    fn run_pass<R: Real>(
        &self,
        req: &SolveRequest,
        start: &AnyStart,
        target: &System<R>,
        starts: &[Vec<Complex<R>>],
        params: TrackParams,
        base: f64,
    ) -> Result<Pass<R>, SolveError> {
        let trace = req.trace.rebased(base);
        let mut h = if trace.enabled() {
            // A fresh engine wakes at modeled t = 0; handing it the
            // rebased sink keeps its device spans after the primary
            // pass's on the solve timeline.
            Solver::from_builder(self.builder.clone().trace_sink(trace.clone())).homotopy_any(
                target,
                start,
                req.gamma_seed,
            )?
        } else {
            self.homotopy_any(target, start, req.gamma_seed)?
        };
        let caps = h.f.caps();
        let mut scheduler = req.scheduler.instantiate::<R>();
        let sched_trace = trace.on(Track::Scheduler);
        let run = scheduler.run(&mut h, starts, &params, &caps, &req.recovery, &sched_trace)?;
        let engine = h.f.engine_stats();
        let mut fault = run.fault;
        fault.engine = engine.fault;
        // The pass's extent on the modeled clock: engine wall plus the
        // scheduler-level backoff charged between retried rounds.
        let wall = engine.wall_clock_seconds() + fault.backoff_seconds;
        sched_trace.emit(
            SpanKind::Pass,
            0.0,
            wall,
            1,
            &[("paths", MetaValue::U64(starts.len() as u64))],
        );
        Ok(Pass {
            paths: run.paths,
            stats: run.stats,
            engine,
            fault,
            caps,
            wall,
        })
    }
}

/// One precision pass's raw results (possibly merged over several
/// start-system groups).
struct Pass<R: Real> {
    paths: Vec<LockstepPath<R>>,
    stats: QueueStats,
    engine: PipelineStats,
    fault: FaultReport,
    caps: EngineCaps,
    /// The pass's modeled duration (engine wall + scheduler backoff).
    wall: f64,
}

impl<R: Real> Pass<R> {
    /// Fold a later group's pass into this one: paths concatenate in
    /// path order, counters sum, the modeled clocks chain (`caps` stays
    /// — every group provisions from the same spec).
    fn merge(&mut self, other: Pass<R>) {
        self.paths.extend(other.paths);
        self.stats.rounds += other.stats.rounds;
        self.stats.batch_rounds += other.stats.batch_rounds;
        self.stats.refills += other.stats.refills;
        self.stats.point_rounds += other.stats.point_rounds;
        self.stats.slots = self.stats.slots.max(other.stats.slots);
        self.stats.steps_accepted += other.stats.steps_accepted;
        self.stats.steps_rejected += other.stats.steps_rejected;
        self.stats.corrector_iterations += other.stats.corrector_iterations;
        self.engine.evaluations += other.engine.evaluations;
        self.engine.batches += other.engine.batches;
        self.engine.counters += other.engine.counters;
        self.engine.kernel_seconds += other.engine.kernel_seconds;
        self.engine.overhead_seconds += other.engine.overhead_seconds;
        self.engine.transfer_seconds += other.engine.transfer_seconds;
        self.engine.h2d_bytes += other.engine.h2d_bytes;
        self.engine.d2h_bytes += other.engine.d2h_bytes;
        self.engine.factor_seconds += other.engine.factor_seconds;
        self.engine.backsub_seconds += other.engine.backsub_seconds;
        self.engine.corrections += other.engine.corrections;
        self.engine.corrector_iterations += other.engine.corrector_iterations;
        self.engine.wall_seconds += other.engine.wall_seconds;
        self.engine.fault.merge(&other.engine.fault);
        self.fault.faults += other.fault.faults;
        self.fault.retried_rounds += other.fault.retried_rounds;
        self.fault.recovered_rounds += other.fault.recovered_rounds;
        self.fault.backoff_seconds += other.fault.backoff_seconds;
        self.fault.engine.merge(&other.fault.engine);
        self.wall += other.wall;
    }
}

/// The groups' starts widened to double-double (exactly — widening is
/// injective), for the fixed-dd policy.
fn widen_groups(groups: &[StartGroup<f64>]) -> Vec<StartGroup<Dd>> {
    groups
        .iter()
        .map(|(start, starts)| (start.clone(), widen(starts)))
        .collect()
}

/// The escalation pass's groups: each failed path's start point,
/// widened, grouped under its own start system. `failed` holds
/// increasing global path indices over the groups' concatenation, so
/// walking the groups in order preserves retry order.
fn retry_groups_of(groups: &[StartGroup<f64>], failed: &[usize]) -> Vec<StartGroup<Dd>> {
    let mut retry = Vec::new();
    let mut next = failed.iter().copied().peekable();
    let mut offset = 0usize;
    for (start, starts) in groups {
        let end = offset + starts.len();
        let mut sel: Vec<Vec<Complex<f64>>> = Vec::new();
        while next.peek().is_some_and(|&i| i < end) {
            sel.push(starts[next.next().expect("peeked") - offset].clone());
        }
        if !sel.is_empty() {
            retry.push((start.clone(), widen(&sel)));
        }
        offset = end;
    }
    retry
}

/// Flatten every stats struct of `report` into the one sorted snapshot
/// surfaced as [`SolveReport::telemetry`].
fn telemetry_of(report: &SolveReport) -> TelemetrySnapshot {
    let mut reg = MetricsRegistry::new();
    reg.counter("solve.paths", report.paths.len() as u64);
    reg.counter("solve.successes", report.successes() as u64);
    reg.counter("solve.escalated", report.escalated() as u64);
    reg.gauge("solve.escalation_rate", report.escalation_rate());
    reg.gauge("solve.paths_per_second", report.paths_per_second());
    reg.gauge("solve.wall_seconds", report.modeled_wall_seconds());
    report.stats.record_metrics(&mut reg, "scheduler");
    report.engine.record_metrics(&mut reg, "pipeline");
    report.fault.record_metrics(&mut reg, "fault");
    if let Some(e) = &report.escalation {
        reg.counter("escalation.retried", e.retried as u64);
        reg.counter("escalation.rescued", e.rescued as u64);
        e.stats.record_metrics(&mut reg, "escalation.scheduler");
        e.engine.record_metrics(&mut reg, "escalation.pipeline");
        e.fault.record_metrics(&mut reg, "escalation.fault");
    }
    reg.snapshot()
}

fn widen(starts: &[Vec<Complex<f64>>]) -> Vec<Vec<Complex<Dd>>> {
    starts
        .iter()
        .map(|x| x.iter().map(|z| z.convert()).collect())
        .collect()
}

// Residuals are diagnostics, so the naive evaluator (which accepts
// any square system, uniform or not) is the right checker here.

fn report_f64(target: &System<f64>, paths: Vec<LockstepPath<f64>>) -> Vec<PathReport> {
    let mut check = NaiveEvaluator::new(target.clone());
    paths
        .into_iter()
        .map(|p| PathReport {
            residual: check.evaluate(&p.x).residual_norm(),
            outcome: p.outcome,
            t: p.t,
            endpoint: PathEndpoint::Double(p.x),
        })
        .collect()
}

/// [`report_f64`] for the escalating policy: failed paths' reports are
/// about to be replaced by their double-double retries, so their
/// residual evaluation would be discarded — leave a placeholder.
fn report_f64_successes_only(
    target: &System<f64>,
    paths: Vec<LockstepPath<f64>>,
) -> Vec<PathReport> {
    let mut check = NaiveEvaluator::new(target.clone());
    paths
        .into_iter()
        .map(|p| PathReport {
            residual: if p.outcome == TrackOutcome::Success {
                check.evaluate(&p.x).residual_norm()
            } else {
                f64::NAN
            },
            outcome: p.outcome,
            t: p.t,
            endpoint: PathEndpoint::Double(p.x),
        })
        .collect()
}

fn report_dd(target: &System<Dd>, paths: Vec<LockstepPath<Dd>>) -> Vec<PathReport> {
    let mut check = NaiveEvaluator::new(target.clone());
    paths
        .into_iter()
        .map(|p| PathReport {
            residual: check.evaluate(&p.x).residual_norm().to_f64(),
            outcome: p.outcome,
            t: p.t,
            endpoint: PathEndpoint::DoubleDouble(p.x),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::escalate::track_escalating_engine;
    use crate::lockstep::track_lockstep;
    use crate::newton::NewtonParams;
    use crate::queue::track_queue;
    use polygpu_complex::C64;
    use polygpu_polysys::{
        parse_system, random_sparse_system, random_system, AdEvaluator, BenchmarkParams,
        SparseBenchmarkParams,
    };

    fn fixture(seed: u64) -> (System<f64>, StartSystem, Vec<Vec<C64>>) {
        let params = BenchmarkParams {
            n: 2,
            m: 2,
            k: 2,
            d: 2,
            seed,
        };
        let sys = random_system::<f64>(&params);
        let start = StartSystem::uniform(2, 2);
        let starts: Vec<Vec<C64>> = (0..4u128).map(|i| start.solution_by_index(i)).collect();
        (sys, start, starts)
    }

    fn request(sys: &System<f64>, start: &StartSystem, scheduler: SchedulerKind) -> SolveRequest {
        SolveRequest::new(sys.clone())
            .with_start(start.clone())
            .with_gamma_seed(7)
            .with_scheduler(scheduler)
    }

    fn gpu_solver() -> Solver {
        Solver::from_builder(Engine::builder().backend(Backend::GpuBatch { capacity: 4 }))
    }

    /// `solve()` with the per-path scheduler replays the legacy `track`
    /// loop bit for bit — endpoints, outcomes, final t, step counts.
    #[test]
    fn per_path_solve_matches_legacy_track() {
        let (sys, start, starts) = fixture(3);
        let params = TrackParams::default();
        let report = gpu_solver()
            .solve(&request(&sys, &start, SchedulerKind::PerPath))
            .unwrap();
        assert_eq!(report.paths.len(), 4);
        let (mut acc, mut rej, mut corr) = (0usize, 0usize, 0usize);
        for (i, (x0, got)) in starts.iter().zip(&report.paths).enumerate() {
            let f = AdEvaluator::new(sys.clone()).unwrap();
            let mut h = Homotopy::with_random_gamma(start.clone(), f, 7);
            let want = track(&mut h, x0, params);
            assert_eq!(got.outcome, want.outcome, "path {i}");
            assert_eq!(got.t, want.end().t, "path {i}");
            assert_eq!(
                got.endpoint,
                PathEndpoint::Double(want.end().x.clone()),
                "bit-identical endpoint, path {i}"
            );
            acc += want.steps_accepted;
            rej += want.steps_rejected;
            corr += want.corrector_iterations;
        }
        assert_eq!(report.stats.steps_accepted, acc);
        assert_eq!(report.stats.steps_rejected, rej);
        assert_eq!(report.stats.corrector_iterations, corr);
        // Per-path scheduling is one device round trip per evaluation.
        assert_eq!(report.stats.batch_rounds as u64, report.engine.batches);
        assert_eq!(report.backend, "gpu-batch");
    }

    /// The queue scheduler (any slot policy) equals the per-path
    /// scheduler bit for bit, and both equal the legacy `track_queue`.
    #[test]
    fn queue_solve_matches_legacy_and_per_path() {
        let (sys, start, starts) = fixture(3);
        let per_path = gpu_solver()
            .solve(&request(&sys, &start, SchedulerKind::PerPath))
            .unwrap();
        let mut legacy_h = BatchHomotopy::with_random_gamma(
            start.clone(),
            AdEvaluator::new(sys.clone()).unwrap(),
            7,
        );
        let legacy = track_queue(&mut legacy_h, &starts, TrackParams::default(), 3);
        for slots in [SlotPolicy::Auto, SlotPolicy::Fixed(2), SlotPolicy::Fixed(3)] {
            let report = gpu_solver()
                .solve(&request(&sys, &start, SchedulerKind::Queue { slots }))
                .unwrap();
            for (i, (got, want)) in report.paths.iter().zip(&per_path.paths).enumerate() {
                assert_eq!(got.outcome, want.outcome, "{slots:?}, path {i}");
                assert_eq!(got.endpoint, want.endpoint, "{slots:?}, path {i}");
                assert_eq!(got.t, want.t, "{slots:?}, path {i}");
            }
            for (i, (got, want)) in report.paths.iter().zip(&legacy.paths).enumerate() {
                assert_eq!(
                    got.endpoint,
                    PathEndpoint::Double(want.x.clone()),
                    "{slots:?} vs legacy track_queue, path {i}"
                );
            }
            assert_eq!(
                report.stats.corrector_iterations,
                legacy.stats.corrector_iterations
            );
        }
    }

    /// The lockstep scheduler equals the legacy `track_lockstep` run
    /// bit for bit and surfaces its statistics.
    #[test]
    fn lockstep_solve_matches_legacy_track_lockstep() {
        let (sys, start, starts) = fixture(3);
        let report = gpu_solver()
            .solve(&request(&sys, &start, SchedulerKind::Lockstep))
            .unwrap();
        let mut h = BatchHomotopy::with_random_gamma(
            start.clone(),
            AdEvaluator::new(sys.clone()).unwrap(),
            7,
        );
        let want = track_lockstep(&mut h, &starts, TrackParams::default());
        for (i, (got, w)) in report.paths.iter().zip(&want.paths).enumerate() {
            assert_eq!(got.outcome, w.outcome, "path {i}");
            assert_eq!(got.endpoint, PathEndpoint::Double(w.x.clone()), "path {i}");
        }
        assert_eq!(report.stats, want.stats());
        assert!(report.stats.rounds > 0);
    }

    /// `SlotPolicy::Auto` resolves the queue front through the
    /// engine's capabilities and keeps it > 0.8 occupied.
    #[test]
    fn queue_auto_slots_follow_engine_caps() {
        let (sys, start, _) = fixture(3);
        let solver =
            Solver::from_builder(Engine::builder().backend(Backend::GpuBatch { capacity: 2 }));
        let req = request(&sys, &start, SchedulerKind::default());
        let report = solver.solve(&req).unwrap();
        // caps: 1 device × capacity 2, clamped by nothing (4 paths).
        assert_eq!(report.caps.auto_slots(), 2);
        assert_eq!(report.stats.slots, 2);
        assert!(report.occupancy() > 0.8, "occupancy {}", report.occupancy());
        assert!(report.stats.refills >= 2);
    }

    /// Escalation re-enters the scheduler at double-double and matches
    /// the legacy `track_escalating_engine` driver bit for bit.
    #[test]
    fn escalating_solve_matches_legacy_escalating_engine() {
        let (sys, start, starts) = fixture(7);
        let brutal = NewtonParams {
            residual_tol: 1e-19, // below f64 round-off: every path escalates
            step_tol: 1e-21,
            max_iters: 8,
            ..Default::default()
        };
        let params = TrackParams {
            corrector: brutal,
            ..Default::default()
        };
        let builder = Engine::builder().backend(Backend::GpuBatch { capacity: 4 });
        let req = request(&sys, &start, SchedulerKind::PerPath)
            .with_params(params)
            .with_precision(PrecisionPolicy::Escalating { dd_params: params });
        let report = Solver::from_builder(builder.clone()).solve(&req).unwrap();
        let escalation = report.escalation.as_ref().expect("escalation pass ran");
        assert_eq!(escalation.retried, 4, "1e-19 is unreachable in f64");
        assert_eq!(report.escalated(), 4);
        assert!((report.escalation_rate() - 1.0).abs() < 1e-12);
        for (i, (x0, got)) in starts.iter().zip(&report.paths).enumerate() {
            let want =
                track_escalating_engine(&builder, &sys, &start, 7, x0, params, params).unwrap();
            assert_eq!(got.precision(), want.precision(), "path {i}");
            assert_eq!(got.success(), want.success(), "path {i}");
            assert_eq!(
                got.endpoint.to_dd(),
                want.end_dd(),
                "bit-identical dd endpoint, path {i}"
            );
        }
        // The dd engine came from the same spec and did modeled work.
        assert!(escalation.engine.evaluations > 0);
        assert!(escalation.engine.kernel_seconds > 0.0);
    }

    /// An easy request under the escalating policy never provisions
    /// the dd engine. (Path 1 of the seed-7 fixture is the known
    /// double-trackable path the escalate tests use.)
    #[test]
    fn easy_paths_do_not_escalate() {
        let (sys, start, _) = fixture(7);
        let req = request(&sys, &start, SchedulerKind::default())
            .with_starts(StartSelection::Indices(vec![1]))
            .with_gamma_seed(33)
            .with_precision(PrecisionPolicy::escalating_with(TrackParams::default()));
        let report = gpu_solver().solve(&req).unwrap();
        assert!(report.escalation.is_none());
        assert_eq!(report.escalated(), 0);
        assert_eq!(report.escalation_rate(), 0.0);
        assert!(report
            .paths
            .iter()
            .all(|p| p.precision() == UsedPrecision::Double));
    }

    /// Fixed double-double tracks everything in dd from the same spec
    /// (same gamma, exactly widened) and reports dd endpoints.
    #[test]
    fn fixed_dd_tracks_in_double_double() {
        let (sys, start, _) = fixture(7);
        let req = request(&sys, &start, SchedulerKind::default())
            .with_precision(PrecisionPolicy::Fixed(UsedPrecision::DoubleDouble));
        let report = gpu_solver().solve(&req).unwrap();
        assert!(report.successes() > 0);
        for p in &report.paths {
            assert_eq!(p.precision(), UsedPrecision::DoubleDouble);
            if p.success() {
                assert!(p.residual < 1e-9, "dd residual {:e}", p.residual);
                // The f64 view rounds the dd endpoint.
                assert_eq!(p.endpoint.to_f64().len(), 2);
            }
        }
    }

    /// Request validation: typed errors, not panics.
    #[test]
    fn request_errors_are_typed() {
        let (sys, _, _) = fixture(3);
        let req = SolveRequest::new(sys.clone()).with_starts(StartSelection::Indices(vec![99]));
        let err = Solver::new().solve(&req).unwrap_err();
        assert!(
            matches!(err, SolveError::StartIndexOutOfRange { index: 99, .. }),
            "{err}"
        );

        let req = SolveRequest::new(sys.clone()).with_start(StartSystem::uniform(3, 2));
        let err = Solver::new().solve(&req).unwrap_err();
        assert!(
            matches!(
                err,
                SolveError::DimensionMismatch {
                    start: 3,
                    target: 2
                }
            ),
            "{err}"
        );

        // An explicit start point of the wrong length is rejected up
        // front, not deep in evaluation.
        let req = SolveRequest::new(sys.clone()).with_starts(StartSelection::Points(vec![vec![
            Complex::from_f64(1.0, 0.0),
        ]]));
        let err = Solver::new().solve(&req).unwrap_err();
        assert!(
            matches!(
                err,
                SolveError::PointDimension {
                    point: 0,
                    got: 1,
                    expected: 2
                }
            ),
            "{err}"
        );

        // A rectangular target (constructible since row sharding made
        // System::rectangular public) is rejected with a typed error
        // instead of panicking inside the square-only LU.
        let rect = sys.row_block(&[0]);
        assert!(!rect.is_square());
        let req = SolveRequest::new(rect).with_start(StartSystem::uniform(2, 2));
        let err = Solver::new().solve(&req).unwrap_err();
        assert!(
            matches!(err, SolveError::RectangularTarget { rows: 1, dim: 2 }),
            "{err}"
        );

        let req = SolveRequest::new(sys);
        let err = Solver::from_builder(Engine::builder().block_dim(0))
            .solve(&req)
            .unwrap_err();
        assert!(matches!(err, SolveError::Build(_)), "{err}");
        // Every variant prints through Display + Error.
        let e: Box<dyn std::error::Error> = Box::new(err);
        assert!(e.to_string().contains("engine provisioning"));
        assert!(e.source().is_some());
    }

    /// Start selections resolve deterministically.
    #[test]
    fn start_selection_resolves() {
        let (sys, start, starts) = fixture(3);
        let req = SolveRequest::new(sys).with_start(start.clone());
        assert_eq!(req.resolve_starts().unwrap().len(), 4);
        assert_eq!(
            req.clone()
                .with_starts(StartSelection::FirstN(2))
                .resolve_starts()
                .unwrap(),
            starts[..2].to_vec()
        );
        assert_eq!(
            req.clone()
                .with_starts(StartSelection::Indices(vec![3, 1]))
                .resolve_starts()
                .unwrap(),
            vec![starts[3].clone(), starts[1].clone()]
        );
        assert_eq!(
            req.with_starts(StartSelection::Points(starts.clone()))
                .resolve_starts()
                .unwrap(),
            starts
        );
    }

    /// The chaos headline: under seeded fault injection, a solve either
    /// recovers — with endpoints **bit-identical** to the fault-free
    /// run — or surfaces a typed [`SolveError::Fault`]. It never panics
    /// and never silently degrades. The seed sweep must actually hit
    /// both recovered-with-faults runs and at least one fault, or the
    /// invariant went untested.
    #[test]
    fn chaos_solve_recovers_bit_identical_or_types_the_fault() {
        use polygpu_core::FaultPlan;

        let (sys, start, _) = fixture(11);
        for scheduler in [
            SchedulerKind::Lockstep,
            SchedulerKind::Queue {
                slots: SlotPolicy::Auto,
            },
        ] {
            let clean = gpu_solver()
                .solve(&request(&sys, &start, scheduler))
                .unwrap();
            assert!(!clean.fault.any(), "fault-free engines report no faults");

            let (mut faulted, mut recovered, mut surfaced) = (0u32, 0u32, 0u32);
            for seed in 0..24u64 {
                let solver = Solver::from_builder(
                    Engine::builder()
                        .backend(Backend::GpuBatch { capacity: 4 })
                        .fault_plan(FaultPlan::new(seed, 5_000)),
                );
                match solver.solve(&request(&sys, &start, scheduler)) {
                    Ok(report) => {
                        for (i, (got, want)) in report.paths.iter().zip(&clean.paths).enumerate() {
                            assert_eq!(got.outcome, want.outcome, "seed {seed} path {i}");
                            assert_eq!(
                                got.endpoint, want.endpoint,
                                "seed {seed} path {i}: recovery must be bit-identical"
                            );
                        }
                        if report.fault.any() {
                            faulted += 1;
                            if report.fault.recovered_rounds > 0 {
                                recovered += 1;
                                assert!(
                                    report.fault.backoff_seconds > 0.0,
                                    "seed {seed}: retries charge modeled backoff"
                                );
                            }
                        }
                    }
                    Err(SolveError::Fault(e)) => {
                        surfaced += 1;
                        assert!(
                            matches!(e, BatchError::Fault(_)),
                            "seed {seed}: a single-device engine surfaces the fault itself"
                        );
                    }
                    Err(e) => panic!("seed {seed}: unexpected non-fault error: {e}"),
                }
            }
            assert!(faulted > 0, "{scheduler:?}: the sweep never faulted");
            assert!(recovered > 0, "{scheduler:?}: the sweep never recovered");
            assert!(surfaced > 0, "{scheduler:?}: no seed exhausted recovery");
        }
    }

    /// Same request, same seed, two runs: the exported Chrome trace is
    /// byte-identical, and the span tree reconciles with the report's
    /// stats (root span duration = modeled wall, pass span = root).
    #[test]
    fn solve_trace_is_deterministic_and_reconciles() {
        use polygpu_obs::{chrome_trace_json, CollectingTracer, MetricValue};

        let (sys, start, _) = fixture(3);
        let run = || {
            let tracer = Arc::new(CollectingTracer::new());
            let req = request(&sys, &start, SchedulerKind::default()).with_tracer(tracer.clone());
            let report = gpu_solver().solve(&req).unwrap();
            (tracer.spans(), report)
        };
        let (spans, report) = run();
        let (spans2, _) = run();
        assert_eq!(
            chrome_trace_json(&spans),
            chrome_trace_json(&spans2),
            "same request, same seed: byte-identical trace"
        );

        let solve = spans.iter().find(|s| s.kind == SpanKind::Solve).unwrap();
        assert_eq!(solve.start, 0.0);
        assert!(
            (solve.dur - report.modeled_wall_seconds()).abs() <= 1e-12 * solve.dur.max(1.0),
            "root span ({}) reconciles with the report's wall ({})",
            solve.dur,
            report.modeled_wall_seconds()
        );
        let passes: Vec<_> = spans.iter().filter(|s| s.kind == SpanKind::Pass).collect();
        assert_eq!(passes.len(), 1);
        assert_eq!(passes[0].dur, solve.dur);
        // Scheduler rounds and device ops both made it into the tree.
        assert!(spans
            .iter()
            .any(|s| s.kind == SpanKind::Round && s.track == Track::Scheduler));
        assert!(spans
            .iter()
            .any(|s| matches!(s.track, Track::Device(0) | Track::DeviceLane(0, _))));
        // The telemetry snapshot subsumes the stats structs.
        assert_eq!(
            report.telemetry.get("pipeline.evaluations"),
            Some(MetricValue::Counter(report.engine.evaluations))
        );
        assert_eq!(
            report.telemetry.get("solve.paths"),
            Some(MetricValue::Counter(report.paths.len() as u64))
        );
        assert!(report.telemetry.diff(&report.telemetry).is_empty());
    }

    /// Installing the no-op tracer (or any tracer) changes nothing:
    /// endpoints, scheduler stats and modeled engine timings are
    /// bit-identical to the untraced run.
    #[test]
    fn noop_tracer_leaves_solve_bit_identical() {
        use polygpu_obs::NoopTracer;

        let (sys, start, _) = fixture(3);
        let plain = gpu_solver()
            .solve(&request(&sys, &start, SchedulerKind::default()))
            .unwrap();
        let traced = gpu_solver()
            .solve(
                &request(&sys, &start, SchedulerKind::default()).with_tracer(Arc::new(NoopTracer)),
            )
            .unwrap();
        for (i, (a, b)) in plain.paths.iter().zip(&traced.paths).enumerate() {
            assert_eq!(a.outcome, b.outcome, "path {i}");
            assert_eq!(a.endpoint, b.endpoint, "path {i}");
        }
        assert_eq!(plain.stats, traced.stats);
        assert_eq!(plain.engine.wall_seconds, traced.engine.wall_seconds);
        assert_eq!(plain.telemetry, traced.telemetry);
    }

    /// Under escalation the dd pass's spans start exactly where the
    /// primary pass's modeled clock ended, and the root span covers
    /// both.
    #[test]
    fn escalation_trace_appends_dd_pass_after_primary() {
        use polygpu_obs::CollectingTracer;

        let (sys, start, _) = fixture(7);
        let brutal = NewtonParams {
            residual_tol: 1e-19,
            step_tol: 1e-21,
            max_iters: 8,
            ..Default::default()
        };
        let params = TrackParams {
            corrector: brutal,
            ..Default::default()
        };
        let tracer = Arc::new(CollectingTracer::new());
        let req = request(&sys, &start, SchedulerKind::default())
            .with_params(params)
            .with_precision(PrecisionPolicy::Escalating { dd_params: params })
            .with_tracer(tracer.clone());
        let report = gpu_solver().solve(&req).unwrap();
        assert!(report.escalation.is_some());

        let spans = tracer.spans();
        let passes: Vec<_> = spans.iter().filter(|s| s.kind == SpanKind::Pass).collect();
        assert_eq!(passes.len(), 2, "primary + escalation");
        assert_eq!(passes[0].start, 0.0);
        assert_eq!(
            passes[1].start, passes[0].dur,
            "the dd pass starts where the primary ended"
        );
        let solve = spans.iter().find(|s| s.kind == SpanKind::Solve).unwrap();
        assert!(
            (solve.dur - (passes[0].dur + passes[1].dur)).abs() <= 1e-12 * solve.dur,
            "root span spans both passes"
        );
    }

    /// A request resolving to zero paths keeps every report ratio total
    /// (no div-by-zero, no NaN).
    #[test]
    fn empty_solve_report_ratios_are_total() {
        let (sys, start, _) = fixture(3);
        let req =
            request(&sys, &start, SchedulerKind::PerPath).with_starts(StartSelection::FirstN(0));
        let report = gpu_solver().solve(&req).unwrap();
        assert!(report.paths.is_empty());
        assert_eq!(report.paths_per_second(), 0.0);
        assert_eq!(report.escalation_rate(), 0.0);
        assert_eq!(report.occupancy(), 0.0);
        assert_eq!(report.modeled_wall_seconds(), 0.0);
        assert!(!report.telemetry.is_empty());
    }

    /// Sparse quadratics under mixed-cell starts: mixed-volume many
    /// paths (strictly fewer than Bézout), same roots, bit-identical
    /// endpoints across schedulers.
    fn packed_gpu_solver() -> Solver {
        use polygpu_core::EncodingKind;
        Solver::from_builder(
            Engine::builder()
                .backend(Backend::GpuBatch { capacity: 4 })
                .encoding(EncodingKind::Packed),
        )
    }

    #[test]
    fn mixed_cells_track_fewer_paths_bit_identical_across_schedulers() {
        let target = parse_system::<f64>("x0*x1 + x0 + 1; x0*x1 + x1 + 2").unwrap();
        let kind = StartKind::MixedCells { lift_seed: 7 };
        let dense = packed_gpu_solver()
            .solve(&SolveRequest::new(target.clone()))
            .unwrap();
        let per_path = packed_gpu_solver()
            .solve(
                &SolveRequest::new(target.clone())
                    .with_start_kind(kind)
                    .with_scheduler(SchedulerKind::PerPath),
            )
            .unwrap();
        let queue = packed_gpu_solver()
            .solve(&SolveRequest::new(target.clone()).with_start_kind(kind))
            .unwrap();
        assert_eq!(dense.paths.len(), 4, "Bézout paths");
        assert_eq!(per_path.paths.len(), 2, "mixed-volume paths");
        assert_eq!(per_path.successes(), 2);
        for (i, (a, b)) in per_path.paths.iter().zip(&queue.paths).enumerate() {
            assert_eq!(a.outcome, b.outcome, "path {i}");
            assert_eq!(a.endpoint, b.endpoint, "bit-identical endpoint, path {i}");
            assert!(a.residual < 1e-8, "path {i} residual {:e}", a.residual);
        }
        // The two mixed-cell roots are among the dense solve's roots.
        for p in &per_path.paths {
            let x = p.endpoint.to_f64();
            let near = dense.paths.iter().filter(|d| d.success()).any(|d| {
                d.endpoint
                    .to_f64()
                    .iter()
                    .zip(&x)
                    .all(|(a, b)| (*a - *b).abs() < 1e-6)
            });
            assert!(near, "mixed-cell endpoint missing from dense solve");
        }
    }

    /// `StartSelection` indexes the concatenation of every cell's
    /// roots; `Points` and out-of-range indices reject typed, as do
    /// targets the cell enumeration cannot handle.
    #[test]
    fn mixed_cells_selection_and_typed_errors() {
        let target = parse_system::<f64>("x0*x1 + x0 + 1; x0*x1 + x1 + 2").unwrap();
        let kind = StartKind::MixedCells { lift_seed: 7 };
        let all = packed_gpu_solver()
            .solve(&SolveRequest::new(target.clone()).with_start_kind(kind))
            .unwrap();
        let first = packed_gpu_solver()
            .solve(
                &SolveRequest::new(target.clone())
                    .with_start_kind(kind)
                    .with_starts(StartSelection::FirstN(1)),
            )
            .unwrap();
        assert_eq!(first.paths.len(), 1);
        assert_eq!(first.paths[0].endpoint, all.paths[0].endpoint);
        let picked = packed_gpu_solver()
            .solve(
                &SolveRequest::new(target.clone())
                    .with_start_kind(kind)
                    .with_starts(StartSelection::Indices(vec![1, 0])),
            )
            .unwrap();
        assert_eq!(picked.paths[0].endpoint, all.paths[1].endpoint);
        assert_eq!(picked.paths[1].endpoint, all.paths[0].endpoint);

        let err = Solver::new()
            .solve(
                &SolveRequest::new(target.clone())
                    .with_start_kind(kind)
                    .with_starts(StartSelection::Indices(vec![9])),
            )
            .unwrap_err();
        assert!(
            matches!(err, SolveError::StartIndexOutOfRange { index: 9, count: 2 }),
            "{err}"
        );
        let err = Solver::new()
            .solve(
                &SolveRequest::new(target)
                    .with_start_kind(kind)
                    .with_starts(StartSelection::Points(vec![vec![C64::one(); 2]])),
            )
            .unwrap_err();
        assert!(matches!(err, SolveError::PointsWithMixedCells), "{err}");

        // An 8-dimensional target is past the mixed-cell dimension cap.
        let big = random_sparse_system::<f64>(&SparseBenchmarkParams {
            n: 8,
            m_min: 2,
            m_max: 3,
            k_min: 1,
            k_max: 3,
            d: 2,
            seed: 1,
        });
        let err = Solver::new()
            .solve(&SolveRequest::new(big).with_start_kind(StartKind::MixedCells { lift_seed: 0 }))
            .unwrap_err();
        assert!(matches!(err, SolveError::MixedCells(_)), "{err}");
    }

    /// Precision escalation re-enters the scheduler per cell: failed
    /// mixed-cell paths retry in double-double from the same binomial
    /// start systems.
    #[test]
    fn mixed_cells_escalate_per_cell() {
        let target = parse_system::<f64>("x0*x1 + x0 + 1; x0*x1 + x1 + 2").unwrap();
        let brutal = NewtonParams {
            residual_tol: 1e-19, // below f64 round-off: every path escalates
            step_tol: 1e-21,
            max_iters: 8,
            ..Default::default()
        };
        let params = TrackParams {
            corrector: brutal,
            ..Default::default()
        };
        let report = packed_gpu_solver()
            .solve(
                &SolveRequest::new(target)
                    .with_start_kind(StartKind::MixedCells { lift_seed: 7 })
                    .with_params(params)
                    .with_precision(PrecisionPolicy::Escalating { dd_params: params }),
            )
            .unwrap();
        let escalation = report.escalation.as_ref().expect("escalation pass ran");
        assert_eq!(escalation.retried, 2, "1e-19 is unreachable in f64");
        assert_eq!(escalation.rescued, 2);
        assert!(report
            .paths
            .iter()
            .all(|p| p.precision() == UsedPrecision::DoubleDouble));
        assert!(report.paths.iter().all(|p| p.residual < 1e-18));
    }

    /// With recovery disabled every injected fault surfaces typed on
    /// the first strike: zero retried rounds, zero modeled backoff.
    #[test]
    fn chaos_solve_without_recovery_fails_fast() {
        use polygpu_core::FaultPlan;

        let (sys, start, _) = fixture(11);
        let solver = Solver::from_builder(
            Engine::builder()
                .backend(Backend::GpuBatch { capacity: 4 })
                // High enough that the first batch round faults.
                .fault_plan(FaultPlan::new(5, 400_000)),
        );
        let req =
            request(&sys, &start, SchedulerKind::default()).with_recovery(RecoveryPolicy::none());
        match solver.solve(&req) {
            Err(SolveError::Fault(e)) => {
                let msg = e.to_string();
                assert!(msg.contains("injected fault"), "{msg}");
            }
            Ok(r) => panic!(
                "a 40% fault rate with no recovery cannot finish cleanly (faults={})",
                r.fault.faults
            ),
            Err(e) => panic!("unexpected non-fault error: {e}"),
        }
    }
}
