//! Fault-aware batched evaluation for the schedulers.
//!
//! The batched drivers ([`crate::queue::track_queue`],
//! [`crate::lockstep::track_lockstep`]) were written against
//! [`BatchSystemEvaluator`], whose `evaluate_batch` cannot fail — an
//! engine with fault injection armed
//! ([`polygpu_core::engine::EngineBuilder::fault_plan`]) would have to
//! panic inside it. This module adds the typed-failure surface:
//!
//! * [`TryBatchEvaluator`] — a batch evaluator whose batches may fail
//!   with a [`BatchError`] (injected faults, degraded fleets). Every
//!   workspace evaluator implements it; pure-CPU evaluators are
//!   infallible and use the default `Ok`-wrapping method.
//! * [`FaultReport`] — what a recovering scheduler saw and did:
//!   faults, retried and recovered rounds, modeled backoff, plus the
//!   engine's own [`FaultStats`].
//! * [`retry_round`] — the shared scheduler-level retry loop: a failed
//!   round backs off (modeled seconds, not host time) and re-runs;
//!   slot state is only committed after a round's evaluations arrive,
//!   so the live slots *are* the checkpoint and a retry replays only
//!   the affected round, bit for bit.
//!
//! The recovering drivers themselves live next to their infallible
//! siblings: [`crate::queue::track_queue_recovering`] and
//! [`crate::lockstep::track_lockstep_recovering`].

use crate::lockstep::{BatchHomotopy, BatchHomotopyAt};
use crate::start::StartSystem;
use polygpu_complex::{Complex, Real};
use polygpu_core::engine::{AnyEvaluator, CpuReferenceEngine};
use polygpu_core::{
    BatchError, BatchGpuEvaluator, FaultKind, FaultStats, GpuEvaluator, RecoveryPolicy,
};
use polygpu_obs::MetricsRegistry;
use polygpu_polysys::{
    AdEvaluator, BatchSystemEvaluator, NaiveEvaluator, SystemEval, SystemEvaluator,
};
use std::fmt;

/// A batch evaluator whose batches may fail with a typed
/// [`BatchError`] instead of panicking — the evaluation surface the
/// recovering schedulers drive. Infallible evaluators take the default
/// method; fault-injecting engines override it with their typed path,
/// so an injected fault is *always* a value at this layer, never a
/// panic and never a silently wrong result.
pub trait TryBatchEvaluator<R: Real>: BatchSystemEvaluator<R> {
    /// Evaluate a batch, surfacing faults as values. The default
    /// wraps the infallible [`BatchSystemEvaluator::evaluate_batch`].
    fn try_batch(&mut self, points: &[Vec<Complex<R>>]) -> Result<Vec<SystemEval<R>>, BatchError> {
        Ok(self.evaluate_batch(points))
    }

    /// The evaluator's cumulative modeled wall clock, in seconds —
    /// the timestamp source for scheduler-level trace spans. Pure-CPU
    /// evaluators have no modeled clock and report `0.0` (the default),
    /// which keeps their spans degenerate but still ordered.
    fn modeled_wall_seconds(&self) -> f64 {
        0.0
    }
}

impl<R: Real> TryBatchEvaluator<R> for StartSystem {}
impl<R: Real> TryBatchEvaluator<R> for crate::start::AnyStart {}
impl<R: Real> TryBatchEvaluator<R> for AdEvaluator<R> {}
impl<R: Real> TryBatchEvaluator<R> for NaiveEvaluator<R> {}

impl<R: Real> TryBatchEvaluator<R> for CpuReferenceEngine<R> {
    fn try_batch(&mut self, points: &[Vec<Complex<R>>]) -> Result<Vec<SystemEval<R>>, BatchError> {
        self.try_evaluate_batch(points)
    }

    fn modeled_wall_seconds(&self) -> f64 {
        self.engine_stats().wall_seconds
    }
}

impl<R: Real> TryBatchEvaluator<R> for GpuEvaluator<R> {
    fn try_batch(&mut self, points: &[Vec<Complex<R>>]) -> Result<Vec<SystemEval<R>>, BatchError> {
        points.iter().map(|x| self.try_evaluate(x)).collect()
    }

    fn modeled_wall_seconds(&self) -> f64 {
        self.stats().wall_seconds
    }
}

impl<R: Real> TryBatchEvaluator<R> for BatchGpuEvaluator<R> {
    fn try_batch(&mut self, points: &[Vec<Complex<R>>]) -> Result<Vec<SystemEval<R>>, BatchError> {
        BatchGpuEvaluator::try_evaluate_batch(self, points)
    }

    fn modeled_wall_seconds(&self) -> f64 {
        self.stats().wall_seconds
    }
}

impl<R: Real> TryBatchEvaluator<R> for Box<dyn AnyEvaluator<R>> {
    fn try_batch(&mut self, points: &[Vec<Complex<R>>]) -> Result<Vec<SystemEval<R>>, BatchError> {
        (**self).try_evaluate_batch(points)
    }

    fn modeled_wall_seconds(&self) -> f64 {
        self.engine_stats().wall_seconds
    }
}

/// Borrowed engines are fallible too — how a serving layer drives the
/// recovering schedulers over an evaluator that stays resident in a
/// `Session`/`ClusterSession` (a `Box<dyn AnyEvaluator>` would demand
/// ownership and a `'static` engine).
impl<R: Real> TryBatchEvaluator<R> for &mut dyn AnyEvaluator<R> {
    fn try_batch(&mut self, points: &[Vec<Complex<R>>]) -> Result<Vec<SystemEval<R>>, BatchError> {
        (**self).try_evaluate_batch(points)
    }

    fn modeled_wall_seconds(&self) -> f64 {
        self.engine_stats().wall_seconds
    }
}

/// Adapter giving any [`BatchSystemEvaluator`] the
/// [`TryBatchEvaluator`] surface via the default (`Ok`-wrapping)
/// method — how the infallible legacy drivers delegate to the
/// recovering implementations. An engine with fault injection armed
/// must not be wrapped in this (its `evaluate_batch` panics on a
/// fault); hand it to the `*_recovering` drivers directly.
pub struct Infallible<E>(pub E);

impl<R: Real, E: BatchSystemEvaluator<R>> SystemEvaluator<R> for Infallible<E> {
    fn dim(&self) -> usize {
        self.0.dim()
    }

    fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        self.0.evaluate(x)
    }

    fn name(&self) -> &str {
        self.0.name()
    }
}

impl<R: Real, E: BatchSystemEvaluator<R>> BatchSystemEvaluator<R> for Infallible<E> {
    fn max_batch(&self) -> usize {
        self.0.max_batch()
    }

    fn evaluate_batch(&mut self, points: &[Vec<Complex<R>>]) -> Vec<SystemEval<R>> {
        self.0.evaluate_batch(points)
    }
}

impl<R: Real, E: BatchSystemEvaluator<R>> TryBatchEvaluator<R> for Infallible<E> {}

/// What a recovering scheduler observed and spent on faults.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultReport {
    /// Fault errors that reached the scheduler (the engine's own
    /// [`FaultStats`] additionally counts faults its internal recovery
    /// absorbed before they got here).
    pub faults: u64,
    /// Rounds re-run after a fault.
    pub retried_rounds: u64,
    /// Rounds that eventually succeeded after one or more retries.
    pub recovered_rounds: u64,
    /// Modeled backoff seconds charged before retries.
    pub backoff_seconds: f64,
    /// The engine's own fault accounting (injection counts, detection
    /// latency, failovers), copied off the engine after the run.
    pub engine: FaultStats,
}

impl FaultReport {
    /// Did any fault reach this scheduler or its engine?
    pub fn any(&self) -> bool {
        self.faults > 0 || self.engine.faults > 0
    }

    /// Fold this report into a [`MetricsRegistry`] under `prefix`.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.counter(&format!("{prefix}.faults"), self.faults);
        reg.counter(&format!("{prefix}.retried_rounds"), self.retried_rounds);
        reg.counter(&format!("{prefix}.recovered_rounds"), self.recovered_rounds);
        reg.gauge(&format!("{prefix}.backoff_seconds"), self.backoff_seconds);
        self.engine.record_metrics(reg, &format!("{prefix}.engine"));
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  faults                {:>12}", self.faults)?;
        writeln!(f, "  retried rounds        {:>12}", self.retried_rounds)?;
        writeln!(f, "  recovered rounds      {:>12}", self.recovered_rounds)?;
        writeln!(f, "  backoff seconds       {:>12.3e}", self.backoff_seconds)?;
        write!(f, "{}", self.engine)
    }
}

/// Run `round` until it succeeds or recovery is exhausted, charging
/// modeled backoff between attempts. [`FaultKind::DeviceLost`] is
/// never retried at this level — a lost device stays lost, so the
/// retry could only fail identically; it surfaces immediately (an
/// engine with its own failover, e.g. a sharded cluster, handles
/// device loss internally and never returns it here).
/// Non-fault errors (contract violations, degraded fleets) are not
/// retryable and pass straight through.
pub fn retry_round<T>(
    recovery: &RecoveryPolicy,
    report: &mut FaultReport,
    mut round: impl FnMut() -> Result<T, BatchError>,
) -> Result<T, BatchError> {
    let mut attempt = 0u32;
    loop {
        match round() {
            Ok(v) => {
                if attempt > 0 {
                    report.recovered_rounds += 1;
                }
                return Ok(v);
            }
            Err(BatchError::Fault(fe)) => {
                report.faults += 1;
                if fe.kind == FaultKind::DeviceLost || attempt >= recovery.max_retries {
                    return Err(BatchError::Fault(fe));
                }
                report.backoff_seconds += recovery.backoff_seconds(attempt);
                report.retried_rounds += 1;
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// One homotopy evaluation per point: the combined system/Jacobian
/// values and the `∂h/∂t` column the predictors consume.
pub type HomotopyEval<R> = (SystemEval<R>, Vec<Complex<R>>);

impl<R: Real, EG: TryBatchEvaluator<R>, EF: TryBatchEvaluator<R>> BatchHomotopy<R, EG, EF> {
    /// Fallible sibling of [`BatchHomotopy::eval_batch_at_each`]: the
    /// same two endpoint batches and the same per-point combination
    /// arithmetic, but an endpoint fault comes back as a value.
    pub fn try_eval_batch_at_each(
        &mut self,
        points: &[Vec<Complex<R>>],
        ts: &[R],
    ) -> Result<Vec<HomotopyEval<R>>, BatchError> {
        assert_eq!(points.len(), ts.len(), "one t per point");
        let ges = self.g.try_batch(points)?;
        let fes = self.f.try_batch(points)?;
        Ok(self.combine(ges, fes, ts))
    }

    /// Fallible sibling of [`BatchHomotopy::eval_batch_at`].
    pub fn try_eval_batch_at(
        &mut self,
        points: &[Vec<Complex<R>>],
        t: R,
    ) -> Result<Vec<HomotopyEval<R>>, BatchError> {
        self.try_eval_batch_at_each(points, &vec![t; points.len()])
    }
}

impl<'h, R: Real, EG: TryBatchEvaluator<R>, EF: TryBatchEvaluator<R>> TryBatchEvaluator<R>
    for BatchHomotopyAt<'h, R, EG, EF>
{
    fn try_batch(&mut self, points: &[Vec<Complex<R>>]) -> Result<Vec<SystemEval<R>>, BatchError> {
        let t = self.t;
        Ok(self
            .h
            .try_eval_batch_at(points, t)?
            .into_iter()
            .map(|(eval, _)| eval)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_core::FaultError;

    // Compile-time proof which types carry the fallible surface.
    fn assert_try_batch<R: Real, E: TryBatchEvaluator<R>>() {}

    #[test]
    fn the_workspace_evaluators_are_try_batch() {
        assert_try_batch::<f64, AdEvaluator<f64>>();
        assert_try_batch::<f64, NaiveEvaluator<f64>>();
        assert_try_batch::<f64, StartSystem>();
        assert_try_batch::<f64, GpuEvaluator<f64>>();
        assert_try_batch::<f64, BatchGpuEvaluator<f64>>();
        assert_try_batch::<f64, Box<dyn AnyEvaluator<f64>>>();
        assert_try_batch::<f64, &mut dyn AnyEvaluator<f64>>();
        assert_try_batch::<f64, CpuReferenceEngine<f64>>();
    }

    #[test]
    fn retry_round_backs_off_then_recovers() {
        let recovery = RecoveryPolicy::default();
        let mut report = FaultReport::default();
        let mut calls = 0u32;
        let out = retry_round(&recovery, &mut report, || {
            calls += 1;
            if calls == 1 {
                Err(BatchError::Fault(FaultError {
                    device: 0,
                    op_index: 0,
                    kind: FaultKind::LaunchFailed,
                    detection_seconds: 1e-6,
                }))
            } else {
                Ok(42)
            }
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(calls, 2);
        assert_eq!(report.faults, 1);
        assert_eq!(report.retried_rounds, 1);
        assert_eq!(report.recovered_rounds, 1);
        assert!(report.backoff_seconds > 0.0);
        assert!(report.any());
    }

    #[test]
    fn device_loss_and_exhaustion_surface_typed() {
        let fault = || {
            Err::<(), _>(BatchError::Fault(FaultError {
                device: 0,
                op_index: 3,
                kind: FaultKind::DeviceLost,
                detection_seconds: 1e-6,
            }))
        };
        let mut report = FaultReport::default();
        // Device loss is terminal at this level even with retries left.
        let err = retry_round(&RecoveryPolicy::default(), &mut report, fault).unwrap_err();
        assert!(matches!(
            err,
            BatchError::Fault(FaultError {
                kind: FaultKind::DeviceLost,
                ..
            })
        ));
        assert_eq!(report.retried_rounds, 0);

        // Exhausted retries surface the last fault.
        let mut report = FaultReport::default();
        let err = retry_round(&RecoveryPolicy::default(), &mut report, || {
            Err::<(), _>(BatchError::Fault(FaultError {
                device: 1,
                op_index: 9,
                kind: FaultKind::TransferCorrupt,
                detection_seconds: 1e-6,
            }))
        })
        .unwrap_err();
        assert!(matches!(err, BatchError::Fault(_)));
        assert_eq!(
            report.retried_rounds,
            RecoveryPolicy::default().max_retries as u64
        );
        assert_eq!(report.recovered_rounds, 0);
    }
}
