//! Precision escalation: track in hardware doubles, fall back to
//! double-double when the path demands more accuracy.
//!
//! This is the operational form of the paper's motivation: "When
//! running many path tracking jobs, a couple or perhaps just one
//! solution path may require extended multiprecision arithmetic" (§1).
//! Most paths finish in fast double precision; the rare hard path is
//! retried in double-double, whose ~8x cost is exactly what the
//! parallel evaluator is meant to absorb.

use crate::homotopy::Homotopy;
use crate::tracker::{track, TrackParams, TrackResult};
use polygpu_complex::Complex;
use polygpu_polysys::SystemEvaluator;
use polygpu_qd::Dd;

/// Which precision completed the path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UsedPrecision {
    Double,
    DoubleDouble,
}

/// Outcome of an escalating track.
#[derive(Debug, Clone)]
pub enum EscalatedTrack {
    /// Finished in hardware doubles.
    Double(TrackResult<f64>),
    /// Needed (and got) double-double; the double attempt's failure is
    /// kept for diagnostics.
    DoubleDouble {
        double_attempt: TrackResult<f64>,
        result: TrackResult<Dd>,
    },
}

impl EscalatedTrack {
    pub fn success(&self) -> bool {
        match self {
            EscalatedTrack::Double(r) => r.success(),
            EscalatedTrack::DoubleDouble { result, .. } => result.success(),
        }
    }

    pub fn precision(&self) -> UsedPrecision {
        match self {
            EscalatedTrack::Double(_) => UsedPrecision::Double,
            EscalatedTrack::DoubleDouble { .. } => UsedPrecision::DoubleDouble,
        }
    }

    /// Endpoint in double-double (exact promotion when the double run
    /// sufficed).
    pub fn end_dd(&self) -> Vec<Complex<Dd>> {
        match self {
            EscalatedTrack::Double(r) => r.end().x.iter().map(|z| z.convert()).collect(),
            EscalatedTrack::DoubleDouble { result, .. } => result.end().x.clone(),
        }
    }
}

/// Track a path in doubles; on any failure, retrack the whole path in
/// double-double with `dd_params` (typically tighter tolerances).
///
/// The two homotopies must describe the same path (same systems and
/// gamma, different scalar precision); keeping them as separate
/// arguments lets callers pair any two evaluator stacks (CPU/CPU,
/// GPU/CPU, …).
pub fn track_escalating<EG64, EF64, EGDD, EFDD>(
    h64: &mut Homotopy<f64, EG64, EF64>,
    hdd: &mut Homotopy<Dd, EGDD, EFDD>,
    x0: &[Complex<f64>],
    params_f64: TrackParams,
    params_dd: TrackParams,
) -> EscalatedTrack
where
    EG64: SystemEvaluator<f64>,
    EF64: SystemEvaluator<f64>,
    EGDD: SystemEvaluator<Dd>,
    EFDD: SystemEvaluator<Dd>,
{
    let attempt = track(h64, x0, params_f64);
    if attempt.success() {
        return EscalatedTrack::Double(attempt);
    }
    let x0_dd: Vec<Complex<Dd>> = x0.iter().map(|z| z.convert()).collect();
    let result = track(hdd, &x0_dd, params_dd);
    EscalatedTrack::DoubleDouble {
        double_attempt: attempt,
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newton::NewtonParams;
    use crate::start::StartSystem;
    use polygpu_complex::C64;
    use polygpu_polysys::{random_system, AdEvaluator, BenchmarkParams, System};

    fn setup(seed: u64) -> (System<f64>, StartSystem, Vec<C64>) {
        let params = BenchmarkParams {
            n: 2,
            m: 2,
            k: 2,
            d: 2,
            seed,
        };
        let sys = random_system::<f64>(&params);
        let start = StartSystem::uniform(2, 2);
        let x0: Vec<C64> = start.solution_by_index(1);
        (sys, start, x0)
    }

    #[allow(clippy::type_complexity)] // test fixture returns both precisions
    fn homotopies(
        sys: &System<f64>,
        start: &StartSystem,
    ) -> (
        Homotopy<f64, StartSystem, AdEvaluator<f64>>,
        Homotopy<Dd, StartSystem, AdEvaluator<Dd>>,
    ) {
        let h64 =
            Homotopy::with_random_gamma(start.clone(), AdEvaluator::new(sys.clone()).unwrap(), 33);
        let hdd = Homotopy::new(
            start.clone(),
            AdEvaluator::new(sys.convert::<Dd>()).unwrap(),
            h64.gamma.convert(), // identical gamma: same path
        );
        (h64, hdd)
    }

    #[test]
    fn easy_path_stays_in_double() {
        // Seed chosen so the double-precision track of this random
        // system succeeds under the workspace's deterministic RNG.
        let (sys, start, x0) = setup(7);
        let (mut h64, mut hdd) = homotopies(&sys, &start);
        let r = track_escalating(
            &mut h64,
            &mut hdd,
            &x0,
            TrackParams::default(),
            TrackParams::default(),
        );
        assert!(r.success());
        assert_eq!(r.precision(), UsedPrecision::Double);
        assert_eq!(r.end_dd().len(), 2);
    }

    #[test]
    fn unreachable_f64_tolerance_escalates_and_succeeds() {
        // A concrete target with four isolated nonsingular finite roots
        // ((±1, ±2), (±2, ±1)): every total-degree path ends at one.
        use polygpu_polysys::{parse_system, NaiveEvaluator};
        let sys = parse_system::<f64>("x0^2 + x1^2 - 5; x0*x1 - 2").unwrap();
        let sys_dd = sys.convert::<Dd>();
        let start = StartSystem::uniform(2, 2);
        // Corrector tolerance below f64 round-off: every double run
        // must fail; double-double reaches it at the finite roots.
        let brutal = NewtonParams {
            residual_tol: 1e-19,
            step_tol: 1e-21,
            max_iters: 10,
        };
        let params = TrackParams {
            corrector: brutal,
            max_steps: 2_000,
            ..Default::default()
        };
        let mut rescued = 0;
        for idx in 0..4u128 {
            let x0: Vec<C64> = start.solution_by_index(idx);
            let mut h64 =
                Homotopy::with_random_gamma(start.clone(), NaiveEvaluator::new(sys.clone()), 33);
            let mut hdd = Homotopy::new(
                start.clone(),
                NaiveEvaluator::new(sys_dd.clone()),
                h64.gamma.convert(), // identical gamma: same path
            );
            let r = track_escalating(&mut h64, &mut hdd, &x0, params, params);
            // The double attempt can never meet a 1e-19 tolerance.
            assert_eq!(r.precision(), UsedPrecision::DoubleDouble, "path {idx}");
            if r.success() {
                rescued += 1;
                // The endpoint satisfies the target far beyond f64.
                let mut check = NaiveEvaluator::new(sys_dd.clone());
                let resid = check.evaluate(&r.end_dd()).residual_norm().to_f64();
                assert!(resid < 1e-18, "dd endpoint residual {resid:e}");
            }
        }
        assert!(
            rescued >= 2,
            "too few paths rescued by double-double: {rescued}"
        );
    }
}
