//! Precision escalation: track in hardware doubles, fall back to
//! double-double when the path demands more accuracy.
//!
//! This is the operational form of the paper's motivation: "When
//! running many path tracking jobs, a couple or perhaps just one
//! solution path may require extended multiprecision arithmetic" (§1).
//! Most paths finish in fast double precision; the rare hard path is
//! retried in double-double, whose ~8x cost is exactly what the
//! parallel evaluator is meant to absorb.
//!
//! For multi-path runs, prefer
//! [`PrecisionPolicy::Escalating`](crate::solve::PrecisionPolicy):
//! `solve()` applies the same retry as a *policy* over any scheduler
//! (per-path, lockstep or queue) and replays [`track_escalating_engine`]
//! bit for bit under the per-path scheduler.

use crate::homotopy::Homotopy;
use crate::start::StartSystem;
use crate::tracker::{track, TrackParams, TrackResult};
use polygpu_complex::Complex;
use polygpu_core::engine::{BuildError, ClusterProvider, EngineBuilder};
use polygpu_polysys::{System, SystemEvaluator};
use polygpu_qd::Dd;

/// Which precision completed the path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UsedPrecision {
    Double,
    DoubleDouble,
}

impl UsedPrecision {
    pub fn name(self) -> &'static str {
        match self {
            UsedPrecision::Double => "double",
            UsedPrecision::DoubleDouble => "double-double",
        }
    }
}

/// Outcome of an escalating track.
#[derive(Debug, Clone)]
pub enum EscalatedTrack {
    /// Finished in hardware doubles.
    Double(TrackResult<f64>),
    /// Needed (and got) double-double; the double attempt's failure is
    /// kept for diagnostics.
    DoubleDouble {
        double_attempt: TrackResult<f64>,
        result: TrackResult<Dd>,
    },
}

impl EscalatedTrack {
    pub fn success(&self) -> bool {
        match self {
            EscalatedTrack::Double(r) => r.success(),
            EscalatedTrack::DoubleDouble { result, .. } => result.success(),
        }
    }

    pub fn precision(&self) -> UsedPrecision {
        match self {
            EscalatedTrack::Double(_) => UsedPrecision::Double,
            EscalatedTrack::DoubleDouble { .. } => UsedPrecision::DoubleDouble,
        }
    }

    /// Endpoint in double-double (exact promotion when the double run
    /// sufficed).
    pub fn end_dd(&self) -> Vec<Complex<Dd>> {
        match self {
            EscalatedTrack::Double(r) => r.end().x.iter().map(|z| z.convert()).collect(),
            EscalatedTrack::DoubleDouble { result, .. } => result.end().x.clone(),
        }
    }
}

/// Track a path in doubles; on any failure, retrack the whole path in
/// double-double with `dd_params` (typically tighter tolerances).
///
/// The two homotopies must describe the same path (same systems and
/// gamma, different scalar precision); keeping them as separate
/// arguments lets callers pair any two evaluator stacks (CPU/CPU,
/// GPU/CPU, …).
pub fn track_escalating<EG64, EF64, EGDD, EFDD>(
    h64: &mut Homotopy<f64, EG64, EF64>,
    hdd: &mut Homotopy<Dd, EGDD, EFDD>,
    x0: &[Complex<f64>],
    params_f64: TrackParams,
    params_dd: TrackParams,
) -> EscalatedTrack
where
    EG64: SystemEvaluator<f64>,
    EF64: SystemEvaluator<f64>,
    EGDD: SystemEvaluator<Dd>,
    EFDD: SystemEvaluator<Dd>,
{
    let attempt = track(h64, x0, params_f64);
    if attempt.success() {
        return EscalatedTrack::Double(attempt);
    }
    let x0_dd: Vec<Complex<Dd>> = x0.iter().map(|z| z.convert()).collect();
    let result = track(hdd, &x0_dd, params_dd);
    EscalatedTrack::DoubleDouble {
        double_attempt: attempt,
        result,
    }
}

/// Track a path with engines built from **one** [`EngineBuilder`] spec:
/// the double-precision attempt and — on failure — the double-double
/// retry each request their engine from the same builder, so precision
/// escalation re-provisions the *same* backend (CPU, GPU, batch or
/// cluster) at higher precision instead of rebuilding options by hand.
///
/// Both precisions share the gamma derived from `gamma_seed` (the
/// double-double homotopy uses the exactly-widened `f64` gamma), so
/// they describe the same path.
///
/// ```
/// use polygpu_core::engine::{Backend, Engine};
/// use polygpu_homotopy::escalate::track_escalating_engine;
/// use polygpu_homotopy::start::StartSystem;
/// use polygpu_homotopy::tracker::TrackParams;
/// use polygpu_polysys::{random_system, BenchmarkParams};
///
/// let sys = random_system::<f64>(&BenchmarkParams { n: 2, m: 2, k: 2, d: 2, seed: 7 });
/// let start = StartSystem::uniform(2, 2);
/// let x0 = start.solution_by_index(0);
/// let builder = Engine::builder().backend(Backend::CpuReference);
/// let r = track_escalating_engine(
///     &builder, &sys, &start, 33, &x0,
///     TrackParams::default(), TrackParams::default(),
/// )
/// .unwrap();
/// assert!(r.success() || !r.success()); // tracked to a typed outcome
/// ```
pub fn track_escalating_engine<P: ClusterProvider>(
    builder: &EngineBuilder<P>,
    target: &System<f64>,
    start: &StartSystem,
    gamma_seed: u64,
    x0: &[Complex<f64>],
    params_f64: TrackParams,
    params_dd: TrackParams,
) -> Result<EscalatedTrack, BuildError> {
    let engine64 = builder.build(target)?;
    let mut h64 = Homotopy::with_random_gamma(start.clone(), engine64, gamma_seed);
    let attempt = track(&mut h64, x0, params_f64);
    if attempt.success() {
        return Ok(EscalatedTrack::Double(attempt));
    }
    // Same spec, higher precision: the builder re-provisions the
    // backend for the converted system.
    let engine_dd = builder.build(&target.convert::<Dd>())?;
    let mut hdd = Homotopy::new(start.clone(), engine_dd, h64.gamma.convert());
    let x0_dd: Vec<Complex<Dd>> = x0.iter().map(|z| z.convert()).collect();
    let result = track(&mut hdd, &x0_dd, params_dd);
    Ok(EscalatedTrack::DoubleDouble {
        double_attempt: attempt,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newton::NewtonParams;
    use crate::start::StartSystem;
    use polygpu_complex::C64;
    use polygpu_polysys::{random_system, AdEvaluator, BenchmarkParams, System};

    fn setup(seed: u64) -> (System<f64>, StartSystem, Vec<C64>) {
        let params = BenchmarkParams {
            n: 2,
            m: 2,
            k: 2,
            d: 2,
            seed,
        };
        let sys = random_system::<f64>(&params);
        let start = StartSystem::uniform(2, 2);
        let x0: Vec<C64> = start.solution_by_index(1);
        (sys, start, x0)
    }

    #[allow(clippy::type_complexity)] // test fixture returns both precisions
    fn homotopies(
        sys: &System<f64>,
        start: &StartSystem,
    ) -> (
        Homotopy<f64, StartSystem, AdEvaluator<f64>>,
        Homotopy<Dd, StartSystem, AdEvaluator<Dd>>,
    ) {
        let h64 =
            Homotopy::with_random_gamma(start.clone(), AdEvaluator::new(sys.clone()).unwrap(), 33);
        let hdd = Homotopy::new(
            start.clone(),
            AdEvaluator::new(sys.convert::<Dd>()).unwrap(),
            h64.gamma.convert(), // identical gamma: same path
        );
        (h64, hdd)
    }

    #[test]
    fn easy_path_stays_in_double() {
        // Seed chosen so the double-precision track of this random
        // system succeeds under the workspace's deterministic RNG.
        let (sys, start, x0) = setup(7);
        let (mut h64, mut hdd) = homotopies(&sys, &start);
        let r = track_escalating(
            &mut h64,
            &mut hdd,
            &x0,
            TrackParams::default(),
            TrackParams::default(),
        );
        assert!(r.success());
        assert_eq!(r.precision(), UsedPrecision::Double);
        assert_eq!(r.end_dd().len(), 2);
    }

    /// The engine-spec escalation with the CPU backend replays the
    /// hand-built escalation bit for bit (same gamma seed, same
    /// arithmetic), so the new entry point is a pure API refactor.
    #[test]
    fn engine_escalation_matches_manual_escalation() {
        use polygpu_core::engine::{Backend, Engine};
        let (sys, start, x0) = setup(7);
        let (mut h64, mut hdd) = homotopies(&sys, &start);
        let manual = track_escalating(
            &mut h64,
            &mut hdd,
            &x0,
            TrackParams::default(),
            TrackParams::default(),
        );
        let builder = Engine::builder().backend(Backend::CpuReference);
        let via_engine = track_escalating_engine(
            &builder,
            &sys,
            &start,
            33, // the same gamma seed `homotopies` uses
            &x0,
            TrackParams::default(),
            TrackParams::default(),
        )
        .unwrap();
        assert_eq!(manual.precision(), via_engine.precision());
        assert_eq!(manual.success(), via_engine.success());
        assert_eq!(
            manual.end_dd(),
            via_engine.end_dd(),
            "bit-identical endpoint"
        );
    }

    /// An impossible double tolerance forces the builder to re-request
    /// the engine in double-double — through a *GPU* backend spec, so
    /// the escalation provisions simulated-device engines in both
    /// precisions from one spec.
    #[test]
    fn engine_escalation_reprovisions_gpu_backend_in_dd() {
        use polygpu_core::engine::{Backend, Engine};
        let (sys, start, x0) = setup(7);
        let brutal = NewtonParams {
            residual_tol: 1e-19, // below f64 round-off
            step_tol: 1e-21,
            max_iters: 8,
            ..Default::default()
        };
        let params = TrackParams {
            corrector: brutal,
            ..Default::default()
        };
        let builder = Engine::builder().backend(Backend::GpuBatch { capacity: 4 });
        let r = track_escalating_engine(&builder, &sys, &start, 33, &x0, params, params).unwrap();
        assert_eq!(r.precision(), UsedPrecision::DoubleDouble);
    }

    #[test]
    fn unreachable_f64_tolerance_escalates_and_succeeds() {
        // A concrete target with four isolated nonsingular finite roots
        // ((±1, ±2), (±2, ±1)): every total-degree path ends at one.
        use polygpu_polysys::{parse_system, NaiveEvaluator};
        let sys = parse_system::<f64>("x0^2 + x1^2 - 5; x0*x1 - 2").unwrap();
        let sys_dd = sys.convert::<Dd>();
        let start = StartSystem::uniform(2, 2);
        // Corrector tolerance below f64 round-off: every double run
        // must fail; double-double reaches it at the finite roots.
        let brutal = NewtonParams {
            residual_tol: 1e-19,
            step_tol: 1e-21,
            max_iters: 10,
            ..Default::default()
        };
        let params = TrackParams {
            corrector: brutal,
            max_steps: 2_000,
            ..Default::default()
        };
        let mut rescued = 0;
        for idx in 0..4u128 {
            let x0: Vec<C64> = start.solution_by_index(idx);
            let mut h64 =
                Homotopy::with_random_gamma(start.clone(), NaiveEvaluator::new(sys.clone()), 33);
            let mut hdd = Homotopy::new(
                start.clone(),
                NaiveEvaluator::new(sys_dd.clone()),
                h64.gamma.convert(), // identical gamma: same path
            );
            let r = track_escalating(&mut h64, &mut hdd, &x0, params, params);
            // The double attempt can never meet a 1e-19 tolerance.
            assert_eq!(r.precision(), UsedPrecision::DoubleDouble, "path {idx}");
            if r.success() {
                rescued += 1;
                // The endpoint satisfies the target far beyond f64.
                let mut check = NaiveEvaluator::new(sys_dd.clone());
                let resid = check.evaluate(&r.end_dd()).residual_norm().to_f64();
                assert!(resid < 1e-18, "dd endpoint residual {resid:e}");
            }
        }
        assert!(
            rescued >= 2,
            "too few paths rescued by double-double: {rescued}"
        );
    }
}
