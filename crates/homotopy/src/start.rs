//! The total-degree start system `G_i(x) = x_i^{d_i} − 1`, and the
//! [`AnyStart`] wrapper that lets the unified solver also run the
//! per-cell binomial start systems of a polyhedral (mixed-cell)
//! homotopy.
//!
//! The total-degree system's solutions are all combinations of
//! `d_i`-th roots of unity, and its Jacobian is diagonal — the
//! standard cheap start system for homotopy continuation (Allgower &
//! Georg; Morgan).

use polygpu_complex::{CMat, Complex, Real};
use polygpu_polyhedral::BinomialStart;
use polygpu_polysys::{loop_evaluate_batch, BatchSystemEvaluator, SystemEval, SystemEvaluator};
use std::f64::consts::TAU;

/// `G_i(x) = x_i^{d_i} − 1`, evaluated analytically.
#[derive(Debug, Clone)]
pub struct StartSystem {
    degrees: Vec<u32>,
}

impl StartSystem {
    /// Panics if any degree is zero.
    pub fn new(degrees: Vec<u32>) -> Self {
        assert!(
            degrees.iter().all(|&d| d >= 1),
            "start-system degrees must be >= 1"
        );
        StartSystem { degrees }
    }

    /// Same degree `d` in every equation.
    pub fn uniform(n: usize, d: u32) -> Self {
        StartSystem::new(vec![d; n])
    }

    pub fn degrees(&self) -> &[u32] {
        &self.degrees
    }

    /// Total number of start solutions: `∏ d_i` (the Bézout number of
    /// the start system), saturating at `u128::MAX` — Table-1-style
    /// dimensions overflow any fixed-width product, and callers
    /// selecting a few paths (`FirstN`/`Indices`) only need the count
    /// as an upper bound ([`StartSystem::solution_by_index`] decodes
    /// mixed-radix indices without ever forming the product).
    pub fn solution_count(&self) -> u128 {
        self.degrees
            .iter()
            .fold(1u128, |acc, &d| acc.saturating_mul(d as u128))
    }

    /// The start solution indexed by `choice`, where `choice[i]`
    /// selects the `choice[i]`-th `d_i`-th root of unity.
    pub fn solution<R: Real>(&self, choice: &[u32]) -> Vec<Complex<R>> {
        assert_eq!(choice.len(), self.degrees.len());
        choice
            .iter()
            .zip(&self.degrees)
            .map(|(&c, &d)| {
                assert!(c < d, "root index out of range");
                Complex::unit_from_angle(TAU * c as f64 / d as f64)
            })
            .collect()
    }

    /// The start solution numbered `index` in mixed-radix order over
    /// the degrees (0 ≤ index < `solution_count`).
    pub fn solution_by_index<R: Real>(&self, mut index: u128) -> Vec<Complex<R>> {
        let mut choice = Vec::with_capacity(self.degrees.len());
        for &d in &self.degrees {
            choice.push((index % d as u128) as u32);
            index /= d as u128;
        }
        self.solution(&choice)
    }
}

impl<R: Real> SystemEvaluator<R> for StartSystem {
    fn dim(&self) -> usize {
        self.degrees.len()
    }

    fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        let n = self.degrees.len();
        assert_eq!(x.len(), n);
        let mut values = Vec::with_capacity(n);
        let mut jac = CMat::zeros(n, n);
        for i in 0..n {
            let d = self.degrees[i] as i32;
            let pow = x[i].powi(d - 1);
            values.push(pow * x[i] - Complex::one());
            jac[(i, i)] = pow.scale(R::from_u32(self.degrees[i]));
        }
        SystemEval {
            values,
            jacobian: jac,
        }
    }

    fn name(&self) -> &str {
        "total-degree-start"
    }
}

impl<R: Real> BatchSystemEvaluator<R> for StartSystem {
    /// Analytic evaluation has no per-batch fixed cost to amortize.
    fn max_batch(&self) -> usize {
        usize::MAX
    }

    fn evaluate_batch(&mut self, points: &[Vec<Complex<R>>]) -> Vec<SystemEval<R>> {
        loop_evaluate_batch(self, points)
    }
}

/// Either start system the unified solver runs: the total-degree
/// system (one global group of roots-of-unity starts) or one mixed
/// cell's binomial system (`x^V = β`, from
/// [`polygpu_polyhedral::mixed_cell_starts`]). Both evaluate
/// analytically on the host — only the target runs on the device — so
/// the choice of start system never touches device numerics.
#[derive(Debug, Clone)]
pub enum AnyStart {
    TotalDegree(StartSystem),
    Binomial(BinomialStart),
}

impl AnyStart {
    /// The start system's dimension (precision-independent).
    pub fn dim(&self) -> usize {
        match self {
            AnyStart::TotalDegree(g) => g.degrees().len(),
            AnyStart::Binomial(g) => g.dim(),
        }
    }
}

impl<R: Real> SystemEvaluator<R> for AnyStart {
    fn dim(&self) -> usize {
        AnyStart::dim(self)
    }

    fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        match self {
            AnyStart::TotalDegree(g) => g.evaluate(x),
            AnyStart::Binomial(g) => g.evaluate(x),
        }
    }

    fn name(&self) -> &str {
        match self {
            AnyStart::TotalDegree(g) => SystemEvaluator::<R>::name(g),
            AnyStart::Binomial(g) => SystemEvaluator::<R>::name(g),
        }
    }
}

impl<R: Real> BatchSystemEvaluator<R> for AnyStart {
    /// Analytic evaluation has no per-batch fixed cost to amortize.
    fn max_batch(&self) -> usize {
        usize::MAX
    }

    fn evaluate_batch(&mut self, points: &[Vec<Complex<R>>]) -> Vec<SystemEval<R>> {
        loop_evaluate_batch(self, points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_complex::C64;

    #[test]
    fn all_solutions_are_roots() {
        let mut g = StartSystem::new(vec![2, 3]);
        assert_eq!(g.solution_count(), 6);
        for idx in 0..6u128 {
            let s: Vec<C64> = g.solution_by_index(idx);
            let e = g.evaluate(&s);
            assert!(
                e.residual_norm() < 1e-14,
                "solution {idx} residual {:e}",
                e.residual_norm()
            );
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn jacobian_is_diagonal_and_correct() {
        let mut g = StartSystem::uniform(3, 4);
        let x = vec![
            C64::from_f64(0.5, 0.25),
            C64::from_f64(-1.0, 0.5),
            C64::from_f64(2.0, 0.0),
        ];
        let e = g.evaluate(&x);
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    assert_eq!(e.jacobian[(i, j)], C64::zero());
                }
            }
            // d/dx (x^4 - 1) = 4 x^3
            let want = x[i].powi(3).scale(4.0);
            assert!((e.jacobian[(i, i)] - want).abs() < 1e-13);
        }
        // values = x^4 - 1
        for i in 0..3 {
            let want = x[i].powi(4) - C64::one();
            assert!((e.values[i] - want).abs() < 1e-13);
        }
    }

    #[test]
    fn mixed_radix_enumeration_is_exhaustive() {
        let g = StartSystem::new(vec![2, 2, 3]);
        let mut seen = std::collections::HashSet::new();
        for idx in 0..12u128 {
            let s: Vec<C64> = g.solution_by_index(idx);
            let key: Vec<(i64, i64)> = s
                .iter()
                .map(|z| ((z.re * 1e6).round() as i64, (z.im * 1e6).round() as i64))
                .collect();
            assert!(seen.insert(key), "duplicate solution at index {idx}");
        }
    }

    #[test]
    #[should_panic(expected = "root index out of range")]
    fn choice_bounds_checked() {
        let g = StartSystem::uniform(2, 2);
        let _: Vec<C64> = g.solution(&[0, 2]);
    }
}
