//! Property-based tests for complex arithmetic across all precisions.

use polygpu_complex::{CDd, C64};
use polygpu_qd::Dd;
use proptest::prelude::*;

fn c64() -> impl Strategy<Value = C64> {
    (-1e6f64..1e6, -1e6f64..1e6).prop_map(|(re, im)| C64::new(re, im))
}

fn nonzero_c64() -> impl Strategy<Value = C64> {
    c64().prop_filter("nonzero", |z| z.norm_sqr() > 1e-9)
}

proptest! {
    #[test]
    fn mul_commutes(a in c64(), b in c64()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn mul_associates_approximately(a in c64(), b in c64(), c in c64()) {
        let lhs = (a * b) * c;
        let rhs = a * (b * c);
        let scale = lhs.abs().max(1.0);
        prop_assert!((lhs - rhs).abs() <= 1e-12 * scale);
    }

    #[test]
    fn distributivity(a in c64(), b in c64(), c in c64()) {
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        let scale = lhs.abs().max(1.0);
        prop_assert!((lhs - rhs).abs() <= 1e-12 * scale);
    }

    #[test]
    fn division_inverts_multiplication(a in c64(), b in nonzero_c64()) {
        let q = (a * b) / b;
        let scale = a.abs().max(1.0);
        prop_assert!((q - a).abs() <= 1e-10 * scale, "got {q}, want {a}");
    }

    #[test]
    fn norm_is_multiplicative(a in c64(), b in c64()) {
        let lhs = (a * b).norm_sqr();
        let rhs = a.norm_sqr() * b.norm_sqr();
        let scale = rhs.max(1.0);
        prop_assert!((lhs - rhs).abs() <= 1e-11 * scale);
    }

    #[test]
    fn conj_is_ring_homomorphism(a in c64(), b in c64()) {
        prop_assert_eq!((a * b).conj(), a.conj() * b.conj());
        prop_assert_eq!((a + b).conj(), a.conj() + b.conj());
    }

    #[test]
    fn powi_adds_exponents(z in nonzero_c64(), p in 0i32..6, q in 0i32..6) {
        let lhs = z.powi(p) * z.powi(q);
        let rhs = z.powi(p + q);
        let scale = rhs.abs().max(1e-30);
        if scale.is_finite() && scale < 1e250 {
            prop_assert!((lhs - rhs).abs() <= 1e-9 * scale);
        }
    }

    #[test]
    fn dd_complex_agrees_with_f64_on_doubles(a in c64(), b in c64()) {
        // Promoting to DD and computing must agree with f64 up to f64
        // round-off (DD is strictly more accurate).
        let ad: CDd = a.convert();
        let bd: CDd = b.convert();
        let pd = (ad * bd).to_c64();
        let pf = a * b;
        let scale = pf.abs().max(1.0);
        prop_assert!((pd - pf).abs() <= 4.0 * f64::EPSILON * scale);
    }

    #[test]
    fn dd_division_high_accuracy(a in c64(), b in nonzero_c64()) {
        let ad: CDd = a.convert();
        let bd: CDd = b.convert();
        let q = ad / bd;
        let back = q * bd;
        let diff = (back - ad).abs().to_f64();
        let scale = a.abs().max(1e-30);
        prop_assert!(diff <= 1e-29 * scale, "dd div residual {diff:e}");
    }

    #[test]
    fn recip_recip_is_identity(z in nonzero_c64()) {
        let r = z.recip().recip();
        prop_assert!((r - z).abs() <= 1e-10 * z.abs());
    }

    #[test]
    fn unit_angle_multiplication_adds_angles(t1 in 0.0f64..6.2, t2 in 0.0f64..6.2) {
        let z = C64::unit_from_angle(t1) * C64::unit_from_angle(t2);
        let w = C64::unit_from_angle(t1 + t2);
        prop_assert!((z - w).abs() <= 1e-14);
    }
}

#[test]
fn dd_complex_keeps_106_bits_through_a_product_chain() {
    // Multiply 50 unit-ish complex numbers in both f64 and DD; the DD
    // result converted to f64 is the correctly rounded product, whereas
    // plain f64 drifts. This is the paper's motivation for extended
    // precision along a path.
    let mut zf = C64::new(1.0, 0.0);
    let mut zd = CDd::new(Dd::ONE, Dd::ZERO);
    let mut state = 0x9E3779B97F4A7C15u64;
    for _ in 0..50 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let t = (state >> 11) as f64 / (1u64 << 53) as f64 * std::f64::consts::TAU;
        let f = C64::unit_from_angle(t);
        zf *= f;
        zd *= f.convert();
    }
    // DD norm stays much closer to 1.
    let f64_drift = (zf.norm_sqr() - 1.0).abs();
    let dd_drift = (zd.norm_sqr() - Dd::ONE).abs().to_f64();
    assert!(
        dd_drift < f64_drift.max(1e-25),
        "dd {dd_drift:e} vs f64 {f64_drift:e}"
    );
}
