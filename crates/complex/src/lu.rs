//! Dense complex LU decomposition with partial pivoting, generic over
//! the scalar precision.
//!
//! Sized for the paper's regime — Jacobians of dimension 30–70, where
//! "the cost of polynomial evaluation often dominates the cost of
//! linear algebra operations" (§1) — so a straightforward right-looking
//! factorization without blocking is appropriate.
//!
//! This module lives next to [`CMat`] so that both the host-side Newton
//! corrector and the simulated device-resident corrector (which models
//! the factorization as an on-device kernel but executes the identical
//! arithmetic host-side) share one implementation: the pivoting order —
//! and therefore every endpoint — is bit-identical by construction.

use crate::{CMat, Complex, Real};
use std::fmt;

/// The factorization failed: a pivot column was exactly zero or
/// NaN-poisoned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrix {
    /// Column at which no usable pivot was found.
    pub column: usize,
}

impl fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular at column {}", self.column)
    }
}

impl std::error::Error for SingularMatrix {}

/// Typed failure of the LU routines — no input panics the linear
/// algebra layer; shape violations and singular pivots both surface as
/// values the caller can route (the solvers map them into
/// singular-Jacobian-style outcomes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LuError {
    /// `lu_decompose` needs a square matrix.
    NotSquare { rows: usize, cols: usize },
    /// The right-hand side's length does not match the factored matrix.
    RhsDimension { got: usize, expected: usize },
    /// A pivot column was exactly zero (or NaN-poisoned).
    Singular(SingularMatrix),
}

impl fmt::Display for LuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LuError::NotSquare { rows, cols } => {
                write!(f, "LU requires a square matrix, got {rows}x{cols}")
            }
            LuError::RhsDimension { got, expected } => {
                write!(f, "rhs has length {got}, expected {expected}")
            }
            LuError::Singular(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LuError::Singular(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SingularMatrix> for LuError {
    fn from(e: SingularMatrix) -> Self {
        LuError::Singular(e)
    }
}

/// `P·A = L·U` with unit-diagonal `L` and the permutation stored as a
/// row map.
#[derive(Debug, Clone)]
pub struct LuFactors<R> {
    lu: CMat<R>,
    perm: Vec<usize>,
}

/// Factor `a` (consumed) with partial pivoting by magnitude.
///
/// A NaN anywhere in the scanned part of a pivot column poisons the
/// max-by-magnitude comparison (`NaN > x` is false, so a NaN candidate
/// silently *loses* the scan and a finite pivot would then propagate
/// NaN through the elimination); such columns are reported as
/// [`LuError::Singular`] instead of producing a NaN factorization.
pub fn lu_decompose<R: Real>(mut a: CMat<R>) -> Result<LuFactors<R>, LuError> {
    let n = a.rows();
    if n != a.cols() {
        return Err(LuError::NotSquare {
            rows: n,
            cols: a.cols(),
        });
    }
    let mut perm: Vec<usize> = (0..n).collect();
    for col in 0..n {
        // Pivot: largest |a[r][col]| for r >= col. Any NaN among the
        // candidates makes the ordering meaningless — track it
        // explicitly, because `mag > best_mag` is false for NaN `mag`
        // and would otherwise let a finite pivot win the scan and
        // NaN-propagate during elimination.
        let mut best = col;
        let mut best_mag = a[(col, col)].norm_sqr();
        let mut poisoned = best_mag.is_nan();
        for r in col + 1..n {
            let mag = a[(r, col)].norm_sqr();
            poisoned = poisoned || mag.is_nan();
            if mag > best_mag {
                best = r;
                best_mag = mag;
            }
        }
        // Guard covers an exactly-zero column and NaN poisoning of any
        // candidate (not just the winning one).
        if poisoned || best_mag <= R::zero() {
            return Err(LuError::Singular(SingularMatrix { column: col }));
        }
        if best != col {
            a.swap_rows(col, best);
            perm.swap(col, best);
        }
        let pivot = a[(col, col)];
        for r in col + 1..n {
            let factor = a[(r, col)] / pivot;
            a[(r, col)] = factor;
            for c in col + 1..n {
                let sub = factor * a[(col, c)];
                a[(r, c)] -= sub;
            }
        }
    }
    Ok(LuFactors { lu: a, perm })
}

impl<R: Real> LuFactors<R> {
    /// Solve `A·x = b`.
    // Triangular substitution reads most clearly with explicit indices.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[Complex<R>]) -> Result<Vec<Complex<R>>, LuError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LuError::RhsDimension {
                got: b.len(),
                expected: n,
            });
        }
        // Apply permutation, forward substitution (L has unit diagonal).
        let mut y: Vec<Complex<R>> = self.perm.iter().map(|&r| b[r]).collect();
        for i in 1..n {
            let mut acc = y[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * y[j];
            }
            y[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in i + 1..n {
                acc -= self.lu[(i, j)] * y[j];
            }
            y[i] = acc / self.lu[(i, i)];
        }
        Ok(y)
    }

    /// Magnitude of the determinant estimate `∏ |u_ii|` (useful as a
    /// crude conditioning signal along a path).
    pub fn det_magnitude(&self) -> R {
        let mut m = R::one();
        for i in 0..self.lu.rows() {
            m *= self.lu[(i, i)].abs();
        }
        m
    }
}

/// One-shot solve.
pub fn solve<R: Real>(a: CMat<R>, b: &[Complex<R>]) -> Result<Vec<Complex<R>>, LuError> {
    lu_decompose(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::C64;
    use polygpu_qd::Dd;
    use proptest::prelude::*;

    fn residual_norm(a: &CMat<f64>, x: &[C64], b: &[C64]) -> f64 {
        let ax = a.matvec(x);
        ax.iter()
            .zip(b)
            .map(|(l, r)| (*l - *r).abs())
            .fold(0.0, f64::max)
    }

    fn random_mat(n: usize, seed: u64) -> CMat<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        CMat::from_fn(n, n, |_, _| C64::new(next(), next()))
    }

    #[test]
    fn solves_identity() {
        let id = CMat::<f64>::identity(4);
        let b: Vec<C64> = (0..4).map(|i| C64::from_f64(i as f64, 1.0)).collect();
        let x = solve(id, &b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solves_random_systems_accurately() {
        for n in [2usize, 5, 16, 32] {
            let a = random_mat(n, n as u64);
            let b: Vec<C64> = (0..n).map(|i| C64::from_f64(1.0, i as f64)).collect();
            let x = solve(a.clone(), &b).unwrap();
            let r = residual_norm(&a, &x, &b);
            assert!(r < 1e-9, "n = {n}: residual {r:e}");
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // [[0, 1], [1, 0]] requires a row swap.
        let a = CMat::from_vec(2, 2, vec![C64::zero(), C64::one(), C64::one(), C64::zero()]);
        let x = solve(a, &[C64::from_f64(3.0, 0.0), C64::from_f64(7.0, 0.0)]).unwrap();
        assert_eq!(x[0], C64::from_f64(7.0, 0.0));
        assert_eq!(x[1], C64::from_f64(3.0, 0.0));
    }

    #[test]
    fn singular_matrix_reported() {
        let a = CMat::from_vec(2, 2, vec![C64::one(), C64::one(), C64::one(), C64::one()]);
        assert_eq!(
            lu_decompose(a).unwrap_err(),
            LuError::Singular(SingularMatrix { column: 1 })
        );
        let z = CMat::<f64>::zeros(3, 3);
        assert_eq!(
            lu_decompose(z).unwrap_err(),
            LuError::Singular(SingularMatrix { column: 0 })
        );
    }

    /// Shape violations are typed errors, not panics.
    #[test]
    fn shape_violations_are_typed() {
        let rect = CMat::<f64>::zeros(2, 3);
        assert_eq!(
            lu_decompose(rect).unwrap_err(),
            LuError::NotSquare { rows: 2, cols: 3 }
        );
        let f = lu_decompose(CMat::<f64>::identity(3)).unwrap();
        assert_eq!(
            f.solve(&[C64::one(); 2]).unwrap_err(),
            LuError::RhsDimension {
                got: 2,
                expected: 3
            }
        );
    }

    /// The scan bug the NaN guard exists for: a NaN candidate *below*
    /// the diagonal loses every `>` comparison, so the finite diagonal
    /// entry would win the pivot scan and the elimination would divide
    /// the NaN row by it, silently producing a NaN factorization.
    #[test]
    fn nan_below_finite_pivot_is_singular_not_nan() {
        let mut a = random_mat(4, 9);
        a[(2, 0)] = C64::new(f64::NAN, 0.0);
        assert_eq!(
            lu_decompose(a).unwrap_err(),
            LuError::Singular(SingularMatrix { column: 0 })
        );
    }

    #[test]
    fn nan_on_diagonal_is_singular() {
        let mut a = random_mat(3, 4);
        a[(1, 1)] = C64::new(0.0, f64::NAN);
        // Column 0 factors fine; the poison shows up when column 1 is
        // scanned (the update spreads it across the trailing block, so
        // it is reported no later than column 1).
        let err = lu_decompose(a).unwrap_err();
        assert!(matches!(err, LuError::Singular(_)), "{err}");
    }

    proptest! {
        /// NaN injected anywhere: the factorization must return the
        /// typed singular error, never factors containing NaN — and on
        /// NaN-free inputs this guard must not fire.
        #[test]
        fn nan_injection_yields_typed_singular(
            n in 2usize..7,
            seed in 0u64..1000,
            inject in 0u32..2,
            at in 0usize..49,
            part_im in 0u32..2,
        ) {
            let mut a = random_mat(n, seed);
            if inject == 1 {
                let (r, c) = ((at / 7) % n, (at % 7) % n);
                let mut z = a[(r, c)];
                if part_im == 1 {
                    z.im = f64::NAN;
                } else {
                    z.re = f64::NAN;
                }
                a[(r, c)] = z;
            }
            match lu_decompose(a) {
                Ok(f) => {
                    // A NaN entry can only survive to a factorization in
                    // columns the elimination never touched — partial
                    // pivoting scans every column, so success means the
                    // factors are NaN-free and solves are too.
                    let x = f.solve(&vec![C64::one(); n]).unwrap();
                    prop_assert!(
                        x.iter().all(|z| !z.re.is_nan() && !z.im.is_nan()),
                        "solve produced NaN from a successful factorization"
                    );
                    prop_assert!(!f.det_magnitude().is_nan());
                }
                Err(e) => {
                    prop_assert!(
                        matches!(e, LuError::Singular(_)),
                        "square input must fail as Singular, got {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn dd_solve_is_more_accurate_than_f64() {
        // A mildly ill-conditioned matrix: Hilbert-like.
        let n = 8;
        let af = CMat::<f64>::from_fn(n, n, |i, j| C64::from_f64(1.0 / (i + j + 1) as f64, 0.0));
        let b: Vec<C64> = (0..n).map(|_| C64::one()).collect();
        let xf = solve(af.clone(), &b).unwrap();
        let ad: CMat<Dd> = af.convert();
        let bd: Vec<Complex<Dd>> = b.iter().map(|z| z.convert()).collect();
        let xd = solve(ad.clone(), &bd).unwrap();
        // Residuals in DD arithmetic.
        let rf: f64 = {
            let xfd: Vec<Complex<Dd>> = xf.iter().map(|z| z.convert()).collect();
            ad.matvec(&xfd)
                .iter()
                .zip(&bd)
                .map(|(l, r)| (*l - *r).abs().to_f64())
                .fold(0.0, f64::max)
        };
        let rd: f64 = ad
            .matvec(&xd)
            .iter()
            .zip(&bd)
            .map(|(l, r)| (*l - *r).abs().to_f64())
            .fold(0.0, f64::max);
        assert!(rd < rf * 1e-10, "dd residual {rd:e} vs f64 {rf:e}");
    }

    #[test]
    fn det_magnitude_of_diagonal() {
        let mut a = CMat::<f64>::zeros(3, 3);
        a[(0, 0)] = C64::from_f64(2.0, 0.0);
        a[(1, 1)] = C64::from_f64(0.0, 3.0);
        a[(2, 2)] = C64::from_f64(-4.0, 0.0);
        let f = lu_decompose(a).unwrap();
        assert!((f.det_magnitude() - 24.0).abs() < 1e-12);
    }
}
