//! # polygpu-complex — generic complex arithmetic
//!
//! Complex numbers over any [`Real`] scalar (`f64`, double-double,
//! quad-double), plus a small dense complex matrix type used for
//! Jacobians and linear algebra.
//!
//! The reproduced paper evaluates polynomial systems over complex
//! numbers ("a tuple `(C, A)` of complex coefficients `C` and
//! corresponding exponents `A`"); every multiplication counted in its
//! cost analysis is a *complex* multiplication. [`Complex`]'s `Mul` uses
//! the schoolbook 4-multiply/2-add form, which is what the CUDA kernels
//! of the paper perform and what the GPU cost model charges.

pub mod lu;
pub mod mat;

pub use mat::CMat;
pub use polygpu_qd::Real;

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + im·i` over a [`Real`] scalar.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex<R> {
    pub re: R,
    pub im: R,
}

impl<R: Real> Complex<R> {
    #[inline]
    pub fn new(re: R, im: R) -> Self {
        Complex { re, im }
    }

    #[inline]
    pub fn zero() -> Self {
        Complex {
            re: R::zero(),
            im: R::zero(),
        }
    }

    #[inline]
    pub fn one() -> Self {
        Complex {
            re: R::one(),
            im: R::zero(),
        }
    }

    /// The imaginary unit.
    #[inline]
    pub fn i() -> Self {
        Complex {
            re: R::zero(),
            im: R::one(),
        }
    }

    #[inline]
    pub fn from_f64(re: f64, im: f64) -> Self {
        Complex {
            re: R::from_f64(re),
            im: R::from_f64(im),
        }
    }

    /// Real scalar promoted to complex.
    #[inline]
    pub fn from_real(re: R) -> Self {
        Complex { re, im: R::zero() }
    }

    /// `e^{iθ}` for a hardware-double angle. The angle's precision is
    /// that of `f64`; sufficient for random coefficients and the gamma
    /// trick, which only need genericity of *arithmetic*, not of
    /// transcendental functions.
    #[inline]
    pub fn unit_from_angle(theta: f64) -> Self {
        Complex::from_f64(theta.cos(), theta.sin())
    }

    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// `|z|²` — 2 multiplications, 1 addition.
    #[inline]
    pub fn norm_sqr(self) -> R {
        self.re * self.re + self.im * self.im
    }

    /// `|z|`.
    #[inline]
    pub fn abs(self) -> R {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real.
    #[inline]
    pub fn scale(self, s: R) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Reciprocal via Smith's algorithm (avoids overflow/underflow of the
    /// naive `conj/norm²` form).
    pub fn recip(self) -> Self {
        Complex::one() / self
    }

    /// Integer power by binary exponentiation.
    pub fn powi(self, n: i32) -> Self {
        if n == 0 {
            return Complex::one();
        }
        let mut r = Complex::one();
        let mut base = self;
        let mut e = n.unsigned_abs();
        while e > 0 {
            if e & 1 == 1 {
                r *= base;
            }
            base = base * base;
            e >>= 1;
        }
        if n < 0 {
            r.recip()
        } else {
            r
        }
    }

    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Convert to another scalar precision through the nearest double.
    /// Exact for promotions from `f64`; rounds for demotions.
    #[inline]
    pub fn convert<S: Real>(self) -> Complex<S> {
        Complex {
            re: S::from_f64(self.re.to_f64()),
            im: S::from_f64(self.im.to_f64()),
        }
    }

    /// Nearest `Complex<f64>`.
    #[inline]
    pub fn to_c64(self) -> Complex<f64> {
        self.convert()
    }
}

impl<R: Real> Add for Complex<R> {
    type Output = Complex<R>;
    #[inline]
    fn add(self, b: Self) -> Self {
        Complex {
            re: self.re + b.re,
            im: self.im + b.im,
        }
    }
}

impl<R: Real> Sub for Complex<R> {
    type Output = Complex<R>;
    #[inline]
    fn sub(self, b: Self) -> Self {
        Complex {
            re: self.re - b.re,
            im: self.im - b.im,
        }
    }
}

impl<R: Real> Mul for Complex<R> {
    type Output = Complex<R>;
    /// Schoolbook complex product: 4 real multiplications, 2 additions —
    /// the unit the paper's `5k − 4` multiplication count is stated in.
    #[inline]
    fn mul(self, b: Self) -> Self {
        Complex {
            re: self.re * b.re - self.im * b.im,
            im: self.re * b.im + self.im * b.re,
        }
    }
}

impl<R: Real> Div for Complex<R> {
    type Output = Complex<R>;
    /// Smith's algorithm: scale by the larger denominator component so
    /// intermediate products cannot overflow when the naive form would.
    fn div(self, b: Self) -> Self {
        if b.re.abs() >= b.im.abs() {
            let r = b.im / b.re;
            let den = b.re + b.im * r;
            Complex {
                re: (self.re + self.im * r) / den,
                im: (self.im - self.re * r) / den,
            }
        } else {
            let r = b.re / b.im;
            let den = b.re * r + b.im;
            Complex {
                re: (self.re * r + self.im) / den,
                im: (self.im * r - self.re) / den,
            }
        }
    }
}

impl<R: Real> Neg for Complex<R> {
    type Output = Complex<R>;
    #[inline]
    fn neg(self) -> Self {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

macro_rules! impl_assign {
    ($trait:ident, $method:ident, $op:tt) => {
        impl<R: Real> $trait for Complex<R> {
            #[inline]
            fn $method(&mut self, rhs: Self) {
                *self = *self $op rhs;
            }
        }
    };
}
impl_assign!(AddAssign, add_assign, +);
impl_assign!(SubAssign, sub_assign, -);
impl_assign!(MulAssign, mul_assign, *);
impl_assign!(DivAssign, div_assign, /);

impl<R: Real> fmt::Display for Complex<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im < R::zero() {
            write!(f, "{} - {}i", self.re, self.im.abs())
        } else {
            write!(f, "{} + {}i", self.re, self.im)
        }
    }
}

/// Convenience alias: hardware-double complex.
pub type C64 = Complex<f64>;
/// Convenience alias: double-double complex.
pub type CDd = Complex<polygpu_qd::Dd>;
/// Convenience alias: quad-double complex.
pub type CQd = Complex<polygpu_qd::Qd>;

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_qd::{Dd, Qd};

    #[test]
    fn i_squared_is_minus_one() {
        fn check<R: Real>() {
            let i = Complex::<R>::i();
            assert_eq!(i * i, -Complex::<R>::one());
        }
        check::<f64>();
        check::<Dd>();
        check::<Qd>();
    }

    #[test]
    fn mul_known_value() {
        let a = C64::from_f64(1.0, 2.0);
        let b = C64::from_f64(3.0, -4.0);
        assert_eq!(a * b, C64::from_f64(11.0, 2.0));
    }

    #[test]
    fn div_inverse_of_mul() {
        let a = C64::from_f64(2.5, -1.25);
        let b = C64::from_f64(-0.75, 3.0);
        let q = (a * b) / b;
        assert!((q - a).abs() < 1e-14);
    }

    #[test]
    fn smith_division_avoids_overflow() {
        let a = C64::from_f64(1e300, 1e300);
        let b = C64::from_f64(2e300, 1e300);
        let q = a / b;
        assert!(q.is_finite(), "naive division would overflow: {q}");
        assert!((q - C64::from_f64(0.6, 0.2)).abs() < 1e-14);
    }

    #[test]
    fn division_by_dominant_imaginary() {
        let a = C64::from_f64(1.0, 0.0);
        let b = C64::from_f64(1e-200, 1e200);
        let q = a / b;
        assert!(q.is_finite());
        // 1/(i*1e200) ~ -1e-200 i
        assert!((q.im + 1e-200).abs() < 1e-214);
    }

    #[test]
    fn powi_matches_repeated_mul() {
        let z = C64::from_f64(0.3, 0.7);
        let mut acc = C64::one();
        for _ in 0..9 {
            acc *= z;
        }
        let p = z.powi(9);
        assert!((p - acc).abs() < 1e-15);
        assert_eq!(z.powi(0), C64::one());
        let inv = z.powi(-2) * z.powi(2);
        assert!((inv - C64::one()).abs() < 1e-14);
    }

    #[test]
    fn unit_from_angle_has_unit_norm() {
        for k in 0..16 {
            let z = C64::unit_from_angle(k as f64 * 0.5);
            assert!((z.norm_sqr() - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn conj_norm_identity() {
        let z = CDd::from_f64(1.5, -2.5);
        let n = (z * z.conj()).re;
        assert_eq!(n.to_f64(), z.norm_sqr().to_f64());
        assert_eq!((z * z.conj()).im.to_f64(), 0.0);
    }

    #[test]
    fn convert_promote_demote() {
        let z = C64::from_f64(std::f64::consts::PI, -std::f64::consts::E);
        let zd: CDd = z.convert();
        assert_eq!(zd.to_c64(), z);
    }

    #[test]
    fn dd_complex_precision_beats_f64() {
        // (1 + i*2^-60)^2 has re = 1 - 2^-120; only DD sees the correction.
        let zd = CDd::new(Dd::ONE, Dd::from_f64(2f64.powi(-60)));
        let sq = zd * zd;
        let re_err = sq.re - Dd::ONE;
        assert_eq!(re_err.to_f64(), -(2f64.powi(-120)));
    }

    #[test]
    fn scale_and_neg() {
        let z = C64::from_f64(2.0, -3.0);
        assert_eq!(z.scale(2.0), C64::from_f64(4.0, -6.0));
        assert_eq!(-z, C64::from_f64(-2.0, 3.0));
    }

    #[test]
    fn display_shows_sign_of_im() {
        let s = format!("{}", C64::from_f64(1.0, -2.0));
        assert!(s.contains("- "), "{s}");
        let s = format!("{}", C64::from_f64(1.0, 2.0));
        assert!(s.contains("+ "), "{s}");
    }
}
