//! Dense row-major complex matrices.
//!
//! Sized for the paper's regime (Jacobians of dimension 30–70): a simple
//! contiguous `Vec` with row-major indexing, no blocking. Linear-algebra
//! algorithms (LU, solves) live in `polygpu-homotopy`; this type only
//! owns storage and indexing.

use crate::{Complex, Real};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `rows × cols` complex matrix, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct CMat<R> {
    rows: usize,
    cols: usize,
    data: Vec<Complex<R>>,
}

impl<R: Real> CMat<R> {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat {
            rows,
            cols,
            data: vec![Complex::zero(); rows * cols],
        }
    }

    /// Identity (square).
    pub fn identity(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::one();
        }
        m
    }

    /// Build from a row-major vector; `data.len()` must equal
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex<R>>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "CMat::from_vec: {} elements for {}x{}",
            data.len(),
            rows,
            cols
        );
        CMat { rows, cols, data }
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> Complex<R>,
    ) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        CMat { rows, cols, data }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn as_slice(&self) -> &[Complex<R>] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex<R>] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Complex<R>] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix–vector product `A·x`.
    pub fn matvec(&self, x: &[Complex<R>]) -> Vec<Complex<R>> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let mut acc = Complex::zero();
                for (a, b) in self.row(i).iter().zip(x) {
                    acc += *a * *b;
                }
                acc
            })
            .collect()
    }

    /// Matrix product `A·B`.
    pub fn matmul(&self, b: &CMat<R>) -> CMat<R> {
        assert_eq!(self.cols, b.rows, "matmul dimension mismatch");
        let mut out = CMat::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a_il = self[(i, l)];
                for j in 0..b.cols {
                    out[(i, j)] += a_il * b[(l, j)];
                }
            }
        }
        out
    }

    /// Swap rows `a` and `b` (used by pivoting).
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let cols = self.cols;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (top, bottom) = self.data.split_at_mut(hi * cols);
        top[lo * cols..(lo + 1) * cols].swap_with_slice(&mut bottom[..cols]);
    }

    /// Max-magnitude entry (∞-norm building block).
    pub fn max_abs(&self) -> R {
        let mut m = R::zero();
        for z in &self.data {
            m = m.max_val(z.abs());
        }
        m
    }

    /// Convert entries to another precision (through nearest doubles).
    pub fn convert<S: Real>(&self) -> CMat<S> {
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.convert()).collect(),
        }
    }
}

impl<R: Real> Index<(usize, usize)> for CMat<R> {
    type Output = Complex<R>;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex<R> {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl<R: Real> IndexMut<(usize, usize)> for CMat<R> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex<R> {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl<R: Real> fmt::Display for CMat<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(i, j)].re.to_f64())?;
                let im = self[(i, j)].im.to_f64();
                if im < 0.0 {
                    write!(f, "-{:.4}i", -im)?;
                } else {
                    write!(f, "+{:.4}i", im)?;
                }
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::C64;

    #[test]
    fn identity_matvec_is_id() {
        let id = CMat::<f64>::identity(4);
        let x: Vec<C64> = (0..4)
            .map(|i| C64::from_f64(i as f64, -(i as f64)))
            .collect();
        assert_eq!(id.matvec(&x), x);
    }

    #[test]
    fn matmul_identity() {
        let a = CMat::<f64>::from_fn(3, 3, |i, j| C64::from_f64((i + 2 * j) as f64, 1.0));
        let id = CMat::<f64>::identity(3);
        assert_eq!(a.matmul(&id), a);
        assert_eq!(id.matmul(&a), a);
    }

    #[test]
    fn matmul_known_2x2() {
        // [[1, i], [0, 2]] * [[1, 0], [1, 1]] = [[1+i, i], [2, 2]]
        let a = CMat::from_vec(
            2,
            2,
            vec![C64::one(), C64::i(), C64::zero(), C64::from_f64(2.0, 0.0)],
        );
        let b = CMat::from_vec(2, 2, vec![C64::one(), C64::zero(), C64::one(), C64::one()]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], C64::from_f64(1.0, 1.0));
        assert_eq!(c[(0, 1)], C64::i());
        assert_eq!(c[(1, 0)], C64::from_f64(2.0, 0.0));
        assert_eq!(c[(1, 1)], C64::from_f64(2.0, 0.0));
    }

    #[test]
    fn swap_rows_both_directions() {
        let mut m = CMat::<f64>::from_fn(3, 2, |i, _| C64::from_f64(i as f64, 0.0));
        m.swap_rows(0, 2);
        assert_eq!(m[(0, 0)].re, 2.0);
        assert_eq!(m[(2, 0)].re, 0.0);
        m.swap_rows(2, 0); // reverse order argument
        assert_eq!(m[(0, 0)].re, 0.0);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m[(1, 0)].re, 1.0);
    }

    #[test]
    fn max_abs_finds_largest() {
        let mut m = CMat::<f64>::zeros(2, 2);
        m[(1, 0)] = C64::from_f64(3.0, 4.0);
        assert_eq!(m.max_abs(), 5.0);
    }

    #[test]
    #[should_panic(expected = "matvec dimension mismatch")]
    fn matvec_checks_dims() {
        let m = CMat::<f64>::zeros(2, 3);
        let _ = m.matvec(&[C64::one()]);
    }

    #[test]
    #[should_panic(expected = "CMat::from_vec")]
    fn from_vec_checks_len() {
        let _ = CMat::<f64>::from_vec(2, 2, vec![C64::one()]);
    }
}
