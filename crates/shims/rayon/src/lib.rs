//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no registry access, so this crate provides
//! the (small) rayon surface the workspace uses: `into_par_iter()` /
//! `par_iter()` with `map`, `map_init`, `sum` and `collect`, plus
//! [`current_num_threads`]. Semantics match rayon where it matters
//! here:
//!
//! * results are collected **in input order**, so everything downstream
//!   is deterministic regardless of scheduling;
//! * work really runs on multiple OS threads (`std::thread::scope`,
//!   one contiguous chunk per thread) — the simulator's block-level
//!   parallelism and the multicore quality-up experiment keep their
//!   meaning;
//! * `map_init` creates one `init()` value per worker thread and
//!   threads it through that worker's chunk, like rayon's.
//!
//! Not implemented: work stealing, nested pools, the full
//! `ParallelIterator` trait zoo. Add methods as call sites need them.

use std::thread;

/// Number of worker threads a parallel call will use.
pub fn current_num_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The commonly-imported surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// An eager "parallel iterator": the items are materialized and each
/// adapter runs them across threads, preserving order.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Conversion into a [`ParIter`] by value (`0..n`, vectors, …).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Conversion into a [`ParIter`] over references (`slice.par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    type Item: Send + 'data;
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Order-preserving parallel map with one `init()` state per worker.
fn par_map_init<T, S, R, INIT, F>(items: Vec<T>, init: INIT, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let len = items.len();
    let workers = current_num_threads().min(len.max(1));
    if workers <= 1 || len <= 1 {
        let mut state = init();
        return items.into_iter().map(|x| f(&mut state, x)).collect();
    }
    let chunk = len.div_ceil(workers);
    let mut source = items.into_iter();
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    while source.len() > 0 {
        chunks.push(source.by_ref().take(chunk).collect());
    }
    let mapped: Vec<Vec<R>> = thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                scope.spawn(|| {
                    let mut state = init();
                    c.into_iter().map(|x| f(&mut state, x)).collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shim worker thread panicked"))
            .collect()
    });
    mapped.into_iter().flatten().collect()
}

impl<T: Send> ParIter<T> {
    /// Parallel map; results keep input order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: par_map_init(self.items, || (), |(), x| f(x)),
        }
    }

    /// Parallel map with a per-worker mutable state created by `init`.
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParIter<R>
    where
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
    {
        ParIter {
            items: par_map_init(self.items, init, f),
        }
    }

    /// Collect the (already computed) results.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sum the results.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<u32> = (0u32..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0u32..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice_and_vec() {
        let v = vec![1.0f64, 2.0, 3.0];
        let s: f64 = v.par_iter().map(|x| x * x).sum();
        assert_eq!(s, 14.0);
        let slice: &[f64] = &v;
        let s2: f64 = slice.par_iter().map(|x| x * x).sum();
        assert_eq!(s2, 14.0);
    }

    #[test]
    fn map_init_threads_state_per_worker() {
        let out: Vec<usize> = vec![1usize; 64]
            .par_iter()
            .map_init(Vec::<usize>::new, |scratch, &x| {
                scratch.push(x);
                x
            })
            .collect();
        assert_eq!(out.len(), 64);
        assert!(out.iter().all(|&x| x == 1));
    }

    #[test]
    fn threads_reported() {
        assert!(current_num_threads() >= 1);
    }
}
