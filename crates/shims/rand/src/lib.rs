//! Offline stand-in for the `rand` crate.
//!
//! Provides the surface the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64` and `Rng::gen_range` over integer and
//! float ranges — backed by xoshiro256++ with splitmix64 seeding.
//!
//! The stream differs from upstream `rand`'s `StdRng` (which is
//! ChaCha12); nothing in the workspace depends on the exact stream,
//! only on determinism under a fixed seed, which this crate guarantees.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample a `T` from an RNG.
pub trait SampleRange<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = ((hi - lo) as u64).wrapping_add(1);
                // span == 0 means the full u64 domain (only possible for
                // 64-bit types spanning everything): take the raw word.
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start as f64 + (self.end as f64 - self.start as f64) * unit;
                // Guard the open upper bound against rounding.
                if v < self.end as f64 {
                    v as $t
                } else {
                    self.start
                }
            }
        }
    )*};
}

float_sample_range!(f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic RNG: xoshiro256++ (Blackman & Vigna), seeded by
    /// splitmix64 — the standard seeding recipe.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let mut d = StdRng::seed_from_u64(42);
        let differs = (0..100).any(|_| c.gen_range(0u64..u64::MAX) != d.gen_range(0u64..u64::MAX));
        assert!(differs, "different seeds must yield different streams");
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u16..=5);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(0.0f64..std::f64::consts::TAU);
            assert!((0.0..std::f64::consts::TAU).contains(&f));
        }
    }

    #[test]
    fn full_domain_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let _: u64 = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn integer_samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
    }
}
