//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! [`Strategy`] with `prop_map` / `prop_flat_map` / `prop_filter`,
//! range and tuple strategies, [`Just`], [`prop_oneof!`],
//! `collection::vec`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from upstream: cases are generated from a fixed seed
//! derived from the test name (fully deterministic across runs), and
//! failing cases are **not shrunk** — the panic reports the failing
//! assertion directly.

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (only the case count is honored).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies by the runner.
pub type TestRng = StdRng;

/// Deterministic per-test RNG: FNV-1a over the test name.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values; the shim's `Strategy` produces final
/// values directly (no value trees, hence no shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 candidates in a row",
            self.whence
        );
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_inclusive_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
}

/// Type-erased strategy, the result of [`prop_oneof!`] arms.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Box any strategy (used by [`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    BoxedStrategy(Box::new(move |rng| s.generate(rng)))
}

/// Uniform choice among boxed strategies.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::{Rng as _, RngCore};
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed count or a range.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Box<dyn SizeRange>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let _ = rng.next_u64(); // decorrelate length from first element
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector of `element` values with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange + 'static) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: Box::new(size),
        }
    }
}

/// The commonly-imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        boxed, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Assertion macros: plain panics (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Skip the current generated case when its inputs are unsuitable.
/// The case body runs in a `Result`-returning closure (as upstream's
/// does), so this returns the rejection early.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err("prop_assume rejected");
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err("prop_assume rejected");
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Uniform choice among heterogeneous strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($arm)),+])
    };
}

/// The test-defining macro: runs each body over `cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = (<$crate::ProptestConfig as Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // The body runs in a Result-returning closure so
                    // `return Ok(())` and `prop_assume!` work as they
                    // do upstream; Err means "case rejected", not
                    // failure (assertions panic).
                    #[allow(unused_mut)]
                    let mut case = || -> ::std::result::Result<(), &'static str> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    let _ = case();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small() -> impl Strategy<Value = f64> {
        prop_oneof![-1.0f64..1.0, Just(0.5), Just(-0.25)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(a in 0usize..10, pair in (0u32..5, -1.0f64..1.0)) {
            prop_assert!(a < 10);
            prop_assert!(pair.0 < 5);
            prop_assert!((-1.0..1.0).contains(&pair.1));
        }

        #[test]
        fn combinators(x in small().prop_map(|v| v * 2.0).prop_filter("finite", |v| v.is_finite())) {
            prop_assert!((-2.0..=2.0).contains(&x));
        }

        #[test]
        fn vectors(xs in prop::collection::vec(0u32..100, 0..12)) {
            prop_assert!(xs.len() < 12);
            prop_assert!(xs.iter().all(|&v| v < 100));
        }

        #[test]
        fn flat_map(v in (1usize..8).prop_flat_map(|n| prop::collection::vec(0usize..10, n))) {
            prop_assert!(!v.is_empty() && v.len() < 8);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let s = 0u64..1000;
        for _ in 0..10 {
            assert_eq!(
                crate::Strategy::generate(&s, &mut a),
                crate::Strategy::generate(&s, &mut b)
            );
        }
    }
}
