//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace's benches use — `Criterion`,
//! `benchmark_group`/`bench_function`/`bench_with_input`,
//! `BenchmarkId`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros — with a simple median-of-samples timer
//! instead of criterion's statistical machinery. Output is one line per
//! benchmark:
//!
//! ```text
//! bench group/name ... median 12.345 us (7 samples)
//! ```

use std::time::Instant;

/// Re-export-compatible opaque-value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark (`name/param`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId { id: s.clone() }
    }
}

/// Passed to the benchmark closure; `iter` times the workload.
pub struct Bencher {
    samples: usize,
    /// Median seconds per iteration of the last `iter` call.
    last_median: f64,
}

impl Bencher {
    /// Run `f` once as warm-up, then time `samples` runs and record the
    /// median.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f());
        let mut times: Vec<f64> = (0..self.samples.max(1))
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(f64::total_cmp);
        self.last_median = times[times.len() / 2];
    }
}

fn report(id: &str, b: &Bencher) {
    let t = b.last_median;
    let (value, unit) = if t >= 1.0 {
        (t, "s")
    } else if t >= 1e-3 {
        (t * 1e3, "ms")
    } else if t >= 1e-6 {
        (t * 1e6, "us")
    } else {
        (t * 1e9, "ns")
    };
    println!(
        "bench {id} ... median {value:.3} {unit} ({} samples)",
        b.samples
    );
}

/// A named group of benchmarks with a shared sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _criterion: &'c mut Criterion,
}

impl<'c> BenchmarkGroup<'c> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn bench_function<I: Into<BenchmarkId>>(
        &mut self,
        id: I,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            last_median: 0.0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    pub fn bench_with_input<I: Into<BenchmarkId>, P: ?Sized>(
        &mut self,
        id: I,
        input: &P,
        mut f: impl FnMut(&mut Bencher, &P),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            last_median: 0.0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    samples: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.samples == 0 { 10 } else { self.samples };
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    pub fn bench_function<I: Into<BenchmarkId>>(
        &mut self,
        id: I,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: if self.samples == 0 { 10 } else { self.samples },
            last_median: 0.0,
        };
        f(&mut b);
        report(&id.id, &b);
        self
    }

    /// Compatibility no-op (upstream parses CLI flags here).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Define a function running a list of benchmark functions, compatible
/// with upstream's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| black_box(3)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_times() {
        benches();
    }

    #[test]
    fn id_conversions() {
        let _: BenchmarkId = "a".into();
        let _: BenchmarkId = String::from("b").into();
        let s = String::from("c");
        let _: BenchmarkId = (&s).into();
        assert_eq!(BenchmarkId::new("n", 3).id, "n/3");
    }
}
