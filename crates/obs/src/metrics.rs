//! The unified metrics registry: counters, gauges and histogram
//! summaries from every layer's stats struct, flattened into one
//! diffable, serializable [`TelemetrySnapshot`].
//!
//! Values are modeled quantities, so snapshots are as deterministic as
//! the solves they describe: the same seed yields the same snapshot,
//! byte for byte once serialized.

use std::collections::BTreeMap;
use std::fmt;

/// One recorded metric value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Monotone event count.
    Counter(u64),
    /// Point-in-time measurement (modeled seconds, ratios, …).
    Gauge(f64),
    /// Distribution summary of `observe`d samples.
    Histogram {
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
    },
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricValue::Counter(v) => write!(f, "{v}"),
            MetricValue::Gauge(v) => write!(f, "{v:.6e}"),
            MetricValue::Histogram {
                count,
                sum,
                min,
                max,
            } => {
                write!(f, "n={count} sum={sum:.6e} min={min:.6e} max={max:.6e}")
            }
        }
    }
}

/// Collects metrics under sorted, namespaced keys
/// (`pipeline.wall_seconds`, `fault.faults`, …).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `v` to the counter `name` (creating it at zero).
    pub fn counter(&mut self, name: &str, v: u64) {
        match self.entries.get_mut(name) {
            Some(MetricValue::Counter(c)) => *c += v,
            _ => {
                self.entries
                    .insert(name.to_string(), MetricValue::Counter(v));
            }
        }
    }

    /// Set the gauge `name` to `v` (last write wins).
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.entries.insert(name.to_string(), MetricValue::Gauge(v));
    }

    /// Fold the sample `v` into the histogram summary `name`.
    pub fn observe(&mut self, name: &str, v: f64) {
        match self.entries.get_mut(name) {
            Some(MetricValue::Histogram {
                count,
                sum,
                min,
                max,
            }) => {
                *count += 1;
                *sum += v;
                *min = min.min(v);
                *max = max.max(v);
            }
            _ => {
                self.entries.insert(
                    name.to_string(),
                    MetricValue::Histogram {
                        count: 1,
                        sum: v,
                        min: v,
                        max: v,
                    },
                );
            }
        }
    }

    /// Freeze the registry into an immutable snapshot.
    pub fn snapshot(self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            entries: self.entries.into_iter().collect(),
        }
    }
}

/// An immutable, sorted view of every metric of one solve — the single
/// artifact that subsumes the per-layer stats structs.
///
/// ```
/// use polygpu_obs::{MetricsRegistry, MetricValue};
///
/// let mut reg = MetricsRegistry::new();
/// reg.counter("pipeline.evaluations", 64);
/// reg.gauge("pipeline.wall_seconds", 1.25e-3);
/// let snap = reg.snapshot();
/// assert_eq!(snap.get("pipeline.evaluations"), Some(MetricValue::Counter(64)));
/// // Snapshots serialize without external dependencies…
/// assert!(snap.to_json().contains("\"pipeline.wall_seconds\""));
/// // …and diff across runs.
/// assert!(snap.diff(&snap).is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    entries: Vec<(String, MetricValue)>,
}

impl TelemetrySnapshot {
    /// Look up one metric by its full key.
    pub fn get(&self, name: &str) -> Option<MetricValue> {
        self.entries
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// All `(key, value)` entries in sorted key order.
    pub fn entries(&self) -> &[(String, MetricValue)] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hand-rolled JSON (no external deps): a single object keyed by
    /// metric name. Counters serialize as integers, gauges as numbers,
    /// histograms as `{count, sum, min, max}` objects. Deterministic:
    /// keys are sorted and floats use Rust's shortest-roundtrip form.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape_json(k));
            out.push_str("\":");
            match v {
                MetricValue::Counter(c) => out.push_str(&c.to_string()),
                MetricValue::Gauge(g) => out.push_str(&json_f64(*g)),
                MetricValue::Histogram {
                    count,
                    sum,
                    min,
                    max,
                } => {
                    out.push_str(&format!(
                        "{{\"count\":{count},\"sum\":{},\"min\":{},\"max\":{}}}",
                        json_f64(*sum),
                        json_f64(*min),
                        json_f64(*max)
                    ));
                }
            }
        }
        out.push('}');
        out
    }

    /// Combine two snapshots key-wise into tenant- or fleet-level
    /// totals: counters add, gauges add (callers owning ratio gauges
    /// should recompute them after merging), histograms combine
    /// field-wise (`count`/`sum` add, `min`/`max` fold). Keys present
    /// on only one side carry over unchanged; mismatched kinds under
    /// the same key keep `self`'s value. The result stays sorted, so
    /// merging is associative and deterministic.
    pub fn merge(&self, other: &TelemetrySnapshot) -> TelemetrySnapshot {
        let mut entries = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() || j < other.entries.len() {
            let take_left = j >= other.entries.len()
                || (i < self.entries.len() && self.entries[i].0 <= other.entries[j].0);
            let take_right = i >= self.entries.len()
                || (j < other.entries.len() && other.entries[j].0 <= self.entries[i].0);
            match (take_left, take_right) {
                (true, true) => {
                    let merged = match (self.entries[i].1, other.entries[j].1) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                            MetricValue::Counter(a + b)
                        }
                        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => MetricValue::Gauge(a + b),
                        (
                            MetricValue::Histogram {
                                count: c0,
                                sum: s0,
                                min: m0,
                                max: x0,
                            },
                            MetricValue::Histogram {
                                count: c1,
                                sum: s1,
                                min: m1,
                                max: x1,
                            },
                        ) => MetricValue::Histogram {
                            count: c0 + c1,
                            sum: s0 + s1,
                            min: m0.min(m1),
                            max: x0.max(x1),
                        },
                        (left, _) => left,
                    };
                    entries.push((self.entries[i].0.clone(), merged));
                    i += 1;
                    j += 1;
                }
                (true, false) => {
                    entries.push(self.entries[i].clone());
                    i += 1;
                }
                (false, true) => {
                    entries.push(other.entries[j].clone());
                    j += 1;
                }
                (false, false) => unreachable!("merge always advances"),
            }
        }
        TelemetrySnapshot { entries }
    }

    /// Keys whose values differ between `self` and `other` (including
    /// keys present on only one side), with both values.
    pub fn diff(&self, other: &TelemetrySnapshot) -> Vec<MetricDelta> {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() || j < other.entries.len() {
            let take_left = j >= other.entries.len()
                || (i < self.entries.len() && self.entries[i].0 <= other.entries[j].0);
            let take_right = i >= self.entries.len()
                || (j < other.entries.len() && other.entries[j].0 <= self.entries[i].0);
            match (take_left, take_right) {
                (true, true) => {
                    if self.entries[i].1 != other.entries[j].1 {
                        out.push(MetricDelta {
                            key: self.entries[i].0.clone(),
                            before: Some(self.entries[i].1),
                            after: Some(other.entries[j].1),
                        });
                    }
                    i += 1;
                    j += 1;
                }
                (true, false) => {
                    out.push(MetricDelta {
                        key: self.entries[i].0.clone(),
                        before: Some(self.entries[i].1),
                        after: None,
                    });
                    i += 1;
                }
                (false, true) => {
                    out.push(MetricDelta {
                        key: other.entries[j].0.clone(),
                        before: None,
                        after: Some(other.entries[j].1),
                    });
                    j += 1;
                }
                (false, false) => unreachable!("merge always advances"),
            }
        }
        out
    }
}

/// One differing metric between two snapshots (`None` = absent).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    pub key: String,
    pub before: Option<MetricValue>,
    pub after: Option<MetricValue>,
}

impl fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "  {k:<38}{v:>18}")?;
        }
        Ok(())
    }
}

/// Shortest-roundtrip float formatting that is still valid JSON
/// (`1.0` not `1`, no NaN/inf — those become `null`).
pub(crate) fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v:?}");
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut reg = MetricsRegistry::new();
        reg.counter("a.count", 2);
        reg.counter("a.count", 3);
        reg.gauge("a.gauge", 1.0);
        reg.gauge("a.gauge", 2.0);
        let snap = reg.snapshot();
        assert_eq!(snap.get("a.count"), Some(MetricValue::Counter(5)));
        assert_eq!(snap.get("a.gauge"), Some(MetricValue::Gauge(2.0)));
        assert_eq!(snap.get("missing"), None);
    }

    #[test]
    fn histograms_summarize_samples() {
        let mut reg = MetricsRegistry::new();
        for v in [3.0, 1.0, 2.0] {
            reg.observe("h", v);
        }
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("h"),
            Some(MetricValue::Histogram {
                count: 3,
                sum: 6.0,
                min: 1.0,
                max: 3.0
            })
        );
    }

    #[test]
    fn json_is_sorted_and_roundtrip_stable() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("b.wall", 0.5);
        reg.counter("a.evals", 7);
        let snap = reg.snapshot();
        let json = snap.to_json();
        assert_eq!(json, "{\"a.evals\":7,\"b.wall\":0.5}");
        // Same registry contents → byte-identical JSON.
        let mut reg2 = MetricsRegistry::new();
        reg2.counter("a.evals", 7);
        reg2.gauge("b.wall", 0.5);
        assert_eq!(reg2.snapshot().to_json(), json);
    }

    #[test]
    fn diff_reports_changed_and_one_sided_keys() {
        let mut a = MetricsRegistry::new();
        a.counter("same", 1);
        a.counter("changed", 1);
        a.counter("only_left", 1);
        let mut b = MetricsRegistry::new();
        b.counter("same", 1);
        b.counter("changed", 2);
        b.counter("only_right", 1);
        let d = a.snapshot().diff(&b.snapshot());
        let keys: Vec<&str> = d.iter().map(|x| x.key.as_str()).collect();
        assert_eq!(keys, ["changed", "only_left", "only_right"]);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut reg = MetricsRegistry::new();
        reg.counter("a.count", 3);
        reg.gauge("a.wall", 0.25);
        reg.observe("a.hist", 2.0);
        let snap = reg.snapshot();
        let empty = TelemetrySnapshot::default();
        assert_eq!(snap.merge(&empty), snap);
        assert_eq!(empty.merge(&snap), snap);
        assert_eq!(empty.merge(&empty), empty);
    }

    #[test]
    fn merge_disjoint_keys_is_union() {
        let mut a = MetricsRegistry::new();
        a.counter("left.count", 1);
        let mut b = MetricsRegistry::new();
        b.gauge("right.wall", 2.0);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.get("left.count"), Some(MetricValue::Counter(1)));
        assert_eq!(merged.get("right.wall"), Some(MetricValue::Gauge(2.0)));
        let keys: Vec<&str> = merged.entries().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["left.count", "right.wall"]);
    }

    #[test]
    fn merge_adds_counters_gauges_and_folds_histograms() {
        let mut a = MetricsRegistry::new();
        a.counter("c", 2);
        a.gauge("g", 1.5);
        a.observe("h", 1.0);
        a.observe("h", 3.0);
        let mut b = MetricsRegistry::new();
        b.counter("c", 5);
        b.gauge("g", 0.5);
        b.observe("h", 2.0);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.get("c"), Some(MetricValue::Counter(7)));
        assert_eq!(merged.get("g"), Some(MetricValue::Gauge(2.0)));
        assert_eq!(
            merged.get("h"),
            Some(MetricValue::Histogram {
                count: 3,
                sum: 6.0,
                min: 1.0,
                max: 3.0
            })
        );
    }

    #[test]
    fn display_is_aligned_key_value_lines() {
        let mut reg = MetricsRegistry::new();
        reg.counter("pipeline.evaluations", 3);
        let text = reg.snapshot().to_string();
        assert!(text.starts_with("  pipeline.evaluations"));
    }

    #[test]
    fn json_floats_stay_valid_json() {
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5e-9), "1.5e-9");
    }
}
