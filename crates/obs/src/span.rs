//! Spans on the modeled clock: the deterministic trace primitives.
//!
//! A [`Span`] is one interval of *simulated* time — a device operation,
//! a scheduler round, a backoff gap — attributed to a [`Track`] (one
//! row of the exported timeline) and stamped with a [`SpanKind`].
//! Because every timestamp comes from the cost model rather than the
//! host clock, two runs with the same seed produce the *same set* of
//! spans, and [`CollectingTracer::spans`] returns them in one total
//! deterministic order regardless of which host thread emitted them.

use std::cmp::Ordering;
use std::fmt;
use std::sync::{Arc, Mutex};

/// What a span stands for in the solve hierarchy
/// (`solve → pass → round → batch → shard → device op`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum SpanKind {
    /// One whole `Solver::solve` call.
    Solve,
    /// One precision pass (primary double or dd escalation).
    Pass,
    /// One scheduler round (queue refill-and-step or lockstep sweep).
    Round,
    /// One engine batch (one set of three kernel launches).
    Batch,
    /// One device's slice of a sharded cluster batch.
    Shard,
    /// Host-to-device transfer.
    Upload,
    /// Kernel launch (overhead + execution).
    Launch,
    /// Device-to-host transfer.
    Download,
    /// Cross-device result gather leg.
    Gather,
    /// A retried round after a recoverable fault.
    Retry,
    /// Modeled backoff gap charged between retries.
    Backoff,
    /// Fault detection window (the latency a strike charges).
    Detect,
    /// Re-encoding a system over the surviving fleet after device loss.
    Reencode,
    /// CPU-reference fallback absorbing work from lost devices.
    Fallback,
    /// One whole multi-tenant service run (`SolveService::run`).
    Serve,
    /// Admission decision for one submitted job.
    Admit,
    /// Modeled queue wait between admission and solve start.
    Wait,
    /// Cache eviction of a resident encoded system.
    Evict,
    /// One fused device-resident corrector call (evaluate → factor →
    /// solve → update without host round trips).
    Correct,
    /// Batched on-device LU factorization of the live Jacobians.
    Factor,
    /// Batched on-device back-substitution (one rhs per factored
    /// Jacobian).
    Backsub,
}

impl SpanKind {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Solve => "solve",
            SpanKind::Pass => "pass",
            SpanKind::Round => "round",
            SpanKind::Batch => "batch",
            SpanKind::Shard => "shard",
            SpanKind::Upload => "upload",
            SpanKind::Launch => "launch",
            SpanKind::Download => "download",
            SpanKind::Gather => "gather",
            SpanKind::Retry => "retry",
            SpanKind::Backoff => "backoff",
            SpanKind::Detect => "detect",
            SpanKind::Reencode => "reencode",
            SpanKind::Fallback => "fallback",
            SpanKind::Serve => "serve",
            SpanKind::Admit => "admit",
            SpanKind::Wait => "wait",
            SpanKind::Evict => "evict",
            SpanKind::Correct => "correct",
            SpanKind::Factor => "factor",
            SpanKind::Backsub => "backsub",
        }
    }
}

/// One engine row of a device track — mirrors the three engines of
/// `gpusim::stream::Timeline` plus a row for fault detection windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lane {
    /// Host → device DMA engine.
    H2D,
    /// Kernel execution engine.
    Compute,
    /// Device → host DMA engine.
    D2H,
    /// Fault detection / recovery row.
    Fault,
}

impl Lane {
    pub fn name(self) -> &'static str {
        match self {
            Lane::H2D => "h2d",
            Lane::Compute => "compute",
            Lane::D2H => "d2h",
            Lane::Fault => "fault",
        }
    }
}

/// The timeline row a span is attributed to. Tracks map onto
/// Chrome-trace `(pid, tid)` pairs: the scheduler and cluster get their
/// own processes, each device gets a process with one thread per
/// [`Lane`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Track {
    /// The solve/scheduler layer (solve, pass, round, retry, backoff).
    #[default]
    Scheduler,
    /// The cluster layer (sharded batches, failover, gathers).
    Cluster,
    /// One device's op-level row (batches, shards).
    Device(u32),
    /// One engine lane of one device.
    DeviceLane(u32, Lane),
}

impl Track {
    /// Chrome-trace process id of this track.
    pub fn pid(self) -> u64 {
        match self {
            Track::Scheduler => 0,
            Track::Cluster => 1,
            Track::Device(d) | Track::DeviceLane(d, _) => 100 + u64::from(d),
        }
    }

    /// Chrome-trace thread id of this track within its process.
    pub fn tid(self) -> u64 {
        match self {
            Track::Scheduler | Track::Cluster | Track::Device(_) => 0,
            Track::DeviceLane(_, lane) => match lane {
                Lane::H2D => 1,
                Lane::Compute => 2,
                Lane::D2H => 3,
                Lane::Fault => 4,
            },
        }
    }

    /// Human-readable label used by the rollup exporter.
    pub fn label(self) -> String {
        match self {
            Track::Scheduler => "scheduler".to_string(),
            Track::Cluster => "cluster".to_string(),
            Track::Device(d) => format!("device{d}"),
            Track::DeviceLane(d, lane) => format!("device{d}.{}", lane.name()),
        }
    }
}

/// A small attached value — span metadata stays allocation-light and
/// fully ordered so traces sort deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetaValue {
    U64(u64),
    F64(f64),
    Str(&'static str),
}

impl MetaValue {
    fn cmp_total(&self, other: &MetaValue) -> Ordering {
        fn rank(v: &MetaValue) -> u8 {
            match v {
                MetaValue::U64(_) => 0,
                MetaValue::F64(_) => 1,
                MetaValue::Str(_) => 2,
            }
        }
        match (self, other) {
            (MetaValue::U64(a), MetaValue::U64(b)) => a.cmp(b),
            (MetaValue::F64(a), MetaValue::F64(b)) => a.total_cmp(b),
            (MetaValue::Str(a), MetaValue::Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

/// One interval of modeled time on one [`Track`].
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub kind: SpanKind,
    pub track: Track,
    /// Start on the modeled clock, seconds.
    pub start: f64,
    /// Duration on the modeled clock, seconds.
    pub dur: f64,
    /// Nesting depth in the span hierarchy (0 = solve).
    pub depth: u8,
    /// Attached key/value metadata (path counts, device index, …).
    pub meta: Vec<(&'static str, MetaValue)>,
}

impl Span {
    /// Total deterministic order: track, then start, depth, kind,
    /// duration, metadata. Emission order is *not* part of the key, so
    /// spans recorded concurrently from worker threads still sort to
    /// one canonical sequence.
    pub fn cmp_total(&self, other: &Span) -> Ordering {
        self.track
            .cmp(&other.track)
            .then(self.start.total_cmp(&other.start))
            .then(self.depth.cmp(&other.depth))
            .then(self.kind.cmp(&other.kind))
            .then(self.dur.total_cmp(&other.dur))
            .then_with(|| {
                for (a, b) in self.meta.iter().zip(&other.meta) {
                    let o = a.0.cmp(b.0).then(a.1.cmp_total(&b.1));
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                self.meta.len().cmp(&other.meta.len())
            })
    }
}

/// A span consumer. Implementations must tolerate concurrent calls:
/// cluster shards evaluate on worker threads and record their device
/// spans as they go.
///
/// ```
/// use polygpu_obs::{CollectingTracer, Span, SpanKind, Track, Tracer};
///
/// let tracer = CollectingTracer::new();
/// tracer.record(Span {
///     kind: SpanKind::Batch,
///     track: Track::Device(0),
///     start: 0.0,
///     dur: 1.5e-3,
///     depth: 3,
///     meta: vec![],
/// });
/// assert_eq!(tracer.spans().len(), 1);
/// ```
pub trait Tracer: Send + Sync {
    fn record(&self, span: Span);
}

/// The default tracer: drops every span. Installing it (or no tracer
/// at all) leaves solves bit-identical to untraced runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn record(&self, _span: Span) {}
}

/// A tracer that buffers spans in memory for export.
#[derive(Debug, Default)]
pub struct CollectingTracer {
    spans: Mutex<Vec<Span>>,
}

impl CollectingTracer {
    pub fn new() -> Self {
        CollectingTracer::default()
    }

    /// All recorded spans in the canonical deterministic order
    /// ([`Span::cmp_total`]) — independent of host-thread interleaving.
    pub fn spans(&self) -> Vec<Span> {
        let mut v = self.spans.lock().expect("tracer poisoned").clone();
        v.sort_by(Span::cmp_total);
        v
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("tracer poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Tracer for CollectingTracer {
    fn record(&self, span: Span) {
        self.spans.lock().expect("tracer poisoned").push(span);
    }
}

/// The handle threaded through the engine layers: a shared [`Tracer`]
/// plus the [`Track`] and clock offset spans from this vantage point
/// are attributed to. Cloning is cheap; the default sink is a no-op
/// whose `emit` compiles down to a branch on `None`.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<dyn Tracer>>,
    track: Track,
    base: f64,
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceSink")
            .field("enabled", &self.inner.is_some())
            .field("track", &self.track)
            .field("base", &self.base)
            .finish()
    }
}

impl TraceSink {
    /// The disabled sink (same as `TraceSink::default()`).
    pub fn noop() -> Self {
        TraceSink::default()
    }

    /// A sink recording into `tracer`, attributed to
    /// [`Track::Scheduler`] at clock offset zero.
    pub fn new(tracer: Arc<dyn Tracer>) -> Self {
        TraceSink {
            inner: Some(tracer),
            track: Track::Scheduler,
            base: 0.0,
        }
    }

    /// Whether spans are actually recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The same sink attributed to `track`.
    pub fn on(&self, track: Track) -> Self {
        TraceSink {
            inner: self.inner.clone(),
            track,
            base: self.base,
        }
    }

    /// The engine-lane sink of this device track; on non-device tracks
    /// this is a no-op retarget.
    pub fn lane(&self, lane: Lane) -> Self {
        match self.track {
            Track::Device(d) | Track::DeviceLane(d, _) => self.on(Track::DeviceLane(d, lane)),
            other => self.on(other),
        }
    }

    /// The same sink with its clock origin shifted to `base` seconds —
    /// how an escalation pass keeps its spans after the primary pass.
    pub fn rebased(&self, base: f64) -> Self {
        TraceSink {
            inner: self.inner.clone(),
            track: self.track,
            base,
        }
    }

    /// The clock origin of this sink.
    pub fn base(&self) -> f64 {
        self.base
    }

    /// Record one span at `start..start + dur` on this sink's local
    /// clock (the sink adds its own origin offset).
    pub fn emit(
        &self,
        kind: SpanKind,
        start: f64,
        dur: f64,
        depth: u8,
        meta: &[(&'static str, MetaValue)],
    ) {
        if let Some(t) = &self.inner {
            t.record(Span {
                kind,
                track: self.track,
                start: self.base + start,
                dur,
                depth,
                meta: meta.to_vec(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_free_and_disabled() {
        let s = TraceSink::noop();
        assert!(!s.enabled());
        s.emit(SpanKind::Batch, 0.0, 1.0, 0, &[]);
        let lane = s.lane(Lane::Compute);
        assert!(!lane.enabled());
    }

    #[test]
    fn collecting_tracer_sorts_spans_deterministically() {
        let t = Arc::new(CollectingTracer::new());
        let sink = TraceSink::new(t.clone());
        // Emit out of order, on mixed tracks.
        sink.on(Track::Device(1))
            .emit(SpanKind::Batch, 2.0, 1.0, 3, &[]);
        sink.on(Track::Device(0))
            .emit(SpanKind::Batch, 5.0, 1.0, 3, &[]);
        sink.emit(SpanKind::Solve, 0.0, 9.0, 0, &[]);
        sink.on(Track::Device(0))
            .emit(SpanKind::Batch, 1.0, 1.0, 3, &[]);
        let spans = t.spans();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].track, Track::Scheduler);
        assert_eq!(spans[1].track, Track::Device(0));
        assert_eq!(spans[1].start, 1.0);
        assert_eq!(spans[2].start, 5.0);
        assert_eq!(spans[3].track, Track::Device(1));
    }

    #[test]
    fn lane_retargets_only_device_tracks() {
        let t = Arc::new(CollectingTracer::new());
        let sink = TraceSink::new(t.clone());
        // On a non-device track, lane() keeps the track unchanged.
        sink.lane(Lane::H2D).emit(SpanKind::Round, 0.0, 1.0, 2, &[]);
        let dev = sink.on(Track::Device(2)).lane(Lane::D2H);
        dev.emit(SpanKind::Download, 0.0, 1.0, 5, &[]);
        let spans = t.spans();
        assert_eq!(spans[0].track, Track::Scheduler);
        assert_eq!(spans[1].track, Track::DeviceLane(2, Lane::D2H));
    }

    #[test]
    fn rebasing_offsets_the_clock() {
        let t = Arc::new(CollectingTracer::new());
        let sink = TraceSink::new(t.clone()).rebased(10.0);
        sink.emit(SpanKind::Pass, 1.0, 2.0, 1, &[]);
        assert_eq!(t.spans()[0].start, 11.0);
    }
}
