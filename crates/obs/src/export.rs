//! Trace exporters: Chrome-trace/Perfetto JSON and a flamegraph-style
//! phase-attribution rollup. Both sort spans into the canonical order
//! first, so output is byte-identical across runs of the same seed no
//! matter how host threads interleaved span emission.

use crate::metrics::{escape_json, json_f64};
use crate::span::{MetaValue, Span};
use std::collections::BTreeMap;

/// Serialize spans as a Chrome-trace JSON object (`chrome://tracing`,
/// Perfetto UI, `speedscope` all load it). One complete event
/// (`"ph": "X"`) per span; the modeled clock maps to microseconds;
/// tracks map to `(pid, tid)` pairs via [`crate::Track::pid`]/
/// [`crate::Track::tid`].
pub fn chrome_trace_json(spans: &[Span]) -> String {
    let mut sorted: Vec<&Span> = spans.iter().collect();
    sorted.sort_by(|a, b| a.cmp_total(b));
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}",
            s.kind.name(),
            escape_json(&s.track.label()),
            json_f64(s.start * 1e6),
            json_f64(s.dur * 1e6),
            s.track.pid(),
            s.track.tid(),
        ));
        out.push_str(",\"args\":{\"depth\":");
        out.push_str(&s.depth.to_string());
        for (k, v) in &s.meta {
            out.push_str(",\"");
            out.push_str(&escape_json(k));
            out.push_str("\":");
            match v {
                MetaValue::U64(u) => out.push_str(&u.to_string()),
                MetaValue::F64(x) => out.push_str(&json_f64(*x)),
                MetaValue::Str(t) => {
                    out.push('"');
                    out.push_str(&escape_json(t));
                    out.push('"');
                }
            }
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// Flamegraph-style phase attribution: folded-stack lines
/// (`track;kind <microseconds>`), one per `(track, kind)` pair, sorted —
/// feed them to any flamegraph renderer or diff them across runs.
pub fn phase_rollup(spans: &[Span]) -> String {
    let mut folded: BTreeMap<String, f64> = BTreeMap::new();
    for s in spans {
        *folded
            .entry(format!("{};{}", s.track.label(), s.kind.name()))
            .or_insert(0.0) += s.dur * 1e6;
    }
    let mut out = String::new();
    for (stack, us) in folded {
        out.push_str(&format!("{stack} {}\n", json_f64(us)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Lane, SpanKind, Track};

    fn span(kind: SpanKind, track: Track, start: f64, dur: f64, depth: u8) -> Span {
        Span {
            kind,
            track,
            start,
            dur,
            depth,
            meta: vec![],
        }
    }

    #[test]
    fn chrome_trace_is_order_independent() {
        let a = span(SpanKind::Batch, Track::Device(0), 1.0, 2.0, 3);
        let b = span(SpanKind::Solve, Track::Scheduler, 0.0, 5.0, 0);
        let fwd = chrome_trace_json(&[a.clone(), b.clone()]);
        let rev = chrome_trace_json(&[b, a]);
        assert_eq!(fwd, rev, "export must not depend on emission order");
        assert!(fwd.starts_with("{\"traceEvents\":["));
        assert!(fwd.contains("\"ph\":\"X\""));
        assert!(fwd.contains("\"pid\":100"));
    }

    #[test]
    fn chrome_trace_carries_meta_and_lane_tids() {
        let mut s = span(
            SpanKind::Upload,
            Track::DeviceLane(1, Lane::H2D),
            0.0,
            1e-6,
            4,
        );
        s.meta.push(("points", MetaValue::U64(16)));
        let json = chrome_trace_json(&[s]);
        assert!(json.contains("\"pid\":101"));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"points\":16"));
        assert!(json.contains("\"cat\":\"device1.h2d\""));
    }

    #[test]
    fn rollup_folds_durations_per_track_and_kind() {
        let spans = [
            span(SpanKind::Batch, Track::Device(0), 0.0, 1.0, 3),
            span(SpanKind::Batch, Track::Device(0), 2.0, 1.0, 3),
            span(SpanKind::Round, Track::Scheduler, 0.0, 3.0, 2),
        ];
        let folded = phase_rollup(&spans);
        assert!(folded.contains("device0;batch 2000000.0\n"));
        assert!(folded.contains("scheduler;round 3000000.0\n"));
    }
}
