//! # polygpu-obs — deterministic tracing & metrics over the modeled clock
//!
//! The observability seam of the workspace: spans, tracers, metric
//! registries and exporters that every layer (gpusim timelines, the
//! batched pipelines, the sharded cluster, the schedulers and the
//! solver) threads its telemetry through.
//!
//! The defining property is **determinism**: spans are timestamped by
//! the *simulated* timeline clock, never the host clock, so the same
//! seed yields a byte-identical exported trace — traces are a
//! correctness artifact, not just a debugging aid. Likewise the no-op
//! default tracer leaves solves bit-identical to untraced runs.
//!
//! ```
//! use polygpu_obs::prelude::*;
//! use std::sync::Arc;
//!
//! let tracer = Arc::new(CollectingTracer::new());
//! let sink = TraceSink::new(tracer.clone());
//! // Layers emit spans on their track, on the modeled clock…
//! sink.on(Track::Device(0))
//!     .emit(SpanKind::Batch, 0.0, 1.5e-3, 3, &[("points", MetaValue::U64(64))]);
//! // …and the result exports as Chrome-trace JSON for Perfetto.
//! let json = chrome_trace_json(&tracer.spans());
//! assert!(json.contains("\"name\":\"batch\""));
//! ```

pub mod export;
pub mod metrics;
pub mod span;

/// The commonly-needed surface in one import.
pub mod prelude {
    pub use crate::export::{chrome_trace_json, phase_rollup};
    pub use crate::metrics::{MetricDelta, MetricValue, MetricsRegistry, TelemetrySnapshot};
    pub use crate::span::{
        CollectingTracer, Lane, MetaValue, NoopTracer, Span, SpanKind, TraceSink, Tracer, Track,
    };
}

pub use prelude::*;
