//! Property-based tests for the warp analyzer and timing model:
//! invariants that must hold for *any* access pattern.

use polygpu_complex::C64;
use polygpu_gpusim::analysis::analyze_block;
use polygpu_gpusim::fault::{FaultInjector, FaultKind, FaultPlan, OpClass};
use polygpu_gpusim::prelude::*;
use polygpu_gpusim::trace::{Ev, ThreadTrace};
use proptest::prelude::*;

fn device() -> DeviceSpec {
    DeviceSpec::tesla_c2050()
}

/// A warp of traces, each a single global load at an arbitrary
/// (aligned) element address.
fn gload_warp() -> impl Strategy<Value = Vec<ThreadTrace>> {
    prop::collection::vec(0u64..10_000, 32).prop_map(|idxs| {
        idxs.into_iter()
            .map(|i| {
                vec![
                    Ev::GLoad {
                        addr: 0x1000 + i * 16,
                    },
                    Ev::Sync,
                ]
            })
            .collect()
    })
}

fn sload_warp() -> impl Strategy<Value = Vec<ThreadTrace>> {
    prop::collection::vec(0u32..1024, 32).prop_map(|idxs| {
        idxs.into_iter()
            .map(|i| vec![Ev::SLoad { addr: i * 16 }, Ev::Sync])
            .collect()
    })
}

proptest! {
    #[test]
    fn global_transactions_bounded(traces in gload_warp()) {
        let c = analyze_block::<C64>(&device(), &traces);
        // One 16-byte access per lane: transactions between 1 (full
        // broadcast) and 32 lanes x 2 segments (unaligned straddle
        // cannot happen at 16B-aligned addresses, but keep the loose
        // upper bound).
        prop_assert!(c.global_transactions >= 1);
        prop_assert!(c.global_transactions <= 32);
        // Bytes are transactions x segment size.
        prop_assert_eq!(c.global_bytes, c.global_transactions * 128);
        // Lower bound: total unique bytes / segment size.
        prop_assert!(c.global_transactions as usize * 128 >= 32 * 16 / 8,
            "cannot move 512 useful bytes in fewer than 4 segments... {}",
            c.global_transactions);
    }

    #[test]
    fn coalesced_is_optimal_scattered_is_worst(base in 0u64..100) {
        // Unit stride: exactly 4 transactions. Stride >= 8 elements:
        // exactly 32.
        let unit: Vec<ThreadTrace> = (0..32)
            .map(|i| vec![Ev::GLoad { addr: 0x1000 + base * 512 + i * 16 }, Ev::Sync])
            .collect();
        let c = analyze_block::<C64>(&device(), &unit);
        prop_assert_eq!(c.global_transactions, 4);
        let scattered: Vec<ThreadTrace> = (0..32)
            .map(|i| vec![Ev::GLoad { addr: 0x1000 + base * 512 + i * 128 }, Ev::Sync])
            .collect();
        let c = analyze_block::<C64>(&device(), &scattered);
        prop_assert_eq!(c.global_transactions, 32);
    }

    #[test]
    fn shared_replays_bounded_by_worst_bank(traces in sload_warp()) {
        let c = analyze_block::<C64>(&device(), &traces);
        // A 16-byte access covers 4 words; 32 lanes x 4 words over 32
        // banks: replay (conflict + 1) can be at most 32 (all lanes'
        // words distinct in one bank is impossible here, but bound it).
        prop_assert!(c.shared_conflict_cycles < 32 * 4);
        prop_assert_eq!(c.shared_accesses, 1);
        prop_assert_eq!(c.warps, 1);
    }

    #[test]
    fn flop_accounting_is_exact(weights in prop::collection::vec(1u32..20, 32)) {
        let traces: Vec<ThreadTrace> = weights
            .iter()
            .map(|&w| vec![Ev::Flop { weight: w }, Ev::Sync])
            .collect();
        let c = analyze_block::<C64>(&device(), &traces);
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        prop_assert_eq!(c.flops, total);
        // Warp issue cost follows the widest lane.
        let max = *weights.iter().max().unwrap() as u64;
        prop_assert_eq!(c.issue_cycles, max * 2);
    }

    #[test]
    fn occupancy_monotone_in_shared_usage(
        b1 in 1usize..32_768,
        b2 in 1usize..32_768,
    ) {
        let dev = device();
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        let o_lo = polygpu_gpusim::occupancy::occupancy(&dev, 32, lo, 24);
        let o_hi = polygpu_gpusim::occupancy::occupancy(&dev, 32, hi, 24);
        if let (Some(a), Some(b)) = (o_lo, o_hi) {
            prop_assert!(a.blocks_per_sm >= b.blocks_per_sm,
                "more shared memory cannot increase occupancy");
        }
    }

    /// A fault schedule is a pure function of `(seed, device, op,
    /// class)`: re-querying a plan — or a freshly constructed equal
    /// plan — reproduces the exact same fault, which is what makes
    /// chaos runs replayable.
    #[test]
    fn fault_schedule_is_a_pure_function(
        seed in 0u64..u64::MAX,
        rate in 0u32..=1_000_000,
        device in 0usize..64,
        op in 0u64..u64::MAX,
    ) {
        let plan = FaultPlan::new(seed, rate);
        for class in [OpClass::HostToDevice, OpClass::DeviceToHost, OpClass::Kernel] {
            let first = plan.fault_at(device, op, class);
            prop_assert_eq!(first.clone(), plan.fault_at(device, op, class));
            prop_assert_eq!(first, FaultPlan::new(seed, rate).fault_at(device, op, class));
        }
        // Rate endpoints: zero never faults, full always faults.
        prop_assert_eq!(FaultPlan::new(seed, 0).fault_at(device, op, OpClass::Kernel), None);
        prop_assert!(
            FaultPlan::new(seed, 1_000_000).fault_at(device, op, OpClass::Kernel).is_some()
        );
    }

    /// Every drawn fault is legal for its operation class: transfers
    /// corrupt or lose the device, kernels fail, hang (with a positive
    /// timeout) or lose the device — a transfer never "hangs at
    /// launch".
    #[test]
    fn fault_kinds_respect_op_class(
        seed in 0u64..u64::MAX,
        device in 0usize..64,
        op in 0u64..u64::MAX,
    ) {
        let plan = FaultPlan::new(seed, 1_000_000);
        for class in [OpClass::HostToDevice, OpClass::DeviceToHost] {
            let kind = plan.fault_at(device, op, class).unwrap();
            prop_assert!(
                matches!(kind, FaultKind::DeviceLost | FaultKind::TransferCorrupt),
                "transfer drew {kind:?}"
            );
        }
        match plan.fault_at(device, op, OpClass::Kernel).unwrap() {
            FaultKind::LaunchHang { timeout } => prop_assert!(timeout > 0.0),
            FaultKind::DeviceLost | FaultKind::LaunchFailed => {}
            other => prop_assert!(false, "kernel drew {other:?}"),
        }
    }

    /// Two armed injectors over the same plan and device replay the
    /// identical fault sequence — and device loss is sticky: after the
    /// first `DeviceLost`, every subsequent operation fails with
    /// `DeviceLost` without advancing the schedule.
    #[test]
    fn injector_replay_is_deterministic_and_loss_is_sticky(
        seed in 0u64..u64::MAX,
        rate in 1u32..200_000,
        device in 0usize..8,
        ops in prop::collection::vec(prop_oneof![
            Just(OpClass::HostToDevice),
            Just(OpClass::Kernel),
            Just(OpClass::DeviceToHost),
        ], 1..200),
    ) {
        let spec = DeviceSpec::tesla_c2050();
        let plan = FaultPlan::new(seed, rate);
        let mut a = FaultInjector::new(plan, device);
        let mut b = FaultInjector::new(plan, device);
        a.arm();
        b.arm();
        let mut lost = false;
        for &class in &ops {
            let fa = a.check(class, &spec, 1e-5);
            let fb = b.check(class, &spec, 1e-5);
            prop_assert_eq!(fa.clone(), fb, "replay diverged");
            if lost {
                prop_assert!(
                    matches!(fa, Some(FaultError { kind: FaultKind::DeviceLost, .. })),
                    "a lost device must stay lost"
                );
            }
            if matches!(fa, Some(FaultError { kind: FaultKind::DeviceLost, .. })) {
                lost = true;
            }
        }
        prop_assert_eq!(a.is_lost(), lost);
    }

    #[test]
    fn timing_monotone_in_issue_cycles(c1 in 100u64..100_000, c2 in 100u64..100_000) {
        use polygpu_gpusim::timing::model_launch;
        let dev = device();
        let occ = polygpu_gpusim::occupancy::occupancy(&dev, 32, 1024, 24).unwrap();
        let cfg = LaunchConfig::new(28, 32);
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let make = |cycles: u64| Counters {
            warps: 28,
            issue_cycles: 28 * cycles,
            global_mem_ops: 28 * 10,
            global_bytes: 28 * 50 * 128,
            ..Default::default()
        };
        let t_lo = model_launch(&dev, cfg, occ, &make(lo));
        let t_hi = model_launch(&dev, cfg, occ, &make(hi));
        prop_assert!(t_hi.kernel_cycles >= t_lo.kernel_cycles);
    }
}
