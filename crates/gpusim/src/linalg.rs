//! Analytic kernel cost entries for batched on-device dense linear
//! algebra: LU with partial pivoting, modified Gram–Schmidt, and
//! back-substitution.
//!
//! Verschelde–Yu run the entire Newton step — evaluation, Jacobian,
//! factorization, back-substitution — on the device so the corrector
//! loop never round-trips over PCIe. These routines extend the
//! simulator's cost model to that regime. Unlike the evaluation
//! kernels, which are executed functionally through [`crate::exec`]
//! and costed from their warp traces, the factorization is modeled
//! *analytically*: the numeric work itself runs host-side through the
//! shared `polygpu_complex::lu` routine (so pivoting order — and every
//! endpoint — stays bit-identical to the host corrector), while these
//! entries charge the modeled kernel time of the equivalent batched
//! device launch.
//!
//! Geometry follows the batched small-matrix idiom sized for the
//! paper's 30–70-dimensional Jacobians: **one block per matrix** (one
//! path's Jacobian each), `n` threads rounded up to a warp multiple,
//! the active pivot column and scale factors staged in shared memory
//! while the trailing update streams from global memory.

use crate::device::DeviceSpec;
use crate::kernel::LaunchConfig;
use crate::occupancy::occupancy;
use crate::stats::Counters;
use crate::timing::{model_launch, LaunchTiming};

/// Modeled cost of one batched linear-algebra launch.
#[derive(Debug, Clone, Copy)]
pub struct LinalgCost {
    /// Timing from the analytic launch model.
    pub timing: LaunchTiming,
    /// Aggregated counters over the whole grid.
    pub counters: Counters,
    /// The launch geometry that was modeled (one block per matrix).
    pub cfg: LaunchConfig,
}

/// Registers per thread assumed for the factorization kernels — small
/// tiles of the trailing block held in registers.
const REGS_PER_THREAD: u32 = 32;

/// Real flops per complex multiply-add (4 mul + 4 add, the schoolbook
/// form every kernel of this workspace charges).
const FLOPS_PER_CMULADD: u64 = 8;

/// Real flops per complex division (the 11-op conjugate form).
const FLOPS_PER_CDIV: u64 = 11;

/// One block per matrix, one thread per row (rounded up to warps).
fn block_geometry(device: &DeviceSpec, n: usize, batch: usize) -> LaunchConfig {
    let warp = device.warp_size.max(1);
    let rows = (n.max(1)) as u32;
    let block_dim = rows
        .div_ceil(warp)
        .saturating_mul(warp)
        .clamp(warp, device.max_threads_per_block);
    LaunchConfig::new((batch.max(1)) as u32, block_dim)
}

fn model(
    device: &DeviceSpec,
    cfg: LaunchConfig,
    shared_elems: usize,
    elem_bytes: usize,
    flops_per_point: u64,
    global_elems_per_point: u64,
    shared_accesses_per_point: u64,
) -> LinalgCost {
    let occ = occupancy(
        device,
        cfg.block_dim,
        shared_elems * elem_bytes,
        REGS_PER_THREAD,
    )
    .expect("linalg block geometry fits the device limits");
    let batch = cfg.grid_dim as u64;
    let warps_per_block = cfg.block_dim.div_ceil(device.warp_size) as u64;
    let warps = batch * warps_per_block;
    let flops = batch * flops_per_point;
    let global_bytes = batch * global_elems_per_point * elem_bytes as u64;
    let global_transactions = global_bytes.div_ceil(128);
    // Warp-wide load/store instructions: element accesses over the
    // warp's lanes.
    let global_mem_ops = batch * global_elems_per_point.div_ceil(device.warp_size as u64);
    let shared = batch * shared_accesses_per_point;
    let counters = Counters {
        warp_instructions: flops.div_ceil(device.warp_size as u64),
        // FP64-equivalent work dominates issue; shared staging replays
        // add on top.
        issue_cycles: flops.div_ceil(warps_per_block.max(1) * device.warp_size as u64)
            * warps_per_block.max(1)
            + shared.div_ceil(device.warp_size as u64),
        global_mem_ops,
        global_transactions,
        global_bytes,
        shared_accesses: shared,
        flops,
        warps,
        ..Default::default()
    };
    LinalgCost {
        timing: model_launch(device, cfg, occ, &counters),
        counters,
        cfg,
    }
}

/// Batched LU factorization with partial pivoting of `batch` complex
/// `n × n` matrices of `elem_bytes`-byte elements (16 for `C64`, 32
/// for complex double-double): `n³/3` complex multiply-adds and `n²/2`
/// complex divisions per matrix, the panel staged through shared
/// memory, matrix read and factors written once through global memory.
pub fn lu_factor_cost(
    device: &DeviceSpec,
    n: usize,
    batch: usize,
    elem_bytes: usize,
) -> LinalgCost {
    let cfg = block_geometry(device, n, batch);
    let nf = n as u64;
    // Elimination muladds + pivot-column divisions + |·|² pivot scans.
    let flops =
        FLOPS_PER_CMULADD * nf * nf * nf / 3 + FLOPS_PER_CDIV * nf * nf / 2 + 3 * nf * nf / 2;
    // Matrix in, LU factors out; the trailing block is re-staged via
    // shared memory rather than re-read from DRAM.
    let global_elems = 2 * nf * nf;
    let shared = nf * nf * nf / 3;
    model(
        device,
        cfg,
        2 * n.max(1),
        elem_bytes,
        flops,
        global_elems,
        shared,
    )
}

/// Batched modified Gram–Schmidt (QR) of `batch` complex `n × n`
/// matrices — the orthogonalization alternative of Verschelde–Yu,
/// roughly `2n³` complex multiply-adds per matrix (about 3× the LU
/// elimination work, in exchange for better parallel smoothness). The
/// engine's device-resident corrector charges the LU entry so its
/// pivoting order matches the host path bit for bit; this entry exists
/// for cost-model comparisons.
pub fn mgs_factor_cost(
    device: &DeviceSpec,
    n: usize,
    batch: usize,
    elem_bytes: usize,
) -> LinalgCost {
    let cfg = block_geometry(device, n, batch);
    let nf = n as u64;
    // Projections and subtractions (2n³ cmuladds) + norms/scales.
    let flops = FLOPS_PER_CMULADD * 2 * nf * nf * nf + FLOPS_PER_CDIV * nf * nf;
    // A in, Q and R out.
    let global_elems = 3 * nf * nf;
    let shared = nf * nf * nf / 2;
    model(
        device,
        cfg,
        2 * n.max(1),
        elem_bytes,
        flops,
        global_elems,
        shared,
    )
}

/// Batched triangular solve (permuted forward substitution against
/// unit-L, back-substitution against U) of one right-hand side per
/// matrix: `n²` complex multiply-adds and `n` divisions per point,
/// factors streamed from global memory.
pub fn backsub_cost(device: &DeviceSpec, n: usize, batch: usize, elem_bytes: usize) -> LinalgCost {
    let cfg = block_geometry(device, n, batch);
    let nf = n as u64;
    let flops = FLOPS_PER_CMULADD * nf * nf + FLOPS_PER_CDIV * nf;
    // Factors read once, rhs in, solution out.
    let global_elems = nf * nf + 3 * nf;
    let shared = 2 * nf;
    model(
        device,
        cfg,
        2 * n.max(1),
        elem_bytes,
        flops,
        global_elems,
        shared,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::tesla_c2050()
    }

    #[test]
    fn factor_cost_grows_cubically() {
        let d = dev();
        // Saturate the device so the compute/bandwidth terms (which
        // scale with work) dominate rather than the flat latency floor.
        let small = lu_factor_cost(&d, 30, 4096, 16);
        let large = lu_factor_cost(&d, 60, 4096, 16);
        assert!(large.counters.flops > 7 * small.counters.flops);
        assert!(
            large.timing.kernel_seconds > 3.0 * small.timing.kernel_seconds,
            "n=60 {:e} vs n=30 {:e}",
            large.timing.kernel_seconds,
            small.timing.kernel_seconds
        );
    }

    #[test]
    fn backsub_is_cheaper_than_factor() {
        let d = dev();
        for n in [30usize, 50, 70] {
            let f = lu_factor_cost(&d, n, 4096, 16);
            let b = backsub_cost(&d, n, 4096, 16);
            // O(n³) vs O(n²) arithmetic…
            assert!(b.counters.flops * 5 < f.counters.flops, "n={n}");
            // …but with one warp per 30-dim matrix both launches sit
            // near the memory-latency floor, so the wall-clock gap is
            // narrower than the flop ratio (back-substitution stays
            // comparatively expensive on the device, as the paper
            // observes).
            assert!(
                b.timing.kernel_seconds < 0.75 * f.timing.kernel_seconds,
                "n={n}: backsub {:e} vs factor {:e}",
                b.timing.kernel_seconds,
                f.timing.kernel_seconds
            );
        }
    }

    #[test]
    fn mgs_costs_more_than_lu() {
        let d = dev();
        let lu = lu_factor_cost(&d, 48, 1024, 16);
        let mgs = mgs_factor_cost(&d, 48, 1024, 16);
        assert!(mgs.counters.flops > 2 * lu.counters.flops);
        assert!(mgs.timing.kernel_seconds > lu.timing.kernel_seconds);
    }

    #[test]
    fn batch_scales_in_waves() {
        let d = dev();
        let one = lu_factor_cost(&d, 40, 256, 16);
        let four = lu_factor_cost(&d, 40, 1024, 16);
        assert!(four.timing.waves >= one.timing.waves);
        assert!(
            four.timing.kernel_seconds > 2.0 * one.timing.kernel_seconds,
            "4x batch {:e} vs {:e}",
            four.timing.kernel_seconds,
            one.timing.kernel_seconds
        );
        // Per-point cost must not explode: batching amortizes.
        assert!(four.timing.kernel_seconds < 8.0 * one.timing.kernel_seconds);
    }

    #[test]
    fn dd_elements_cost_more_bandwidth() {
        let d = dev();
        let f64_cost = lu_factor_cost(&d, 40, 512, 16);
        let dd_cost = lu_factor_cost(&d, 40, 512, 32);
        assert_eq!(
            dd_cost.counters.global_bytes,
            2 * f64_cost.counters.global_bytes
        );
        assert!(dd_cost.timing.kernel_seconds >= f64_cost.timing.kernel_seconds);
    }

    #[test]
    fn one_block_per_matrix_geometry() {
        let d = dev();
        let c = lu_factor_cost(&d, 33, 100, 16);
        assert_eq!(c.cfg.grid_dim, 100);
        assert_eq!(c.cfg.block_dim % d.warp_size, 0);
        assert!(c.cfg.block_dim >= 33);
        // Deterministic: same inputs, same model.
        let c2 = lu_factor_cost(&d, 33, 100, 16);
        assert_eq!(c.timing, c2.timing);
        assert_eq!(c.counters, c2.counters);
    }
}
