//! Bridging modeled [`stream::Timeline`](crate::stream::Timeline)s
//! into observability spans.
//!
//! The timeline already *is* a trace — every scheduled op carries its
//! modeled start/finish on one engine — so exporting it is a pure
//! mapping: fixed engines become the device's H2D/compute/D2H lanes,
//! custom engine slots (per-source egress legs of a cross-device
//! gather) become gather spans. No host clocks are consulted anywhere,
//! which is what keeps exported traces byte-identical across runs of
//! the same seed.

use crate::stream::{Engine, Timeline};
use polygpu_obs::{Lane, MetaValue, SpanKind, TraceSink};

/// Emit one span per scheduled op of a device pipeline timeline,
/// offset by `base` seconds on the sink's local clock. Ops map as
/// CopyIn → upload (H2D lane), Compute → launch (compute lane),
/// CopyOut → download (D2H lane); custom slots map to gather spans.
pub fn emit_timeline(sink: &TraceSink, tl: &Timeline, base: f64, depth: u8) {
    if !sink.enabled() {
        return;
    }
    for (i, op) in tl.ops().iter().enumerate() {
        let (lane, kind) = match op.engine {
            Some(Engine::CopyIn) => (Lane::H2D, SpanKind::Upload),
            Some(Engine::Compute) => (Lane::Compute, SpanKind::Launch),
            Some(Engine::CopyOut) => (Lane::D2H, SpanKind::Download),
            None => (Lane::D2H, SpanKind::Gather),
        };
        sink.lane(lane).emit(
            kind,
            base + op.start,
            op.finish - op.start,
            depth,
            &[("op", MetaValue::U64(i as u64))],
        );
    }
}

/// Emit a cross-device gather timeline (see
/// [`gather_timeline`](crate::stream::gather_timeline)): every op —
/// per-source egress on custom slots *and* the serialized root ingress
/// on the CopyIn engine — becomes a gather span, egress on the D2H
/// lane, ingress on the H2D lane.
pub fn emit_gather_timeline(sink: &TraceSink, tl: &Timeline, base: f64, depth: u8) {
    if !sink.enabled() {
        return;
    }
    for (i, op) in tl.ops().iter().enumerate() {
        let lane = match op.engine {
            Some(Engine::CopyIn) => Lane::H2D,
            _ => Lane::D2H,
        };
        sink.lane(lane).emit(
            SpanKind::Gather,
            base + op.start,
            op.finish - op.start,
            depth,
            &[("op", MetaValue::U64(i as u64))],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{gather_timeline, pipeline_timeline};
    use polygpu_obs::{CollectingTracer, Track};
    use std::sync::Arc;

    #[test]
    fn pipeline_ops_land_on_their_lanes() {
        let tl = pipeline_timeline(&[1.0, 1.0], &[2.0, 2.0], &[0.5, 0.5], 2);
        let tracer = Arc::new(CollectingTracer::new());
        let sink = TraceSink::new(tracer.clone()).on(Track::Device(3));
        emit_timeline(&sink, &tl, 10.0, 4);
        let spans = tracer.spans();
        assert_eq!(spans.len(), tl.ops().len());
        let uploads: Vec<_> = spans
            .iter()
            .filter(|s| s.track == Track::DeviceLane(3, Lane::H2D))
            .collect();
        assert_eq!(uploads.len(), 2);
        assert_eq!(uploads[0].kind, SpanKind::Upload);
        assert_eq!(uploads[0].start, 10.0);
        // Total span time equals the timeline's busy seconds.
        let total: f64 = spans.iter().map(|s| s.dur).sum();
        assert!((total - tl.busy_seconds()).abs() < 1e-12);
    }

    #[test]
    fn gather_ops_are_all_gather_spans() {
        let tl = gather_timeline(&[(2.0, 1.0), (2.0, 1.0)]);
        let tracer = Arc::new(CollectingTracer::new());
        let sink = TraceSink::new(tracer.clone()).on(Track::Device(0));
        emit_gather_timeline(&sink, &tl, 0.0, 4);
        let spans = tracer.spans();
        assert_eq!(spans.len(), 4);
        assert!(spans.iter().all(|s| s.kind == SpanKind::Gather));
    }

    #[test]
    fn disabled_sink_emits_nothing() {
        let tl = pipeline_timeline(&[1.0], &[1.0], &[1.0], 1);
        emit_timeline(&TraceSink::noop(), &tl, 0.0, 0);
        emit_gather_timeline(&TraceSink::noop(), &tl, 0.0, 0);
    }
}
