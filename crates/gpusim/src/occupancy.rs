//! Occupancy: how many blocks of a kernel fit on one SM at once.
//!
//! Mirrors the CUDA occupancy calculator for compute capability 2.0:
//! the resident-block count is limited by the hardware block slots, the
//! thread slots, the shared-memory budget and the register file. The
//! paper's §3.2 reasons through exactly this arithmetic for its choice
//! of 32-thread blocks and its double-double feasibility analysis.

use crate::device::DeviceSpec;

/// Occupancy of one kernel configuration on one SM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Blocks resident on one SM at a time.
    pub blocks_per_sm: u32,
    /// Warps resident on one SM at a time.
    pub warps_per_sm: u32,
    /// Fraction of the SM's maximum resident warps.
    pub ratio: f64,
    /// Which resource bound the result (for reports).
    pub limiter: Limiter,
}

/// The resource limiting occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    BlockSlots,
    ThreadSlots,
    SharedMemory,
    Registers,
}

/// Compute occupancy for a block of `block_dim` threads using
/// `shared_bytes` of shared memory and `regs_per_thread` registers.
///
/// Returns `None` if a single block already exceeds a per-SM resource
/// (launch would fail on hardware).
pub fn occupancy(
    device: &DeviceSpec,
    block_dim: u32,
    shared_bytes: usize,
    regs_per_thread: u32,
) -> Option<Occupancy> {
    if block_dim == 0 || block_dim > device.max_threads_per_block {
        return None;
    }
    let by_blocks = device.max_blocks_per_sm;
    let by_threads = device.max_threads_per_sm / block_dim;
    let by_shared = device
        .shared_mem_per_sm
        .checked_div(shared_bytes)
        .map_or(u32::MAX, |b| b as u32);
    let regs_per_block = regs_per_thread * block_dim;
    let by_regs = device
        .registers_per_sm
        .checked_div(regs_per_block)
        .unwrap_or(u32::MAX);
    let blocks = by_blocks.min(by_threads).min(by_shared).min(by_regs);
    if blocks == 0 {
        return None;
    }
    let limiter = if blocks == by_blocks {
        Limiter::BlockSlots
    } else if blocks == by_threads {
        Limiter::ThreadSlots
    } else if blocks == by_shared {
        Limiter::SharedMemory
    } else {
        Limiter::Registers
    };
    let warps_per_block = block_dim.div_ceil(device.warp_size);
    let warps = blocks * warps_per_block;
    let max_warps = device.max_threads_per_sm / device.warp_size;
    Some(Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm: warps,
        ratio: warps as f64 / max_warps as f64,
        limiter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c2050() -> DeviceSpec {
        DeviceSpec::tesla_c2050()
    }

    #[test]
    fn small_blocks_limited_by_block_slots() {
        // 32-thread blocks with tiny shared memory: Fermi's 8-block cap.
        let o = occupancy(&c2050(), 32, 256, 16).unwrap();
        assert_eq!(o.blocks_per_sm, 8);
        assert_eq!(o.limiter, Limiter::BlockSlots);
        assert_eq!(o.warps_per_sm, 8);
        assert!((o.ratio - 8.0 / 48.0).abs() < 1e-12);
    }

    #[test]
    fn shared_memory_limits_kernel2_paper_budget() {
        // Paper §3.2: kernel 2 with n=32, k=16, B=32 complex doubles:
        // B*(k+1) locations + n variables = 32*17+32 = 576 elements
        // * 16 bytes = 9216 bytes -> floor(49152/9216) = 5 blocks.
        let o = occupancy(&c2050(), 32, 9216, 24).unwrap();
        assert_eq!(o.blocks_per_sm, 5);
        assert_eq!(o.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn double_double_halves_occupancy() {
        // Same kernel in complex double-double: 576 * 32 = 18432 bytes
        // -> 2 blocks. The paper's feasibility analysis (dim up to 70).
        let o = occupancy(&c2050(), 32, 18_432, 24).unwrap();
        assert_eq!(o.blocks_per_sm, 2);
    }

    #[test]
    fn paper_dim70_dd_fits() {
        // §3.2: n=70, k=35, B=32 in complex double-double:
        // B*(k+1)*32 + n*32 = 32*36*32 + 70*32 = 36,864 + 2,240 bytes.
        let bytes = 32 * 36 * 32 + 70 * 32;
        assert_eq!(bytes, 39_104);
        let o = occupancy(&c2050(), 32, bytes, 24).unwrap();
        assert_eq!(o.blocks_per_sm, 1, "fits, one block at a time");
    }

    #[test]
    fn oversized_single_block_fails() {
        assert!(occupancy(&c2050(), 32, 50_000, 24).is_none());
        assert!(occupancy(&c2050(), 2048, 0, 24).is_none());
        assert!(occupancy(&c2050(), 0, 0, 24).is_none());
    }

    #[test]
    fn thread_slots_limit_large_blocks() {
        // 1024-thread blocks: 1536/1024 = 1 block.
        let o = occupancy(&c2050(), 1024, 0, 16).unwrap();
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.limiter, Limiter::ThreadSlots);
        assert_eq!(o.warps_per_sm, 32);
    }

    #[test]
    fn registers_can_limit() {
        // 63 regs/thread, 256-thread blocks: 32768/(63*256) = 2 blocks,
        // while threads would allow 6 and blocks 8.
        let o = occupancy(&c2050(), 256, 0, 63).unwrap();
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, Limiter::Registers);
    }
}
