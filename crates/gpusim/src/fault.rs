//! Deterministic fault injection for the modeled device fleet.
//!
//! Real multi-GPU runs — the multi-hour dd/qd Newton workloads of the
//! paper's follow-ups — see devices drop off the bus, ECC flag
//! corrupted PCIe transfers, and kernels fail or hang at launch. This
//! module models those events **deterministically**: a [`FaultPlan`] is
//! a pure function of `(seed, device, op-index)`, so any chaos run is
//! exactly replayable — same seed, same schedule, byte for byte —
//! independent of host thread timing, wall clocks or RNG state.
//!
//! Injection sits at the modeled operation boundaries (uploads, kernel
//! launches, downloads). A struck operation does not complete: the
//! evaluator charges the modeled **detection latency** (how long until
//! the driver notices — a hang costs its watchdog timeout, an ECC error
//! the transfer plus a round trip) to the wall clock and surfaces a
//! typed [`FaultError`]. Faults cost time, never correctness.
//!
//! ```
//! use polygpu_gpusim::fault::{FaultPlan, OpClass};
//!
//! let plan = FaultPlan::new(7, 200_000); // 20% of ops fault
//! // The schedule is a pure function: replays are identical.
//! for op in 0..64 {
//!     assert_eq!(
//!         plan.fault_at(0, op, OpClass::Kernel),
//!         plan.fault_at(0, op, OpClass::Kernel),
//!     );
//! }
//! ```

use crate::device::DeviceSpec;
use std::fmt;

/// The taxonomy of injected faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The device fell off the bus. **Sticky**: every later operation
    /// on the same device fails immediately until the fleet fails the
    /// device over.
    DeviceLost,
    /// An ECC-style *detected* transfer error: the data is known-bad,
    /// never silently consumed.
    TransferCorrupt,
    /// The driver rejected the kernel launch (transient).
    LaunchFailed,
    /// The kernel hung; the watchdog kills it after `timeout` modeled
    /// seconds — all charged to the wall clock.
    LaunchHang { timeout: f64 },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::DeviceLost => write!(f, "device lost"),
            FaultKind::TransferCorrupt => write!(f, "transfer corrupted (ECC)"),
            FaultKind::LaunchFailed => write!(f, "kernel launch failed"),
            FaultKind::LaunchHang { timeout } => {
                write!(f, "kernel hang (watchdog after {timeout:.1e} s)")
            }
        }
    }
}

/// The class of modeled operation a fault strikes. Transfers can lose
/// the device or corrupt data; kernel launches can lose the device,
/// fail, or hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    HostToDevice,
    Kernel,
    DeviceToHost,
}

/// splitmix64 — the avalanche permutation behind the schedule hash.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded fault schedule: whether operation `op` on device `device`
/// faults — and how — is a **pure function** of `(seed, device, op)`.
/// No clocks, no RNG state: replaying a plan reproduces the exact same
/// fault sequence, which is what makes the bit-identity-under-faults
/// invariant testable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Schedule seed.
    pub seed: u64,
    /// Per-operation fault probability in parts per million
    /// (`1_000_000` faults every op, `0` disables injection).
    pub rate_ppm: u32,
}

impl FaultPlan {
    pub fn new(seed: u64, rate_ppm: u32) -> Self {
        FaultPlan { seed, rate_ppm }
    }

    /// The fault (if any) striking operation `op` on `device`. The
    /// *whether* depends only on `(seed, device, op)`; the *kind* is
    /// drawn from the class-legal subset of the taxonomy, so e.g. a
    /// transfer never "hangs at launch".
    pub fn fault_at(&self, device: usize, op: u64, class: OpClass) -> Option<FaultKind> {
        if self.rate_ppm == 0 {
            return None;
        }
        let h = splitmix64(
            self.seed
                ^ splitmix64(device as u64 ^ 0xD1B5_4A32_D192_ED03)
                ^ splitmix64(op ^ 0x8CB9_2BA7_2F3D_8DD7),
        );
        if h % 1_000_000 >= u64::from(self.rate_ppm) {
            return None;
        }
        let selector = (h >> 32) % 8;
        Some(match class {
            // Device loss is the rarest event (1 in 8 faults).
            OpClass::HostToDevice | OpClass::DeviceToHost => {
                if selector == 0 {
                    FaultKind::DeviceLost
                } else {
                    FaultKind::TransferCorrupt
                }
            }
            OpClass::Kernel => match selector {
                0 => FaultKind::DeviceLost,
                1..=4 => FaultKind::LaunchFailed,
                _ => FaultKind::LaunchHang {
                    timeout: (1.0 + ((h >> 40) % 8) as f64) * 1e-3,
                },
            },
        })
    }
}

/// A modeled operation was struck by an injected fault. Carries the
/// honestly modeled **detection latency** — the wall-clock seconds
/// between issuing the operation and the driver reporting the failure —
/// which the evaluator charges before surfacing this error.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultError {
    /// Fleet index of the struck device.
    pub device: usize,
    /// The device-local operation index the plan struck.
    pub op_index: u64,
    pub kind: FaultKind,
    /// Modeled seconds until the fault was detected.
    pub detection_seconds: f64,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected fault on device {} at op {}: {} (detected after {:.1e} s)",
            self.device, self.op_index, self.kind, self.detection_seconds
        )
    }
}

impl std::error::Error for FaultError {}

/// Per-device injection state: the plan, a monotone operation counter,
/// and the sticky lost flag. Starts **disarmed** so construction-time
/// validation probes (which the engines run before any user work) never
/// fault — and disarmed operations do not advance the counter, so the
/// schedule seen by user work is independent of how many probes
/// construction ran.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    device: usize,
    op: u64,
    lost: bool,
    armed: bool,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan, device: usize) -> Self {
        FaultInjector {
            plan,
            device,
            op: 0,
            lost: false,
            armed: false,
        }
    }

    /// Enable injection (engines call this after their validation
    /// probe).
    pub fn arm(&mut self) {
        self.armed = true;
    }

    /// Disable injection (operations stop advancing the schedule).
    pub fn disarm(&mut self) {
        self.armed = false;
    }

    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Fleet index this injector's schedule is keyed on.
    pub fn device(&self) -> usize {
        self.device
    }

    /// Whether a sticky [`FaultKind::DeviceLost`] has fired.
    pub fn is_lost(&self) -> bool {
        self.lost
    }

    /// Consult the schedule for the next operation of `class`, whose
    /// successful execution would take `op_seconds` modeled seconds.
    /// Returns the fault (with its detection latency priced against
    /// `spec`) or `None` when the operation proceeds normally.
    pub fn check(
        &mut self,
        class: OpClass,
        spec: &DeviceSpec,
        op_seconds: f64,
    ) -> Option<FaultError> {
        if !self.armed {
            return None;
        }
        if self.lost {
            // A lost device fails every operation instantly — the
            // driver already knows; only a command-queue round trip is
            // charged.
            return Some(FaultError {
                device: self.device,
                op_index: self.op,
                kind: FaultKind::DeviceLost,
                detection_seconds: spec.pcie_latency,
            });
        }
        let op_index = self.op;
        self.op += 1;
        let kind = self.plan.fault_at(self.device, op_index, class)?;
        if matches!(kind, FaultKind::DeviceLost) {
            self.lost = true;
        }
        let detection_seconds = match kind {
            // The op runs to its (doomed) end, then teardown + bus
            // re-probe round trips confirm the device is gone.
            FaultKind::DeviceLost => op_seconds + 4.0 * spec.pcie_latency,
            // ECC reports at transfer completion, plus one round trip.
            FaultKind::TransferCorrupt => op_seconds + spec.pcie_latency,
            // The driver rejects at submission.
            FaultKind::LaunchFailed => spec.launch_overhead,
            // The watchdog waits out the full timeout.
            FaultKind::LaunchHang { timeout } => timeout,
        };
        Some(FaultError {
            device: self.device,
            op_index,
            kind,
            detection_seconds,
        })
    }
}

/// Fault/recovery accounting, accumulated wherever faults are handled
/// (engine, fleet, scheduler) and surfaced through `PipelineStats`,
/// `ClusterStats` and the solver's `FaultReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultStats {
    /// Injected faults observed.
    pub faults: u64,
    /// Retry attempts issued by recovery.
    pub retries: u64,
    /// Shards/loads re-planned onto surviving devices.
    pub failovers: u64,
    /// Modeled wall-clock seconds spent on detection, backoff and
    /// recovery re-execution.
    pub recovery_seconds: f64,
}

impl FaultStats {
    pub fn merge(&mut self, other: &FaultStats) {
        self.faults += other.faults;
        self.retries += other.retries;
        self.failovers += other.failovers;
        self.recovery_seconds += other.recovery_seconds;
    }

    /// Share of `wall_seconds` spent detecting and recovering from
    /// faults (0 when no wall clock accumulated).
    pub fn recovery_share(&self, wall_seconds: f64) -> f64 {
        if wall_seconds > 0.0 {
            (self.recovery_seconds / wall_seconds).min(1.0)
        } else {
            0.0
        }
    }

    /// Record these stats into a metrics registry under `prefix`.
    pub fn record_metrics(&self, reg: &mut polygpu_obs::MetricsRegistry, prefix: &str) {
        reg.counter(&format!("{prefix}.faults"), self.faults);
        reg.counter(&format!("{prefix}.retries"), self.retries);
        reg.counter(&format!("{prefix}.failovers"), self.failovers);
        reg.gauge(&format!("{prefix}.recovery_seconds"), self.recovery_seconds);
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  faults                {:>12}", self.faults)?;
        writeln!(f, "  retries               {:>12}", self.retries)?;
        writeln!(f, "  failovers             {:>12}", self.failovers)?;
        write!(
            f,
            "  recovery seconds      {:>12.3e}",
            self.recovery_seconds
        )
    }
}

/// How a fleet (or scheduler) recovers from injected faults: retry the
/// struck work with exponential backoff in **modeled** time, then fail
/// over, then — when permitted — fall back to the bit-identical CPU
/// reference. All knobs are deterministic; there is no jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Retries per struck shard/round before failover (0 = fail over
    /// immediately).
    pub max_retries: u32,
    /// Backoff before the first retry, modeled seconds.
    pub backoff_base: f64,
    /// Multiplier applied per subsequent retry.
    pub backoff_factor: f64,
    /// Permit the final degradation rung: evaluate on the CPU
    /// reference (bit-identical, but unaccelerated) when every device
    /// path is exhausted. When `false` the fleet returns a typed
    /// `DegradedFleet` error instead.
    pub cpu_fallback: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            backoff_base: 1e-4,
            backoff_factor: 2.0,
            cpu_fallback: false,
        }
    }
}

impl RecoveryPolicy {
    /// No retries, no fallback: every fault propagates immediately.
    pub fn none() -> Self {
        RecoveryPolicy {
            max_retries: 0,
            backoff_base: 0.0,
            backoff_factor: 1.0,
            cpu_fallback: false,
        }
    }

    /// Modeled backoff before retry number `attempt` (0-based).
    pub fn backoff_seconds(&self, attempt: u32) -> f64 {
        self.backoff_base * self.backoff_factor.powi(attempt as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_a_pure_function() {
        let plan = FaultPlan::new(42, 300_000);
        for device in 0..4 {
            for op in 0..256 {
                for class in [
                    OpClass::HostToDevice,
                    OpClass::Kernel,
                    OpClass::DeviceToHost,
                ] {
                    assert_eq!(
                        plan.fault_at(device, op, class),
                        plan.fault_at(device, op, class),
                    );
                }
            }
        }
    }

    #[test]
    fn devices_get_independent_schedules() {
        let plan = FaultPlan::new(7, 500_000);
        let a: Vec<_> = (0..128)
            .map(|op| plan.fault_at(0, op, OpClass::Kernel))
            .collect();
        let b: Vec<_> = (0..128)
            .map(|op| plan.fault_at(1, op, OpClass::Kernel))
            .collect();
        assert_ne!(a, b, "device schedules must decorrelate");
    }

    #[test]
    fn rate_controls_density() {
        let none = FaultPlan::new(3, 0);
        let all = FaultPlan::new(3, 1_000_000);
        for op in 0..64 {
            assert_eq!(none.fault_at(0, op, OpClass::Kernel), None);
            assert!(all.fault_at(0, op, OpClass::Kernel).is_some());
        }
        let some = FaultPlan::new(3, 100_000);
        let hits = (0..1000)
            .filter(|&op| some.fault_at(0, op, OpClass::Kernel).is_some())
            .count();
        assert!(
            (50..250).contains(&hits),
            "10% rate wildly off: {hits}/1000"
        );
    }

    #[test]
    fn classes_restrict_kinds() {
        let plan = FaultPlan::new(11, 1_000_000);
        for op in 0..256 {
            match plan.fault_at(2, op, OpClass::HostToDevice) {
                Some(FaultKind::DeviceLost | FaultKind::TransferCorrupt) => {}
                other => panic!("transfer op produced {other:?}"),
            }
            match plan.fault_at(2, op, OpClass::Kernel) {
                Some(
                    FaultKind::DeviceLost | FaultKind::LaunchFailed | FaultKind::LaunchHang { .. },
                ) => {}
                other => panic!("kernel op produced {other:?}"),
            }
        }
    }

    #[test]
    fn injector_is_sticky_after_device_loss() {
        let spec = DeviceSpec::tesla_c2050();
        let plan = FaultPlan::new(1, 1_000_000);
        let mut inj = FaultInjector::new(plan, 0);
        inj.arm();
        // Walk until the first DeviceLost...
        let mut lost_at = None;
        for op in 0..64u64 {
            let fe = inj
                .check(OpClass::Kernel, &spec, 1e-5)
                .expect("rate 100% must fault");
            if matches!(fe.kind, FaultKind::DeviceLost) {
                lost_at = Some(op);
                break;
            }
        }
        let lost_at = lost_at.expect("a 100% plan hits DeviceLost eventually");
        assert!(inj.is_lost());
        // ...after which every op fails instantly as DeviceLost.
        for _ in 0..8 {
            let fe = inj.check(OpClass::HostToDevice, &spec, 1e-5).unwrap();
            assert_eq!(fe.kind, FaultKind::DeviceLost);
            assert_eq!(fe.detection_seconds, spec.pcie_latency);
        }
        assert!(lost_at < 64);
    }

    #[test]
    fn disarmed_ops_neither_fault_nor_advance() {
        let spec = DeviceSpec::tesla_c2050();
        let plan = FaultPlan::new(5, 1_000_000);
        let mut probed = FaultInjector::new(plan, 0);
        // Construction probes: disarmed, no schedule consumed.
        for _ in 0..10 {
            assert!(probed.check(OpClass::Kernel, &spec, 1e-5).is_none());
        }
        probed.arm();
        let mut fresh = FaultInjector::new(plan, 0);
        fresh.arm();
        // Both see the identical post-arm schedule.
        for _ in 0..16 {
            assert_eq!(
                probed.check(OpClass::Kernel, &spec, 1e-5).map(|f| f.kind),
                fresh.check(OpClass::Kernel, &spec, 1e-5).map(|f| f.kind),
            );
        }
    }

    #[test]
    fn detection_latency_is_honest() {
        let spec = DeviceSpec::tesla_c2050();
        let plan = FaultPlan::new(9, 1_000_000);
        let mut inj = FaultInjector::new(plan, 1);
        inj.arm();
        for _ in 0..64 {
            if inj.is_lost() {
                break;
            }
            let op_seconds = 3e-4;
            if let Some(fe) = inj.check(OpClass::Kernel, &spec, op_seconds) {
                match fe.kind {
                    FaultKind::DeviceLost => {
                        assert_eq!(fe.detection_seconds, op_seconds + 4.0 * spec.pcie_latency)
                    }
                    FaultKind::TransferCorrupt => {
                        assert_eq!(fe.detection_seconds, op_seconds + spec.pcie_latency)
                    }
                    FaultKind::LaunchFailed => {
                        assert_eq!(fe.detection_seconds, spec.launch_overhead)
                    }
                    FaultKind::LaunchHang { timeout } => {
                        assert_eq!(fe.detection_seconds, timeout);
                        assert!(timeout > 0.0);
                    }
                }
                assert!(fe.detection_seconds > 0.0);
            }
        }
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.backoff_seconds(0), p.backoff_base);
        assert_eq!(p.backoff_seconds(2), p.backoff_base * 4.0);
        assert_eq!(RecoveryPolicy::none().backoff_seconds(5), 0.0);
    }

    #[test]
    fn stats_merge_and_share() {
        let mut a = FaultStats {
            faults: 2,
            retries: 3,
            failovers: 1,
            recovery_seconds: 0.5,
        };
        let b = FaultStats {
            faults: 1,
            retries: 0,
            failovers: 0,
            recovery_seconds: 0.25,
        };
        a.merge(&b);
        assert_eq!(a.faults, 3);
        assert_eq!(a.retries, 3);
        assert_eq!(a.failovers, 1);
        assert_eq!(a.recovery_seconds, 0.75);
        assert!((a.recovery_share(3.0) - 0.25).abs() < 1e-15);
        assert_eq!(FaultStats::default().recovery_share(0.0), 0.0);
    }
}
