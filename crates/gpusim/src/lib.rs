//! # polygpu-gpusim — a trace-based SIMT GPU simulator
//!
//! The hardware substitution of this reproduction: the paper ran its
//! kernels on a physical NVIDIA Tesla C2050; this crate provides a
//! functionally exact, performance-modeled stand-in.
//!
//! * **Functional**: kernels are Rust closures over a
//!   [`kernel::ThreadCtx`]; they produce real numeric results
//!   (validated against CPU references bit for bit in double).
//! * **Performance-modeled**: every traced memory access and arithmetic
//!   op is replayed warp-wide ([`analysis`]) — coalescing into 128-byte
//!   transactions, shared-memory bank conflicts, constant-memory
//!   broadcast, divergence detection — and fed to an analytic
//!   latency/throughput/bandwidth model ([`timing`]) with the Fermi
//!   figures of the paper's card ([`device::DeviceSpec::tesla_c2050`]).
//!
//! The simulator executes blocks in parallel on the host with rayon;
//! blocks are independent within a launch (as on the device), writes
//! are buffered and applied post-launch, and cross-block write
//! conflicts are detected and reported instead of being silent UB.
//!
//! ```
//! use polygpu_gpusim::prelude::*;
//! use polygpu_complex::C64;
//!
//! struct Doubler { buf: BufferId, n: usize }
//! impl Kernel<C64> for Doubler {
//!     fn name(&self) -> &str { "doubler" }
//!     fn shared_elems(&self, _b: u32) -> usize { 0 }
//!     fn run_block(&self, blk: &mut BlockCtx<'_, C64>) {
//!         let (buf, n) = (self.buf, self.n);
//!         blk.threads(|t| {
//!             let i = t.global_tid() as usize;
//!             if i < n {
//!                 let v = t.gload(buf, i);
//!                 let d = t.add(v, v);
//!                 t.gstore(buf, i, d);
//!             }
//!         });
//!     }
//! }
//!
//! let device = DeviceSpec::tesla_c2050();
//! let mut global = GlobalMem::new();
//! let buf = global.alloc(64);
//! global.host_write(buf, 0, &vec![C64::from_f64(1.5, -2.0); 64]);
//! let constant = ConstantMemory::new(&device);
//! let report = launch(
//!     &device,
//!     &Doubler { buf, n: 64 },
//!     LaunchConfig::cover(64, 32),
//!     &mut global,
//!     &constant,
//!     LaunchOptions::default(),
//! ).unwrap();
//! assert_eq!(global.host_read(buf)[7], C64::from_f64(3.0, -4.0));
//! assert_eq!(report.counters.divergent_segments, 0);
//! ```

pub mod analysis;
pub mod device;
pub mod exec;
pub mod fault;
pub mod kernel;
pub mod linalg;
pub mod mem;
pub mod obs;
pub mod occupancy;
pub mod stats;
pub mod stream;
pub mod timing;
pub mod trace;
pub mod value;

/// The commonly-needed surface in one import.
pub mod prelude {
    pub use crate::device::DeviceSpec;
    pub use crate::exec::{launch, LaunchError, LaunchOptions, LaunchReport};
    pub use crate::fault::{
        FaultError, FaultInjector, FaultKind, FaultPlan, FaultStats, OpClass, RecoveryPolicy,
    };
    pub use crate::kernel::{BlockCtx, Kernel, LaunchConfig, ThreadCtx};
    pub use crate::linalg::{backsub_cost, lu_factor_cost, mgs_factor_cost, LinalgCost};
    pub use crate::mem::{BufferId, ConstId, ConstantMemory, ConstantOverflow, GlobalMem};
    pub use crate::obs::{emit_gather_timeline, emit_timeline};
    pub use crate::occupancy::{occupancy, Limiter, Occupancy};
    pub use crate::stats::Counters;
    pub use crate::stream::{
        gather_timeline, pipeline_timeline, transfer_legs, Engine, Event, Stream, Timeline,
        TransferPath,
    };
    pub use crate::timing::{transfer_seconds, Bound, LaunchTiming};
    pub use crate::value::DeviceValue;
}

pub use prelude::*;
