//! Modeled streams and events: concurrent copy/compute scheduling.
//!
//! The original cost model charges every batch `H2D + kernels + D2H` as
//! a straight **sum** — as if the device had a single serial queue. Real
//! Fermi-class hardware (the paper's Tesla C2050 has two copy engines
//! plus the compute engine) overlaps transfers with kernel execution
//! when work is issued on independent *streams*: while chunk `c` is
//! being computed, chunk `c+1` uploads and chunk `c−1` downloads.
//!
//! This module models exactly that, without touching functional
//! execution: a [`Timeline`] schedules abstract operations on the three
//! engines of one device, honoring
//!
//! * **engine serialization** — each engine runs one op at a time;
//! * **stream ordering** — ops on the same [`Stream`] run in issue
//!   order;
//! * **events** — an op can be made to wait on an [`Event`] recorded
//!   after any earlier op (cross-stream dependencies, e.g. "compute of
//!   chunk `c` waits for its upload" or "upload of chunk `c+2` waits
//!   until the double buffer is free").
//!
//! The modeled wall clock is the makespan over all ops; the difference
//! against the serialized sum is the **overlap saving** the batched
//! pipeline reports.

/// The three engines of one modeled device. The C2050's dual copy
/// engines mean host-to-device and device-to-host transfers use
/// *different* engines and can themselves overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Host → device DMA engine.
    CopyIn,
    /// Kernel execution engine.
    Compute,
    /// Device → host DMA engine.
    CopyOut,
}

/// An in-order queue of operations; ops on different streams may
/// overlap (subject to engine availability and event waits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stream(usize);

/// A completion timestamp recorded after an op; other streams can wait
/// on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event(usize);

/// One scheduled operation (for inspection and tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledOp {
    pub engine: Engine,
    pub stream: Stream,
    pub start: f64,
    pub finish: f64,
}

/// The modeled stream/event timeline of one device.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Next-free time of each engine: [CopyIn, Compute, CopyOut].
    engine_free: [f64; 3],
    /// Per-stream cursor: finish time of the stream's last op.
    streams: Vec<f64>,
    /// Recorded event timestamps.
    events: Vec<f64>,
    ops: Vec<ScheduledOp>,
    /// Sum of all op durations — what the serial model would charge.
    busy: f64,
}

fn engine_index(e: Engine) -> usize {
    match e {
        Engine::CopyIn => 0,
        Engine::Compute => 1,
        Engine::CopyOut => 2,
    }
}

impl Timeline {
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Open a new stream (its first op may start at `t = 0`).
    pub fn stream(&mut self) -> Stream {
        self.streams.push(0.0);
        Stream(self.streams.len() - 1)
    }

    /// Schedule an op of `seconds` on `engine` in `stream`, after the
    /// given `waits` events. Returns an [`Event`] that fires at the
    /// op's completion.
    pub fn enqueue(
        &mut self,
        stream: Stream,
        engine: Engine,
        seconds: f64,
        waits: &[Event],
    ) -> Event {
        assert!(seconds >= 0.0, "op duration must be non-negative");
        let e = engine_index(engine);
        let mut start = self.streams[stream.0].max(self.engine_free[e]);
        for w in waits {
            start = start.max(self.events[w.0]);
        }
        let finish = start + seconds;
        self.streams[stream.0] = finish;
        self.engine_free[e] = finish;
        self.busy += seconds;
        self.ops.push(ScheduledOp {
            engine,
            stream,
            start,
            finish,
        });
        self.events.push(finish);
        Event(self.events.len() - 1)
    }

    /// Makespan: the completion time of the last op (0 when empty).
    pub fn elapsed_seconds(&self) -> f64 {
        self.ops.iter().map(|o| o.finish).fold(0.0, f64::max)
    }

    /// Sum of all op durations — the time the pre-stream model charges
    /// by adding transfers and kernels.
    pub fn busy_seconds(&self) -> f64 {
        self.busy
    }

    /// Seconds saved by overlap relative to full serialization. The
    /// critical path visits each op at most once, so this is ≥ 0.
    pub fn overlap_savings(&self) -> f64 {
        (self.busy - self.elapsed_seconds()).max(0.0)
    }

    /// All scheduled ops in issue order.
    pub fn ops(&self) -> &[ScheduledOp] {
        &self.ops
    }
}

/// Modeled makespan of a double-buffered upload/compute/download
/// pipeline over per-chunk durations, the canonical use of the
/// timeline:
///
/// * chunk `c` computes only after its upload;
/// * chunk `c` downloads only after its compute;
/// * with `buffers` upload buffers, the upload of chunk `c` waits until
///   the compute of chunk `c − buffers` has consumed its buffer.
///
/// Copy-in, compute, and copy-out each serialize on their own engine.
pub fn pipeline_timeline(h2d: &[f64], compute: &[f64], d2h: &[f64], buffers: usize) -> Timeline {
    assert_eq!(h2d.len(), compute.len());
    assert_eq!(h2d.len(), d2h.len());
    assert!(buffers >= 1, "need at least one upload buffer");
    let mut tl = Timeline::new();
    let upload = tl.stream();
    let kernels = tl.stream();
    let download = tl.stream();
    let mut compute_done: Vec<Event> = Vec::with_capacity(compute.len());
    for c in 0..h2d.len() {
        let mut waits: Vec<Event> = Vec::new();
        if c >= buffers {
            waits.push(compute_done[c - buffers]);
        }
        let up = tl.enqueue(upload, Engine::CopyIn, h2d[c], &waits);
        let comp = tl.enqueue(kernels, Engine::Compute, compute[c], &[up]);
        compute_done.push(comp);
        tl.enqueue(download, Engine::CopyOut, d2h[c], &[comp]);
    }
    tl
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn single_chunk_serializes() {
        // One chunk has no overlap partner: makespan = sum.
        let tl = pipeline_timeline(&[2.0], &[5.0], &[1.0], 2);
        close(tl.elapsed_seconds(), 8.0);
        close(tl.busy_seconds(), 8.0);
        close(tl.overlap_savings(), 0.0);
    }

    #[test]
    fn two_chunks_overlap_copies_with_compute() {
        // Uploads 1s, computes 4s, downloads 1s per chunk. Serial sum =
        // 12 s. Overlapped: u0(0-1) k0(1-5) u1(1-2, under k0)
        // k1(5-9) d0(5-6) d1(9-10) → makespan 10 s.
        let tl = pipeline_timeline(&[1.0, 1.0], &[4.0, 4.0], &[1.0, 1.0], 2);
        close(tl.busy_seconds(), 12.0);
        close(tl.elapsed_seconds(), 10.0);
        close(tl.overlap_savings(), 2.0);
    }

    #[test]
    fn compute_bound_pipeline_approaches_kernel_sum() {
        // Many chunks, transfers much cheaper than compute: makespan →
        // first upload + Σ compute + last download.
        let n = 8;
        let tl = pipeline_timeline(&vec![0.1; n], &vec![2.0; n], &vec![0.1; n], 2);
        close(tl.elapsed_seconds(), 0.1 + 2.0 * n as f64 + 0.1);
    }

    #[test]
    fn transfer_bound_pipeline_approaches_copy_sum() {
        // Transfers dominate: the copy-in engine is the bottleneck.
        let n = 6;
        let tl = pipeline_timeline(&vec![3.0; n], &vec![0.2; n], &vec![0.1; n], 2);
        // Copy-in engine busy back-to-back: n*3, then last chunk's
        // compute and download.
        close(tl.elapsed_seconds(), 3.0 * n as f64 + 0.2 + 0.1);
    }

    #[test]
    fn in_and_out_copies_use_separate_engines() {
        // d2h of chunk 0 runs while h2d of chunk 1 runs: dual copy
        // engines. With a single copy engine the makespan would grow.
        let tl = pipeline_timeline(&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0], 2);
        // u0(0-1) k0(1-2) u1(1-2) k1(2-3) d0(2-3) d1(3-4).
        close(tl.elapsed_seconds(), 4.0);
    }

    #[test]
    fn single_buffer_blocks_next_upload() {
        // With one upload buffer, u1 waits for k0 to finish; with two
        // it does not.
        let one = pipeline_timeline(&[1.0, 1.0], &[4.0, 4.0], &[0.0, 0.0], 1);
        let two = pipeline_timeline(&[1.0, 1.0], &[4.0, 4.0], &[0.0, 0.0], 2);
        // one: u0(0-1) k0(1-5) u1(5-6) k1(6-10) → 10; two: u1 under k0 → 9.
        close(one.elapsed_seconds(), 10.0);
        close(two.elapsed_seconds(), 9.0);
        assert!(two.overlap_savings() > one.overlap_savings());
    }

    #[test]
    fn events_order_across_streams() {
        let mut tl = Timeline::new();
        let a = tl.stream();
        let b = tl.stream();
        let e = tl.enqueue(a, Engine::Compute, 2.0, &[]);
        // Stream b's copy could start at 0 but waits on the event.
        tl.enqueue(b, Engine::CopyOut, 1.0, &[e]);
        close(tl.elapsed_seconds(), 3.0);
        assert_eq!(tl.ops().len(), 2);
        close(tl.ops()[1].start, 2.0);
    }

    #[test]
    fn engine_serialization_within_kind() {
        let mut tl = Timeline::new();
        let a = tl.stream();
        let b = tl.stream();
        tl.enqueue(a, Engine::Compute, 2.0, &[]);
        tl.enqueue(b, Engine::Compute, 2.0, &[]);
        // Two streams, one compute engine: serialized.
        close(tl.elapsed_seconds(), 4.0);
        close(tl.overlap_savings(), 0.0);
    }

    #[test]
    fn savings_never_negative() {
        let tl = pipeline_timeline(&[5.0], &[0.1], &[0.1], 1);
        assert!(tl.overlap_savings() >= 0.0);
        let empty = Timeline::new();
        close(empty.elapsed_seconds(), 0.0);
        close(empty.overlap_savings(), 0.0);
    }
}
