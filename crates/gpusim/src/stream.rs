//! Modeled streams and events: concurrent copy/compute scheduling.
//!
//! The original cost model charges every batch `H2D + kernels + D2H` as
//! a straight **sum** — as if the device had a single serial queue. Real
//! Fermi-class hardware (the paper's Tesla C2050 has two copy engines
//! plus the compute engine) overlaps transfers with kernel execution
//! when work is issued on independent *streams*: while chunk `c` is
//! being computed, chunk `c+1` uploads and chunk `c−1` downloads.
//!
//! This module models exactly that, without touching functional
//! execution: a [`Timeline`] schedules abstract operations on the three
//! engines of one device, honoring
//!
//! * **engine serialization** — each engine runs one op at a time;
//! * **stream ordering** — ops on the same [`Stream`] run in issue
//!   order;
//! * **events** — an op can be made to wait on an [`Event`] recorded
//!   after any earlier op (cross-stream dependencies, e.g. "compute of
//!   chunk `c` waits for its upload" or "upload of chunk `c+2` waits
//!   until the double buffer is free").
//!
//! The modeled wall clock is the makespan over all ops; the difference
//! against the serialized sum is the **overlap saving** the batched
//! pipeline reports.
//!
//! For **multi-device** schedules (the row-sharded cluster's gather
//! step), [`Timeline::custom_engine`] opens additional engines beyond
//! the three fixed ones — e.g. one copy-out engine per *source* device,
//! all funneling into the root device's copy-in engine — and
//! [`gather_timeline`] builds the canonical cross-device result gather:
//! concurrent per-source egress, serialized root ingress.

use crate::device::DeviceSpec;

/// The three engines of one modeled device. The C2050's dual copy
/// engines mean host-to-device and device-to-host transfers use
/// *different* engines and can themselves overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Host → device DMA engine.
    CopyIn,
    /// Kernel execution engine.
    Compute,
    /// Device → host DMA engine.
    CopyOut,
}

/// An in-order queue of operations; ops on different streams may
/// overlap (subject to engine availability and event waits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stream(usize);

/// A completion timestamp recorded after an op; other streams can wait
/// on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event(usize);

/// An engine slot of a [`Timeline`]: one of the three fixed engines of
/// the primary device, or a [`Timeline::custom_engine`] slot standing
/// for another device's engine in a cross-device schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineSlot(usize);

/// One scheduled operation (for inspection and tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledOp {
    /// `Some` for the three fixed engines, `None` for custom slots.
    pub engine: Option<Engine>,
    pub stream: Stream,
    pub start: f64,
    pub finish: f64,
}

/// The modeled stream/event timeline of one device (plus any custom
/// engine slots opened for cross-device schedules).
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Next-free time of each engine; slots 0..3 are [CopyIn, Compute,
    /// CopyOut], further slots come from [`Timeline::custom_engine`].
    engine_free: Vec<f64>,
    /// Per-stream cursor: finish time of the stream's last op.
    streams: Vec<f64>,
    /// Recorded event timestamps.
    events: Vec<f64>,
    ops: Vec<ScheduledOp>,
    /// Sum of all op durations — what the serial model would charge.
    busy: f64,
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline {
            engine_free: vec![0.0; 3],
            streams: Vec::new(),
            events: Vec::new(),
            ops: Vec::new(),
            busy: 0.0,
        }
    }
}

fn engine_index(e: Engine) -> usize {
    match e {
        Engine::CopyIn => 0,
        Engine::Compute => 1,
        Engine::CopyOut => 2,
    }
}

impl Timeline {
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Open a new stream (its first op may start at `t = 0`).
    pub fn stream(&mut self) -> Stream {
        self.streams.push(0.0);
        Stream(self.streams.len() - 1)
    }

    /// The slot of one of the three fixed engines.
    pub fn slot(e: Engine) -> EngineSlot {
        EngineSlot(engine_index(e))
    }

    /// Open an additional engine slot — another device's copy or
    /// compute engine in a cross-device schedule. Ops on distinct
    /// slots overlap freely; ops on the same slot serialize.
    pub fn custom_engine(&mut self) -> EngineSlot {
        self.engine_free.push(0.0);
        EngineSlot(self.engine_free.len() - 1)
    }

    /// Schedule an op of `seconds` on `engine` in `stream`, after the
    /// given `waits` events. Returns an [`Event`] that fires at the
    /// op's completion.
    pub fn enqueue(
        &mut self,
        stream: Stream,
        engine: Engine,
        seconds: f64,
        waits: &[Event],
    ) -> Event {
        self.enqueue_slot(stream, Timeline::slot(engine), seconds, waits)
    }

    /// [`Timeline::enqueue`] on any engine slot, including custom ones.
    pub fn enqueue_slot(
        &mut self,
        stream: Stream,
        slot: EngineSlot,
        seconds: f64,
        waits: &[Event],
    ) -> Event {
        assert!(seconds >= 0.0, "op duration must be non-negative");
        let e = slot.0;
        let mut start = self.streams[stream.0].max(self.engine_free[e]);
        for w in waits {
            start = start.max(self.events[w.0]);
        }
        let finish = start + seconds;
        self.streams[stream.0] = finish;
        self.engine_free[e] = finish;
        self.busy += seconds;
        self.ops.push(ScheduledOp {
            engine: match e {
                0 => Some(Engine::CopyIn),
                1 => Some(Engine::Compute),
                2 => Some(Engine::CopyOut),
                _ => None,
            },
            stream,
            start,
            finish,
        });
        self.events.push(finish);
        Event(self.events.len() - 1)
    }

    /// Makespan: the completion time of the last op (0 when empty).
    pub fn elapsed_seconds(&self) -> f64 {
        self.ops.iter().map(|o| o.finish).fold(0.0, f64::max)
    }

    /// Sum of all op durations — the time the pre-stream model charges
    /// by adding transfers and kernels.
    pub fn busy_seconds(&self) -> f64 {
        self.busy
    }

    /// Seconds saved by overlap relative to full serialization. The
    /// critical path visits each op at most once, so this is ≥ 0.
    pub fn overlap_savings(&self) -> f64 {
        (self.busy - self.elapsed_seconds()).max(0.0)
    }

    /// All scheduled ops in issue order.
    pub fn ops(&self) -> &[ScheduledOp] {
        &self.ops
    }
}

/// Modeled makespan of a double-buffered upload/compute/download
/// pipeline over per-chunk durations, the canonical use of the
/// timeline:
///
/// * chunk `c` computes only after its upload;
/// * chunk `c` downloads only after its compute;
/// * with `buffers` upload buffers, the upload of chunk `c` waits until
///   the compute of chunk `c − buffers` has consumed its buffer.
///
/// Copy-in, compute, and copy-out each serialize on their own engine.
pub fn pipeline_timeline(h2d: &[f64], compute: &[f64], d2h: &[f64], buffers: usize) -> Timeline {
    assert_eq!(h2d.len(), compute.len());
    assert_eq!(h2d.len(), d2h.len());
    assert!(buffers >= 1, "need at least one upload buffer");
    let mut tl = Timeline::new();
    let upload = tl.stream();
    let kernels = tl.stream();
    let download = tl.stream();
    let mut compute_done: Vec<Event> = Vec::with_capacity(compute.len());
    for c in 0..h2d.len() {
        let mut waits: Vec<Event> = Vec::new();
        if c >= buffers {
            waits.push(compute_done[c - buffers]);
        }
        let up = tl.enqueue(upload, Engine::CopyIn, h2d[c], &waits);
        let comp = tl.enqueue(kernels, Engine::Compute, compute[c], &[up]);
        compute_done.push(comp);
        tl.enqueue(download, Engine::CopyOut, d2h[c], &[comp]);
    }
    tl
}

/// How bytes move between two devices of a modeled cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransferPath {
    /// No peer access: the source DMAs the bytes to host memory
    /// (D2H on its own copy-out engine) and the destination DMAs them
    /// back down (H2D on its copy-in engine) — two PCIe latencies and
    /// two bandwidth terms. The honest default for the paper's PCIe
    /// 2.0-era fleet.
    #[default]
    HostStaged,
    /// Peer-to-peer DMA across the PCIe switch: one hop at the slower
    /// endpoint's bandwidth plus the larger endpoint latency, charged
    /// entirely on the destination's ingress engine (the fan-in
    /// bottleneck) — the source's egress leg is free.
    PeerToPeer,
}

/// The two legs of moving `bytes` from `src` to `dst` along `path`:
/// `(egress_seconds, ingress_seconds)`. Egress occupies the source
/// device's copy-out engine, ingress the destination's copy-in engine;
/// the ingress of one transfer cannot start before its own egress
/// finished ([`gather_timeline`] enforces this).
pub fn transfer_legs(
    src: &DeviceSpec,
    dst: &DeviceSpec,
    bytes: usize,
    path: TransferPath,
) -> (f64, f64) {
    match path {
        TransferPath::HostStaged => (
            src.pcie_latency + bytes as f64 / src.pcie_bandwidth,
            dst.pcie_latency + bytes as f64 / dst.pcie_bandwidth,
        ),
        TransferPath::PeerToPeer => {
            // One direct hop; it serializes at the destination's
            // ingress port, so the whole duration is charged as the
            // ingress leg and the egress leg is free.
            let hop = src.pcie_latency.max(dst.pcie_latency)
                + bytes as f64 / src.pcie_bandwidth.min(dst.pcie_bandwidth);
            (0.0, hop)
        }
    }
}

/// Modeled makespan of gathering per-device results into one root
/// device: one `(egress, ingress)` leg pair per **source** device (from
/// [`transfer_legs`]; the root itself contributes no leg).
///
/// * every source's egress runs on its **own** copy engine — sources
///   drain concurrently;
/// * every ingress runs on the **root's** copy-in engine — ingress
///   serializes (one DMA engine absorbs the whole fan-in), each behind
///   its own egress.
///
/// [`TransferPath::PeerToPeer`] legs have a zero egress, so the whole
/// hop serializes on the root's ingress engine — the fan-in bottleneck
/// either way.
pub fn gather_timeline(legs: &[(f64, f64)]) -> Timeline {
    let mut tl = Timeline::new();
    let root_in = Timeline::slot(Engine::CopyIn);
    for &(egress, ingress) in legs {
        let stream = tl.stream();
        let out_engine = tl.custom_engine();
        let e = tl.enqueue_slot(stream, out_engine, egress, &[]);
        tl.enqueue_slot(stream, root_in, ingress, &[e]);
    }
    tl
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn single_chunk_serializes() {
        // One chunk has no overlap partner: makespan = sum.
        let tl = pipeline_timeline(&[2.0], &[5.0], &[1.0], 2);
        close(tl.elapsed_seconds(), 8.0);
        close(tl.busy_seconds(), 8.0);
        close(tl.overlap_savings(), 0.0);
    }

    #[test]
    fn two_chunks_overlap_copies_with_compute() {
        // Uploads 1s, computes 4s, downloads 1s per chunk. Serial sum =
        // 12 s. Overlapped: u0(0-1) k0(1-5) u1(1-2, under k0)
        // k1(5-9) d0(5-6) d1(9-10) → makespan 10 s.
        let tl = pipeline_timeline(&[1.0, 1.0], &[4.0, 4.0], &[1.0, 1.0], 2);
        close(tl.busy_seconds(), 12.0);
        close(tl.elapsed_seconds(), 10.0);
        close(tl.overlap_savings(), 2.0);
    }

    #[test]
    fn compute_bound_pipeline_approaches_kernel_sum() {
        // Many chunks, transfers much cheaper than compute: makespan →
        // first upload + Σ compute + last download.
        let n = 8;
        let tl = pipeline_timeline(&vec![0.1; n], &vec![2.0; n], &vec![0.1; n], 2);
        close(tl.elapsed_seconds(), 0.1 + 2.0 * n as f64 + 0.1);
    }

    #[test]
    fn transfer_bound_pipeline_approaches_copy_sum() {
        // Transfers dominate: the copy-in engine is the bottleneck.
        let n = 6;
        let tl = pipeline_timeline(&vec![3.0; n], &vec![0.2; n], &vec![0.1; n], 2);
        // Copy-in engine busy back-to-back: n*3, then last chunk's
        // compute and download.
        close(tl.elapsed_seconds(), 3.0 * n as f64 + 0.2 + 0.1);
    }

    #[test]
    fn in_and_out_copies_use_separate_engines() {
        // d2h of chunk 0 runs while h2d of chunk 1 runs: dual copy
        // engines. With a single copy engine the makespan would grow.
        let tl = pipeline_timeline(&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0], 2);
        // u0(0-1) k0(1-2) u1(1-2) k1(2-3) d0(2-3) d1(3-4).
        close(tl.elapsed_seconds(), 4.0);
    }

    #[test]
    fn single_buffer_blocks_next_upload() {
        // With one upload buffer, u1 waits for k0 to finish; with two
        // it does not.
        let one = pipeline_timeline(&[1.0, 1.0], &[4.0, 4.0], &[0.0, 0.0], 1);
        let two = pipeline_timeline(&[1.0, 1.0], &[4.0, 4.0], &[0.0, 0.0], 2);
        // one: u0(0-1) k0(1-5) u1(5-6) k1(6-10) → 10; two: u1 under k0 → 9.
        close(one.elapsed_seconds(), 10.0);
        close(two.elapsed_seconds(), 9.0);
        assert!(two.overlap_savings() > one.overlap_savings());
    }

    #[test]
    fn events_order_across_streams() {
        let mut tl = Timeline::new();
        let a = tl.stream();
        let b = tl.stream();
        let e = tl.enqueue(a, Engine::Compute, 2.0, &[]);
        // Stream b's copy could start at 0 but waits on the event.
        tl.enqueue(b, Engine::CopyOut, 1.0, &[e]);
        close(tl.elapsed_seconds(), 3.0);
        assert_eq!(tl.ops().len(), 2);
        close(tl.ops()[1].start, 2.0);
    }

    #[test]
    fn engine_serialization_within_kind() {
        let mut tl = Timeline::new();
        let a = tl.stream();
        let b = tl.stream();
        tl.enqueue(a, Engine::Compute, 2.0, &[]);
        tl.enqueue(b, Engine::Compute, 2.0, &[]);
        // Two streams, one compute engine: serialized.
        close(tl.elapsed_seconds(), 4.0);
        close(tl.overlap_savings(), 0.0);
    }

    #[test]
    fn custom_engines_overlap_with_fixed_ones() {
        let mut tl = Timeline::new();
        let a = tl.stream();
        let b = tl.stream();
        let other = tl.custom_engine();
        // Two ops on distinct engines overlap fully…
        tl.enqueue(a, Engine::CopyOut, 2.0, &[]);
        tl.enqueue_slot(b, other, 2.0, &[]);
        close(tl.elapsed_seconds(), 2.0);
        // …while two ops on the same custom engine serialize.
        let c = tl.stream();
        tl.enqueue_slot(c, other, 2.0, &[]);
        close(tl.elapsed_seconds(), 4.0);
    }

    #[test]
    fn staged_transfer_legs_pay_both_pcie_hops() {
        let src = DeviceSpec::tesla_c2050();
        let mut dst = DeviceSpec::tesla_c2050();
        dst.pcie_bandwidth *= 0.5;
        dst.pcie_latency *= 2.0;
        let bytes = 1_000_000usize;
        let (out, inn) = transfer_legs(&src, &dst, bytes, TransferPath::HostStaged);
        close(out, src.pcie_latency + bytes as f64 / src.pcie_bandwidth);
        close(inn, dst.pcie_latency + bytes as f64 / dst.pcie_bandwidth);
        // Peer: one hop at the slower endpoint, fully on the ingress leg.
        let (pout, pinn) = transfer_legs(&src, &dst, bytes, TransferPath::PeerToPeer);
        close(pout, 0.0);
        close(pinn, dst.pcie_latency + bytes as f64 / dst.pcie_bandwidth);
        assert!(pinn < out + inn, "peer saves a hop");
    }

    #[test]
    fn gather_serializes_ingress_but_overlaps_egress() {
        // Three sources, egress 2 s each (concurrent), ingress 1 s each
        // (serialized on the root's copy-in engine): makespan = 2 + 3·1
        // if ingress slots queue behind each other, but the first
        // ingress can start as soon as its egress is done.
        let tl = gather_timeline(&[(2.0, 1.0), (2.0, 1.0), (2.0, 1.0)]);
        close(tl.elapsed_seconds(), 5.0);
        // Serialized (no concurrency at all) would be 3·(2+1) = 9.
        close(tl.busy_seconds(), 9.0);
        assert!(tl.overlap_savings() > 0.0);
        // Peer-style legs: pure ingress, fully serialized.
        let peer = gather_timeline(&[(0.0, 1.5), (0.0, 1.5)]);
        close(peer.elapsed_seconds(), 3.0);
        // No sources: nothing to gather.
        close(gather_timeline(&[]).elapsed_seconds(), 0.0);
    }

    #[test]
    fn savings_never_negative() {
        let tl = pipeline_timeline(&[5.0], &[0.1], &[0.1], 1);
        assert!(tl.overlap_savings() >= 0.0);
        let empty = Timeline::new();
        close(empty.elapsed_seconds(), 0.0);
        close(empty.overlap_savings(), 0.0);
    }
}
