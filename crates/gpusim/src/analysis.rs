//! Warp-level replay of thread traces: coalescing, bank conflicts,
//! constant broadcast, divergence detection.
//!
//! The traces of the `warp_size` threads of a warp are walked in
//! lockstep, slot by slot within each barrier-delimited segment. Slot
//! `s` across the lanes is one warp-wide instruction; its cost depends
//! on the access pattern:
//!
//! * **global**: the lanes' byte ranges are grouped into aligned
//!   128-byte segments (Fermi L1 lines); one transaction per distinct
//!   segment. A fully coalesced warp-wide load of 16-byte complex
//!   doubles touches 4 segments; a scattered one up to 32.
//! * **shared**: the lanes' words are mapped onto the 32 banks; the
//!   access replays once per distinct word in the most-contended bank.
//! * **constant**: one cycle per distinct address (broadcast is free).
//! * **arithmetic**: `fp64_issue_cycles` per hardware-double flop of
//!   the widest lane.
//!
//! Lanes may be inactive for a whole segment (guarded by `if tid < n`),
//! which models SIMT masking. Any other shape mismatch marks the
//! segment divergent; its cost is the per-kind serialization of the
//! mismatched slots, the conservative SIMT behaviour.

use crate::device::DeviceSpec;
use crate::stats::Counters;
use crate::trace::{Ev, EvKind, ThreadTrace};
use crate::value::DeviceValue;

/// Analyze all warps of one block. `traces[t]` is thread `t`'s trace.
pub fn analyze_block<T: DeviceValue>(device: &DeviceSpec, traces: &[ThreadTrace]) -> Counters {
    let mut total = Counters::default();
    let ws = device.warp_size as usize;
    for warp in traces.chunks(ws) {
        total += analyze_warp::<T>(device, warp);
    }
    total
}

fn analyze_warp<T: DeviceValue>(device: &DeviceSpec, lanes: &[ThreadTrace]) -> Counters {
    let mut c = Counters {
        warps: 1,
        ..Default::default()
    };
    // Cursor per lane.
    let mut pos = vec![0usize; lanes.len()];
    loop {
        // Segment: events up to the next Sync (exclusive) per lane.
        let seg_lens: Vec<usize> = lanes
            .iter()
            .zip(&pos)
            .map(|(tr, &p)| {
                tr[p..]
                    .iter()
                    .position(|e| *e == Ev::Sync)
                    .unwrap_or(tr.len() - p)
            })
            .collect();
        let max_len = seg_lens.iter().copied().max().unwrap_or(0);
        // Divergence check: every active lane (nonzero segment) must
        // have the same length; inactive lanes are fine (masked).
        let active_lens: Vec<usize> = seg_lens.iter().copied().filter(|&l| l > 0).collect();
        let uniform = active_lens.windows(2).all(|w| w[0] == w[1]);
        if !uniform {
            c.divergent_segments += 1;
        }
        for s in 0..max_len {
            // Gather the events at slot s of each lane that has one.
            let evs: Vec<Ev> = lanes
                .iter()
                .zip(&pos)
                .zip(&seg_lens)
                .filter(|&((_tr, &_p), &l)| s < l)
                .map(|((tr, &p), &_l)| tr[p + s])
                .collect();
            charge_slot::<T>(device, &evs, &mut c, &mut false);
            // Mixed kinds in one slot (true divergence): charge each
            // kind group separately was handled inside charge_slot via
            // grouping; flag it.
            let first = evs[0].kind();
            if evs.iter().any(|e| e.kind() != first) && uniform {
                c.divergent_segments += 1;
            }
        }
        // Advance cursors past the segment and its Sync.
        let mut all_done = true;
        for (lane, p) in pos.iter_mut().enumerate() {
            *p += seg_lens[lane];
            if *p < lanes[lane].len() {
                *p += 1; // skip the Sync marker
            }
            if *p < lanes[lane].len() {
                all_done = false;
            }
        }
        if all_done {
            break;
        }
    }
    c
}

/// Charge one warp-wide slot. Events may be of mixed kinds under
/// divergence; each kind group is charged as its own serialized
/// instruction.
fn charge_slot<T: DeviceValue>(
    device: &DeviceSpec,
    evs: &[Ev],
    c: &mut Counters,
    _divergent: &mut bool,
) {
    use EvKind::*;
    for kind in [GLoad, GStore, SLoad, SStore, CLoad, Flop, IOp] {
        let group: Vec<Ev> = evs.iter().copied().filter(|e| e.kind() == kind).collect();
        if group.is_empty() {
            continue;
        }
        c.warp_instructions += 1;
        match kind {
            GLoad | GStore => {
                let seg = device.coalesce_segment as u64;
                let mut segments: Vec<u64> = group
                    .iter()
                    .flat_map(|e| {
                        let addr = match e {
                            Ev::GLoad { addr } | Ev::GStore { addr } => *addr,
                            _ => unreachable!("filtered by kind"),
                        };
                        let first = addr / seg;
                        let last = (addr + T::DEVICE_BYTES as u64 - 1) / seg;
                        first..=last
                    })
                    .collect();
                segments.sort_unstable();
                segments.dedup();
                let tx = segments.len() as u64;
                c.global_mem_ops += 1;
                c.global_transactions += tx;
                c.global_bytes += tx * seg;
                c.issue_cycles += 1;
            }
            SLoad | SStore => {
                // Map each lane's word range onto banks; replay count is
                // the max number of distinct words in any one bank.
                let banks = device.shared_banks as usize;
                let mut per_bank: Vec<Vec<u32>> = vec![Vec::new(); banks];
                for e in &group {
                    let addr = match e {
                        Ev::SLoad { addr } | Ev::SStore { addr } => *addr,
                        _ => unreachable!("filtered by kind"),
                    };
                    let first_word = addr / 4;
                    let last_word = (addr + T::DEVICE_BYTES as u32 - 1) / 4;
                    for w in first_word..=last_word {
                        per_bank[(w as usize) % banks].push(w);
                    }
                }
                let mut replay = 1u64;
                for b in &mut per_bank {
                    b.sort_unstable();
                    b.dedup();
                    replay = replay.max(b.len() as u64);
                }
                c.shared_accesses += 1;
                c.issue_cycles += replay;
                c.shared_conflict_cycles += replay - 1;
            }
            CLoad => {
                let mut addrs: Vec<u32> = group
                    .iter()
                    .map(|e| match e {
                        Ev::CLoad { addr, .. } => *addr,
                        _ => unreachable!("filtered by kind"),
                    })
                    .collect();
                addrs.sort_unstable();
                addrs.dedup();
                let distinct = addrs.len() as u64;
                c.const_accesses += 1;
                c.issue_cycles += distinct;
                c.const_serializations += distinct - 1;
            }
            Flop => {
                let max_w = group
                    .iter()
                    .map(|e| match e {
                        Ev::Flop { weight } => *weight,
                        _ => unreachable!("filtered by kind"),
                    })
                    .max()
                    .unwrap_or(0) as u64;
                let sum_w: u64 = group
                    .iter()
                    .map(|e| match e {
                        Ev::Flop { weight } => *weight as u64,
                        _ => unreachable!("filtered by kind"),
                    })
                    .sum();
                c.flops += sum_w;
                c.issue_cycles += max_w * device.fp64_issue_cycles as u64;
            }
            IOp => {
                let max_n = group
                    .iter()
                    .map(|e| match e {
                        Ev::IOp { count } => *count as u64,
                        _ => unreachable!("filtered by kind"),
                    })
                    .max()
                    .unwrap_or(0);
                c.issue_cycles += max_n * device.int_issue_cycles as u64;
            }
            Sync => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_complex::C64;

    fn dev() -> DeviceSpec {
        DeviceSpec::tesla_c2050()
    }

    fn trace_of(evs: Vec<Ev>) -> ThreadTrace {
        let mut t = evs;
        t.push(Ev::Sync);
        t
    }

    #[test]
    fn coalesced_load_of_complex_doubles_is_four_transactions() {
        // 32 lanes loading consecutive 16-byte elements: 512 bytes =
        // 4 x 128-byte segments.
        let traces: Vec<ThreadTrace> = (0..32)
            .map(|i| {
                trace_of(vec![Ev::GLoad {
                    addr: 0x1000 + i * 16,
                }])
            })
            .collect();
        let c = analyze_block::<C64>(&dev(), &traces);
        assert_eq!(c.global_transactions, 4);
        assert_eq!(c.global_bytes, 512);
        assert_eq!(c.divergent_segments, 0);
        assert_eq!(c.warps, 1);
    }

    #[test]
    fn strided_load_explodes_transactions() {
        // Stride 256 bytes: every lane in its own segment.
        let traces: Vec<ThreadTrace> = (0..32)
            .map(|i| {
                trace_of(vec![Ev::GLoad {
                    addr: 0x1000 + i * 256,
                }])
            })
            .collect();
        let c = analyze_block::<C64>(&dev(), &traces);
        assert_eq!(c.global_transactions, 32);
    }

    #[test]
    fn broadcast_load_is_one_transaction() {
        let traces: Vec<ThreadTrace> = (0..32)
            .map(|_| trace_of(vec![Ev::GLoad { addr: 0x2000 }]))
            .collect();
        let c = analyze_block::<C64>(&dev(), &traces);
        assert_eq!(c.global_transactions, 1);
    }

    #[test]
    fn shared_conflict_free_when_lanes_hit_distinct_banks() {
        // f64 elements (8 bytes = 2 words): lanes at consecutive
        // elements cover banks 2i, 2i+1 - 16 lanes fill 32 banks once;
        // 32 lanes revisit each bank with a *different* word -> 2-way.
        let traces: Vec<ThreadTrace> = (0..32)
            .map(|i| trace_of(vec![Ev::SStore { addr: i * 16 }]))
            .collect();
        let c = analyze_block::<C64>(&dev(), &traces);
        // Complex double = 4 words per lane; 32 lanes x 4 words = 128
        // words over 32 banks = 4 distinct words per bank.
        assert_eq!(c.shared_conflict_cycles, 3);
        assert_eq!(c.shared_accesses, 1);
    }

    #[test]
    fn shared_same_word_broadcast_no_conflict() {
        let traces: Vec<ThreadTrace> = (0..32)
            .map(|_| trace_of(vec![Ev::SLoad { addr: 64 }]))
            .collect();
        let c = analyze_block::<C64>(&dev(), &traces);
        assert_eq!(c.shared_conflict_cycles, 0);
    }

    #[test]
    fn constant_broadcast_vs_divergent_addresses() {
        let same: Vec<ThreadTrace> = (0..32)
            .map(|_| trace_of(vec![Ev::CLoad { addr: 10, bytes: 1 }]))
            .collect();
        let c = analyze_block::<C64>(&dev(), &same);
        assert_eq!(c.const_serializations, 0);

        let diff: Vec<ThreadTrace> = (0..32)
            .map(|i| {
                trace_of(vec![Ev::CLoad {
                    addr: i as u32,
                    bytes: 1,
                }])
            })
            .collect();
        let c = analyze_block::<C64>(&dev(), &diff);
        assert_eq!(c.const_serializations, 31);
    }

    #[test]
    fn masked_lanes_are_not_divergence() {
        // Lanes 0..8 active, rest idle for the whole segment (if tid < 8
        // guard): uniform.
        let traces: Vec<ThreadTrace> = (0..32)
            .map(|i| {
                if i < 8 {
                    trace_of(vec![Ev::Flop { weight: 6 }])
                } else {
                    trace_of(vec![])
                }
            })
            .collect();
        let c = analyze_block::<C64>(&dev(), &traces);
        assert_eq!(c.divergent_segments, 0);
        assert_eq!(c.flops, 48);
        // issue cost is that of a full warp instruction
        assert_eq!(c.issue_cycles, 12);
    }

    #[test]
    fn unequal_active_lengths_flag_divergence() {
        let traces: Vec<ThreadTrace> = (0..32)
            .map(|i| {
                let n = if i % 2 == 0 { 1 } else { 3 };
                trace_of(vec![Ev::Flop { weight: 1 }; n])
            })
            .collect();
        let c = analyze_block::<C64>(&dev(), &traces);
        assert!(c.divergent_segments > 0);
        // Cost follows the longest lane: 3 slots.
        assert_eq!(c.warp_instructions, 3);
    }

    #[test]
    fn multi_segment_traces_realign_after_sync() {
        // Segment 1: only lane 0 works. Segment 2: all lanes work.
        let traces: Vec<ThreadTrace> = (0..32)
            .map(|i| {
                let mut t = Vec::new();
                if i == 0 {
                    t.push(Ev::Flop { weight: 6 });
                }
                t.push(Ev::Sync);
                t.push(Ev::GLoad {
                    addr: 0x1000 + i * 16,
                });
                t.push(Ev::Sync);
                t
            })
            .collect();
        let c = analyze_block::<C64>(&dev(), &traces);
        assert_eq!(c.divergent_segments, 0);
        assert_eq!(c.global_transactions, 4);
    }

    #[test]
    fn two_warps_counted_separately() {
        let traces: Vec<ThreadTrace> = (0..64)
            .map(|i| {
                trace_of(vec![Ev::GLoad {
                    addr: 0x1000 + (i % 32) * 16,
                }])
            })
            .collect();
        let c = analyze_block::<C64>(&dev(), &traces);
        assert_eq!(c.warps, 2);
        assert_eq!(c.global_transactions, 8);
    }
}
