//! The analytic timing model: from warp-level counters to modeled GPU
//! seconds.
//!
//! A simplified Hong–Kim-style throughput/latency model, documented
//! term by term:
//!
//! * Blocks are distributed over the SMs in **waves** of
//!   `blocks_per_sm` (from the occupancy calculator) per SM.
//! * Within a wave with `w` resident warps per SM, the SM needs
//!   `w × C_issue` cycles of issue throughput (`C_issue` = average
//!   issue cycles per warp), but no less than one warp's latency
//!   critical path `C_issue + N_mem × L` (`N_mem` = global memory
//!   instructions per warp, `L` = DRAM latency): with few resident
//!   warps the SM stalls on memory, and extra warps hide that latency —
//!   exactly the effect that makes the paper's GPU times nearly flat in
//!   the monomial count while the CPU time grows linearly (Tables 1–2).
//! * The wave can also be bound by DRAM bandwidth:
//!   `bytes_per_sm_wave / (BW_chip / SMs / clock)` cycles.
//! * Kernel time = Σ over waves of `max(throughput, latency,
//!   bandwidth)`; launch overhead and (if requested) PCIe transfers are
//!   added on top by the caller via [`LaunchTiming::total_seconds`].

use crate::device::DeviceSpec;
use crate::kernel::LaunchConfig;
use crate::occupancy::Occupancy;
use crate::stats::Counters;

/// Which term bound a launch's modeled time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Issue throughput (`w × C_issue` dominated).
    Compute,
    /// Memory latency with too few warps to hide it.
    Latency,
    /// DRAM bandwidth.
    Bandwidth,
}

/// Modeled execution time of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchTiming {
    /// Modeled kernel execution cycles (shader clock).
    pub kernel_cycles: f64,
    /// Kernel execution seconds (`cycles / clock`).
    pub kernel_seconds: f64,
    /// Fixed launch overhead seconds (driver/queue).
    pub overhead_seconds: f64,
    /// Number of waves over the SMs.
    pub waves: u32,
    /// Occupancy used.
    pub occupancy: Occupancy,
    /// Dominant term of the slowest wave.
    pub bound: Bound,
}

impl LaunchTiming {
    /// Kernel plus launch overhead.
    pub fn total_seconds(&self) -> f64 {
        self.kernel_seconds + self.overhead_seconds
    }
}

/// Model one launch from its aggregated counters.
pub fn model_launch(
    device: &DeviceSpec,
    cfg: LaunchConfig,
    occ: Occupancy,
    counters: &Counters,
) -> LaunchTiming {
    let blocks = cfg.grid_dim as u64;
    let warps_per_block = cfg.block_dim.div_ceil(device.warp_size) as u64;
    let c_issue = counters.issue_cycles_per_warp();
    let n_mem = counters.mem_ops_per_warp();
    let latency_path = c_issue + n_mem * device.dram_latency as f64;
    let bytes_per_block = if blocks == 0 {
        0.0
    } else {
        counters.global_bytes as f64 / blocks as f64
    };
    // Bandwidth per SM per cycle.
    let bw_chip_per_cycle = device.dram_bandwidth / device.clock_hz;
    let bw_sm_per_cycle = bw_chip_per_cycle / device.sm_count as f64;

    let concurrent = (device.sm_count * occ.blocks_per_sm) as u64;
    let waves = blocks.div_ceil(concurrent).max(1);
    let mut cycles = 0.0;
    let mut bound = Bound::Compute;
    let mut remaining = blocks;
    for _ in 0..waves {
        let wave_blocks = remaining.min(concurrent);
        // Worst-loaded SM in this wave.
        let blocks_on_sm = wave_blocks.div_ceil(device.sm_count as u64);
        let w = (blocks_on_sm * warps_per_block) as f64;
        let throughput = w * c_issue;
        let bandwidth = blocks_on_sm as f64 * bytes_per_block / bw_sm_per_cycle;
        let wave_cycles = throughput.max(latency_path).max(bandwidth);
        if wave_cycles == bandwidth && bandwidth > throughput && bandwidth > latency_path {
            bound = Bound::Bandwidth;
        } else if wave_cycles == latency_path && latency_path > throughput {
            bound = Bound::Latency;
        }
        cycles += wave_cycles;
        remaining -= wave_blocks;
    }
    LaunchTiming {
        kernel_cycles: cycles,
        kernel_seconds: cycles / device.clock_hz,
        overhead_seconds: device.launch_overhead,
        waves: waves as u32,
        occupancy: occ,
        bound,
    }
}

/// Modeled host↔device transfer time for `bytes` over PCIe.
pub fn transfer_seconds(device: &DeviceSpec, bytes: usize) -> f64 {
    device.pcie_latency + bytes as f64 / device.pcie_bandwidth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::occupancy;

    fn c2050() -> DeviceSpec {
        DeviceSpec::tesla_c2050()
    }

    fn counters(warps: u64, issue_per_warp: u64, mem_per_warp: u64, bytes: u64) -> Counters {
        Counters {
            warps,
            issue_cycles: warps * issue_per_warp,
            global_mem_ops: warps * mem_per_warp,
            global_bytes: bytes,
            ..Default::default()
        }
    }

    #[test]
    fn latency_bound_when_underoccupied() {
        // 22 blocks of 1 warp each, light issue load: the latency path
        // dominates and the kernel time is flat-ish in block count.
        let dev = c2050();
        let occ = occupancy(&dev, 32, 1024, 24).unwrap();
        let cfg = LaunchConfig::new(22, 32);
        let c = counters(22, 500, 30, 22 * 40 * 128);
        let t = model_launch(&dev, cfg, occ, &c);
        assert_eq!(t.bound, Bound::Latency);
        // latency path = 500 + 30*500 = 15500 cycles
        assert!(
            (t.kernel_cycles - 15_500.0).abs() < 1.0,
            "{}",
            t.kernel_cycles
        );
        // More blocks, same per-warp profile: time barely moves (one wave).
        let cfg2 = LaunchConfig::new(48, 32);
        let c2 = counters(48, 500, 30, 48 * 40 * 128);
        let t2 = model_launch(&dev, cfg2, occ, &c2);
        assert_eq!(t2.waves, 1);
        assert_eq!(t2.kernel_cycles, t.kernel_cycles, "latency-bound => flat");
    }

    #[test]
    fn compute_bound_when_saturated() {
        let dev = c2050();
        let occ = occupancy(&dev, 32, 256, 24).unwrap(); // 8 blocks/SM
                                                         // 14*8 = 112 concurrent blocks; give each SM heavy issue load.
        let cfg = LaunchConfig::new(112, 32);
        let c = counters(112, 10_000, 2, 112 * 128);
        let t = model_launch(&dev, cfg, occ, &c);
        assert_eq!(t.bound, Bound::Compute);
        // 8 warps/SM * 10k cycles
        assert!((t.kernel_cycles - 80_000.0).abs() < 1.0);
    }

    #[test]
    fn multiple_waves_accumulate() {
        let dev = c2050();
        let occ = occupancy(&dev, 32, 256, 24).unwrap();
        let concurrent = 14 * occ.blocks_per_sm; // 112
        let cfg = LaunchConfig::new(concurrent * 3, 32);
        let c = counters(3 * concurrent as u64, 10_000, 0, 0);
        let t = model_launch(&dev, cfg, occ, &c);
        assert_eq!(t.waves, 3);
        assert!((t.kernel_cycles - 3.0 * 80_000.0).abs() < 1.0);
    }

    #[test]
    fn bandwidth_bound_for_streaming_kernels() {
        let dev = c2050();
        let occ = occupancy(&dev, 32, 256, 24).unwrap();
        let cfg = LaunchConfig::new(112, 32);
        // Tiny compute, huge byte traffic.
        let c = counters(112, 10, 1, 112 * 1_000_000);
        let t = model_launch(&dev, cfg, occ, &c);
        assert_eq!(t.bound, Bound::Bandwidth);
    }

    #[test]
    fn seconds_scale_with_clock() {
        let dev = c2050();
        let occ = occupancy(&dev, 32, 256, 24).unwrap();
        let cfg = LaunchConfig::new(14, 32);
        let c = counters(14, 1147, 0, 0);
        let t = model_launch(&dev, cfg, occ, &c);
        // 1147 cycles at 1.147 GHz = 1 microsecond.
        assert!((t.kernel_seconds - 1.0e-6).abs() < 1e-12);
        assert!(t.total_seconds() > t.kernel_seconds);
    }

    #[test]
    fn transfer_time_includes_latency_floor() {
        let dev = c2050();
        let t0 = transfer_seconds(&dev, 0);
        assert!((t0 - dev.pcie_latency).abs() < 1e-15);
        let t = transfer_seconds(&dev, 5_000_000);
        assert!(t > 1e-3 / 1.001 && t < 2e-3);
    }
}
