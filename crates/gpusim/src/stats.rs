//! Performance counters collected by the warp analyzer and aggregated
//! per launch and per pipeline.

use std::fmt;
use std::ops::AddAssign;

/// Counters for one block (or, summed, one launch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Warp-wide instruction slots issued.
    pub warp_instructions: u64,
    /// Issue cycles: instructions weighted by their per-warp issue cost
    /// (FP64 rate, shared-memory replays, constant serializations).
    pub issue_cycles: u64,
    /// Global-memory instructions (loads + stores), per warp — the
    /// latency-chain length for the timing model.
    pub global_mem_ops: u64,
    /// 128-byte global transactions after coalescing.
    pub global_transactions: u64,
    /// Bytes moved to/from DRAM (`transactions × segment size`).
    pub global_bytes: u64,
    /// Shared-memory access instructions.
    pub shared_accesses: u64,
    /// Extra replay cycles from shared-memory bank conflicts.
    pub shared_conflict_cycles: u64,
    /// Constant-memory access instructions.
    pub const_accesses: u64,
    /// Extra serialization cycles from divergent constant addresses
    /// within a warp (broadcast is free).
    pub const_serializations: u64,
    /// Hardware-double-equivalent floating point operations executed.
    pub flops: u64,
    /// Warp segments whose lanes diverged (unequal trace lengths or
    /// mismatched operations) — zero for the paper's kernels.
    pub divergent_segments: u64,
    /// Warps analyzed.
    pub warps: u64,
}

impl AddAssign for Counters {
    fn add_assign(&mut self, o: Counters) {
        self.warp_instructions += o.warp_instructions;
        self.issue_cycles += o.issue_cycles;
        self.global_mem_ops += o.global_mem_ops;
        self.global_transactions += o.global_transactions;
        self.global_bytes += o.global_bytes;
        self.shared_accesses += o.shared_accesses;
        self.shared_conflict_cycles += o.shared_conflict_cycles;
        self.const_accesses += o.const_accesses;
        self.const_serializations += o.const_serializations;
        self.flops += o.flops;
        self.divergent_segments += o.divergent_segments;
        self.warps += o.warps;
    }
}

impl Counters {
    /// Average issue cycles per warp (the timing model's per-warp work).
    pub fn issue_cycles_per_warp(&self) -> f64 {
        if self.warps == 0 {
            0.0
        } else {
            self.issue_cycles as f64 / self.warps as f64
        }
    }

    /// Average global-memory ops per warp.
    pub fn mem_ops_per_warp(&self) -> f64 {
        if self.warps == 0 {
            0.0
        } else {
            self.global_mem_ops as f64 / self.warps as f64
        }
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  warps analyzed        {:>12}", self.warps)?;
        writeln!(f, "  warp instructions     {:>12}", self.warp_instructions)?;
        writeln!(f, "  issue cycles          {:>12}", self.issue_cycles)?;
        writeln!(f, "  flops (f64-equiv)     {:>12}", self.flops)?;
        writeln!(f, "  global mem ops        {:>12}", self.global_mem_ops)?;
        writeln!(
            f,
            "  global transactions   {:>12}",
            self.global_transactions
        )?;
        writeln!(f, "  global bytes          {:>12}", self.global_bytes)?;
        writeln!(f, "  shared accesses       {:>12}", self.shared_accesses)?;
        writeln!(
            f,
            "  shared conflict cyc   {:>12}",
            self.shared_conflict_cycles
        )?;
        writeln!(f, "  const accesses        {:>12}", self.const_accesses)?;
        writeln!(
            f,
            "  const serializations  {:>12}",
            self.const_serializations
        )?;
        write!(f, "  divergent segments    {:>12}", self.divergent_segments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_sums_fields() {
        let mut a = Counters {
            warps: 2,
            flops: 10,
            ..Default::default()
        };
        a += Counters {
            warps: 3,
            flops: 5,
            global_bytes: 128,
            ..Default::default()
        };
        assert_eq!(a.warps, 5);
        assert_eq!(a.flops, 15);
        assert_eq!(a.global_bytes, 128);
    }

    #[test]
    fn per_warp_averages_handle_zero() {
        let c = Counters::default();
        assert_eq!(c.issue_cycles_per_warp(), 0.0);
        let c = Counters {
            warps: 4,
            issue_cycles: 100,
            global_mem_ops: 8,
            ..Default::default()
        };
        assert_eq!(c.issue_cycles_per_warp(), 25.0);
        assert_eq!(c.mem_ops_per_warp(), 2.0);
    }
}
