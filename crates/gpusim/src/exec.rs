//! The launch executor: runs a kernel's blocks (in parallel on the
//! host via rayon — blocks are independent within a launch, exactly as
//! on the device), analyzes traces, applies buffered writes, and models
//! the launch time.

use crate::analysis::analyze_block;
use crate::device::DeviceSpec;
use crate::kernel::{BlockCtx, Kernel, LaunchConfig};
use crate::mem::{BufferId, ConstantMemory, GlobalMem};
use crate::occupancy::{occupancy, Occupancy};
use crate::stats::Counters;
use crate::timing::{model_launch, LaunchTiming};
use crate::value::DeviceValue;
use rayon::prelude::*;
use std::collections::HashMap;
use std::fmt;

/// Errors that abort a launch before any block runs (the CUDA
/// equivalents are `cudaErrorInvalidConfiguration` and friends).
#[derive(Debug, Clone, PartialEq)]
pub enum LaunchError {
    /// Block exceeds device limits or zero-sized.
    BadConfig(String),
    /// One block's shared memory exceeds the SM's capacity.
    SharedOverflow { needed: usize, capacity: usize },
    /// Two threads (possibly of different blocks) stored to the same
    /// global element in one launch — undefined behaviour on hardware,
    /// reported deterministically here.
    WriteConflict { buffer: usize, index: usize },
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::BadConfig(msg) => write!(f, "invalid launch configuration: {msg}"),
            LaunchError::SharedOverflow { needed, capacity } => write!(
                f,
                "shared memory per block ({needed} B) exceeds SM capacity ({capacity} B)"
            ),
            LaunchError::WriteConflict { buffer, index } => write!(
                f,
                "global write conflict on buffer {buffer} element {index}"
            ),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Options controlling a launch.
#[derive(Debug, Clone, Copy)]
pub struct LaunchOptions {
    /// Detect duplicate global stores (costs a hash pass per launch).
    pub check_write_conflicts: bool,
    /// Run blocks on the host thread pool (rayon). Disable for strictly
    /// serial debugging.
    pub parallel_host: bool,
}

impl Default for LaunchOptions {
    fn default() -> Self {
        LaunchOptions {
            check_write_conflicts: true,
            parallel_host: true,
        }
    }
}

/// The result of one launch: counters and modeled timing.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    pub kernel_name: String,
    pub config: LaunchConfig,
    pub shared_bytes_per_block: usize,
    pub counters: Counters,
    pub occupancy: Occupancy,
    pub timing: LaunchTiming,
}

impl fmt::Display for LaunchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "kernel `{}`: grid {} x block {}, {} B shared/block, {} blocks/SM ({:?}-limited)",
            self.kernel_name,
            self.config.grid_dim,
            self.config.block_dim,
            self.shared_bytes_per_block,
            self.occupancy.blocks_per_sm,
            self.occupancy.limiter,
        )?;
        writeln!(f, "{}", self.counters)?;
        write!(
            f,
            "  modeled: {:.3} us kernel + {:.3} us overhead, {} wave(s), {:?}-bound",
            self.timing.kernel_seconds * 1e6,
            self.timing.overhead_seconds * 1e6,
            self.timing.waves,
            self.timing.bound
        )
    }
}

/// Execute `kernel` over `cfg` against `global`/`constant`.
///
/// Functionally: all blocks run, buffered global stores are applied
/// after every block finishes (CUDA guarantees no inter-block write
/// visibility within a launch; none of the paper's kernels relies on
/// it). Performance-wise: traces are analyzed per block and reduced
/// into launch counters, then fed to the timing model.
pub fn launch<T: DeviceValue, K: Kernel<T>>(
    device: &DeviceSpec,
    kernel: &K,
    cfg: LaunchConfig,
    global: &mut GlobalMem<T>,
    constant: &ConstantMemory,
    opts: LaunchOptions,
) -> Result<LaunchReport, LaunchError> {
    if cfg.block_dim == 0 || cfg.grid_dim == 0 {
        return Err(LaunchError::BadConfig(format!(
            "grid {} x block {}",
            cfg.grid_dim, cfg.block_dim
        )));
    }
    if cfg.block_dim > device.max_threads_per_block {
        return Err(LaunchError::BadConfig(format!(
            "block of {} threads exceeds device limit {}",
            cfg.block_dim, device.max_threads_per_block
        )));
    }
    let shared_elems = kernel.shared_elems(cfg.block_dim);
    let shared_bytes = shared_elems * T::DEVICE_BYTES;
    if shared_bytes > device.shared_mem_per_sm {
        return Err(LaunchError::SharedOverflow {
            needed: shared_bytes,
            capacity: device.shared_mem_per_sm,
        });
    }
    let occ = occupancy(
        device,
        cfg.block_dim,
        shared_bytes,
        kernel.regs_per_thread(),
    )
    .ok_or_else(|| {
        LaunchError::BadConfig("kernel does not fit on an SM at any occupancy".into())
    })?;

    type BlockOutcome<T> = (Counters, Vec<(BufferId, usize, T)>);
    let run_block = |block_id: u32| -> BlockOutcome<T> {
        let mut blk = BlockCtx::new(block_id, cfg, shared_elems, global, constant);
        kernel.run_block(&mut blk);
        let counters = analyze_block::<T>(device, &blk.traces);
        (counters, blk.writes)
    };

    // Blocks are independent; run them on the host pool. Results are
    // collected in block order, so everything downstream is
    // deterministic regardless of scheduling.
    let results: Vec<BlockOutcome<T>> = if opts.parallel_host {
        (0..cfg.grid_dim).into_par_iter().map(run_block).collect()
    } else {
        (0..cfg.grid_dim).map(run_block).collect()
    };

    let mut counters = Counters::default();
    for (c, _) in &results {
        counters += *c;
    }

    if opts.check_write_conflicts {
        let mut seen: HashMap<(usize, usize), ()> =
            HashMap::with_capacity(results.iter().map(|(_, w)| w.len()).sum());
        for (_, writes) in &results {
            for (buf, idx, _) in writes {
                if seen.insert((buf.0, *idx), ()).is_some() {
                    return Err(LaunchError::WriteConflict {
                        buffer: buf.0,
                        index: *idx,
                    });
                }
            }
        }
    }

    for (_, writes) in results {
        for (buf, idx, v) in writes {
            global.write(buf, idx, v);
        }
    }

    let timing = model_launch(device, cfg, occ, &counters);
    Ok(LaunchReport {
        kernel_name: kernel.name().to_string(),
        config: cfg,
        shared_bytes_per_block: shared_bytes,
        counters,
        occupancy: occ,
        timing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_complex::C64;

    /// y[i] = a*x[i] + y[i] over complex doubles: one coalesced load
    /// pair, a multiply-add, one coalesced store.
    struct Caxpy {
        a: C64,
        x: BufferId,
        y: BufferId,
        n: usize,
    }

    impl Kernel<C64> for Caxpy {
        fn name(&self) -> &str {
            "caxpy"
        }
        fn shared_elems(&self, _b: u32) -> usize {
            0
        }
        fn run_block(&self, blk: &mut BlockCtx<'_, C64>) {
            let (a, x, y, n) = (self.a, self.x, self.y, self.n);
            blk.threads(|t| {
                let i = t.global_tid() as usize;
                if i < n {
                    let xv = t.gload(x, i);
                    let yv = t.gload(y, i);
                    let ax = t.mul(a, xv);
                    let s = t.add(ax, yv);
                    t.gstore(y, i, s);
                }
            });
        }
    }

    fn setup(n: usize) -> (DeviceSpec, GlobalMem<C64>, ConstantMemory, Caxpy) {
        let dev = DeviceSpec::tesla_c2050();
        let mut g = GlobalMem::new();
        let x = g.alloc(n);
        let y = g.alloc(n);
        let xs: Vec<C64> = (0..n).map(|i| C64::from_f64(i as f64, 1.0)).collect();
        let ys: Vec<C64> = (0..n).map(|i| C64::from_f64(0.5, -(i as f64))).collect();
        g.host_write(x, 0, &xs);
        g.host_write(y, 0, &ys);
        let cm = ConstantMemory::new(&dev);
        let k = Caxpy {
            a: C64::from_f64(2.0, 1.0),
            x,
            y,
            n,
        };
        (dev, g, cm, k)
    }

    #[test]
    fn caxpy_computes_correct_values() {
        let n = 100;
        let (dev, mut g, cm, k) = setup(n);
        let cfg = LaunchConfig::cover(n, 32);
        let report = launch(&dev, &k, cfg, &mut g, &cm, LaunchOptions::default()).unwrap();
        let a = C64::from_f64(2.0, 1.0);
        for i in 0..n {
            let want = a * C64::from_f64(i as f64, 1.0) + C64::from_f64(0.5, -(i as f64));
            assert_eq!(g.host_read(k.y)[i], want, "element {i}");
        }
        assert_eq!(report.counters.divergent_segments, 0);
        // 4 warps minus masked tail: grid covers 128 threads for n=100.
        assert_eq!(report.counters.warps, 4);
    }

    #[test]
    fn serial_and_parallel_execution_agree() {
        let n = 200;
        let (dev, mut g1, cm, k) = setup(n);
        let cfg = LaunchConfig::cover(n, 32);
        let r1 = launch(&dev, &k, cfg, &mut g1, &cm, LaunchOptions::default()).unwrap();
        let (_, mut g2, cm2, k2) = setup(n);
        let r2 = launch(
            &dev,
            &k2,
            cfg,
            &mut g2,
            &cm2,
            LaunchOptions {
                parallel_host: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(g1.host_read(k.y), g2.host_read(k2.y));
        assert_eq!(r1.counters, r2.counters);
    }

    #[test]
    fn coalescing_counted_for_unit_stride() {
        let n = 128;
        let (dev, mut g, cm, k) = setup(n);
        let cfg = LaunchConfig::cover(n, 32);
        let report = launch(&dev, &k, cfg, &mut g, &cm, LaunchOptions::default()).unwrap();
        // Per warp: 2 loads + 1 store, each 4 transactions (32 x 16B /
        // 128B), 4 warps -> 48 transactions.
        assert_eq!(report.counters.global_transactions, 48);
        assert_eq!(report.counters.global_bytes, 48 * 128);
    }

    /// Batched caxpy: `P` independent instances in one launch via a
    /// point-major [`LaunchConfig::cover_batch`] grid.
    struct BatchCaxpy {
        a: C64,
        x: BufferId,
        y: BufferId,
        n: usize,
        inner: u32,
    }

    impl Kernel<C64> for BatchCaxpy {
        fn name(&self) -> &str {
            "batch_caxpy"
        }
        fn shared_elems(&self, _b: u32) -> usize {
            0
        }
        fn run_block(&self, blk: &mut BlockCtx<'_, C64>) {
            let (a, x, y, n, inner) = (self.a, self.x, self.y, self.n, self.inner);
            // Per-instance regions are pitched to the coalescing
            // segment (128 B = 8 complex doubles) so each instance's
            // access pattern — and hence its transaction count — is
            // identical to a single-instance launch.
            let stride = n.next_multiple_of(8);
            let point = (blk.block_id() / inner) as usize;
            let chunk = blk.block_id() % inner;
            let block_dim = blk.block_dim() as usize;
            blk.threads(|t| {
                let i = chunk as usize * block_dim + t.tid() as usize;
                if i < n {
                    let xv = t.gload(x, point * stride + i);
                    let yv = t.gload(y, point * stride + i);
                    let ax = t.mul(a, xv);
                    let s = t.add(ax, yv);
                    t.gstore(y, point * stride + i, s);
                }
            });
        }
    }

    #[test]
    fn batched_grid_matches_separate_launches_bitwise() {
        let n = 100usize; // not a multiple of the block
        let stride = n.next_multiple_of(8); // 128 B pitch in C64 elements
        let p = 3;
        let dev = DeviceSpec::tesla_c2050();
        let a = C64::from_f64(2.0, 1.0);
        let xs: Vec<C64> = (0..p * n).map(|i| C64::from_f64(i as f64, 1.0)).collect();
        let ys: Vec<C64> = (0..p * n)
            .map(|i| C64::from_f64(0.5, -(i as f64)))
            .collect();

        // One batched launch over all p instances.
        let mut gb = GlobalMem::new();
        let (xb, yb) = (gb.alloc(p * stride), gb.alloc(p * stride));
        for i in 0..p {
            gb.host_write(xb, i * stride, &xs[i * n..(i + 1) * n]);
            gb.host_write(yb, i * stride, &ys[i * n..(i + 1) * n]);
        }
        let cfg = LaunchConfig::cover_batch(p, n, 32);
        let kb = BatchCaxpy {
            a,
            x: xb,
            y: yb,
            n,
            inner: LaunchConfig::blocks_for(n, 32),
        };
        let rb = launch(
            &dev,
            &kb,
            cfg,
            &mut gb,
            &ConstantMemory::new(&dev),
            LaunchOptions::default(),
        )
        .unwrap();

        // p separate single-instance launches.
        let mut singles: Vec<C64> = Vec::new();
        let mut counters = Counters::default();
        for i in 0..p {
            let mut g = GlobalMem::new();
            let (x, y) = (g.alloc(n), g.alloc(n));
            g.host_write(x, 0, &xs[i * n..(i + 1) * n]);
            g.host_write(y, 0, &ys[i * n..(i + 1) * n]);
            let k = Caxpy { a, x, y, n };
            let r = launch(
                &dev,
                &k,
                LaunchConfig::cover(n, 32),
                &mut g,
                &ConstantMemory::new(&dev),
                LaunchOptions::default(),
            )
            .unwrap();
            counters += r.counters;
            singles.extend_from_slice(g.host_read(y));
        }

        // Bit-for-bit identical results; counters for the larger grid
        // are exactly the sum over the separate launches.
        let batched = gb.host_read(yb);
        for i in 0..p {
            assert_eq!(
                &batched[i * stride..i * stride + n],
                &singles[i * n..(i + 1) * n]
            );
        }
        assert_eq!(rb.counters, counters);
        assert_eq!(rb.config.grid_dim, 3 * 4);
    }

    #[test]
    fn write_conflicts_detected() {
        struct Collider {
            y: BufferId,
        }
        impl Kernel<C64> for Collider {
            fn name(&self) -> &str {
                "collider"
            }
            fn shared_elems(&self, _b: u32) -> usize {
                0
            }
            fn run_block(&self, blk: &mut BlockCtx<'_, C64>) {
                let y = self.y;
                blk.threads(|t| {
                    // every thread stores to element 0
                    let v = C64::from_f64(t.tid() as f64, 0.0);
                    t.gstore(y, 0, v);
                });
            }
        }
        let dev = DeviceSpec::tesla_c2050();
        let mut g = GlobalMem::new();
        let y = g.alloc(4);
        let cm = ConstantMemory::new(&dev);
        let err = launch(
            &dev,
            &Collider { y },
            LaunchConfig::new(1, 32),
            &mut g,
            &cm,
            LaunchOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            LaunchError::WriteConflict {
                buffer: 0,
                index: 0
            }
        ));
    }

    #[test]
    fn bad_configs_rejected() {
        let (dev, mut g, cm, k) = setup(4);
        assert!(matches!(
            launch(
                &dev,
                &k,
                LaunchConfig::new(0, 32),
                &mut g,
                &cm,
                LaunchOptions::default()
            ),
            Err(LaunchError::BadConfig(_))
        ));
        assert!(matches!(
            launch(
                &dev,
                &k,
                LaunchConfig::new(1, 0),
                &mut g,
                &cm,
                LaunchOptions::default()
            ),
            Err(LaunchError::BadConfig(_))
        ));
        assert!(matches!(
            launch(
                &dev,
                &k,
                LaunchConfig::new(1, 2048),
                &mut g,
                &cm,
                LaunchOptions::default()
            ),
            Err(LaunchError::BadConfig(_))
        ));
    }

    #[test]
    fn shared_overflow_rejected() {
        struct Hog;
        impl Kernel<C64> for Hog {
            fn name(&self) -> &str {
                "hog"
            }
            fn shared_elems(&self, _b: u32) -> usize {
                4096 // 64 KiB of complex doubles > 48 KiB
            }
            fn run_block(&self, _blk: &mut BlockCtx<'_, C64>) {}
        }
        let dev = DeviceSpec::tesla_c2050();
        let mut g = GlobalMem::<C64>::new();
        let cm = ConstantMemory::new(&dev);
        let err = launch(
            &dev,
            &Hog,
            LaunchConfig::new(1, 32),
            &mut g,
            &cm,
            LaunchOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, LaunchError::SharedOverflow { .. }));
    }

    #[test]
    fn timing_report_is_populated() {
        let n = 1024;
        let (dev, mut g, cm, k) = setup(n);
        let cfg = LaunchConfig::cover(n, 32);
        let report = launch(&dev, &k, cfg, &mut g, &cm, LaunchOptions::default()).unwrap();
        assert!(report.timing.kernel_seconds > 0.0);
        assert!(report.timing.total_seconds() > report.timing.kernel_seconds);
        assert!(report.occupancy.blocks_per_sm >= 1);
        let shown = format!("{report}");
        assert!(shown.contains("caxpy"));
    }
}
