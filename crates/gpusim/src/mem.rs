//! Simulated device memory spaces: global (typed buffers with virtual
//! byte addresses) and constant (a capacity-enforced byte arena).

use crate::device::DeviceSpec;
use crate::value::DeviceValue;
use std::fmt;

/// Handle to a global-memory buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub(crate) usize);

/// Global device memory: a set of typed buffers, each with a virtual
/// 256-byte-aligned base address so the coalescing analyzer can reason
/// about real byte addresses.
#[derive(Debug, Clone)]
pub struct GlobalMem<T> {
    buffers: Vec<Vec<T>>,
    bases: Vec<u64>,
    next_base: u64,
}

impl<T: DeviceValue> GlobalMem<T> {
    pub fn new() -> Self {
        GlobalMem {
            buffers: Vec::new(),
            bases: Vec::new(),
            next_base: 0x1000, // device allocations never start at null
        }
    }

    /// Allocate a zero-initialized buffer of `len` elements.
    pub fn alloc(&mut self, len: usize) -> BufferId {
        let id = BufferId(self.buffers.len());
        self.buffers.push(vec![T::zero(); len]);
        self.bases.push(self.next_base);
        let bytes = (len * T::DEVICE_BYTES) as u64;
        self.next_base += (bytes + 255) & !255; // keep bases 256-aligned
        id
    }

    /// Host-side write (cudaMemcpy host→device); not traced.
    pub fn host_write(&mut self, id: BufferId, offset: usize, data: &[T]) {
        self.buffers[id.0][offset..offset + data.len()].copy_from_slice(data);
    }

    /// Host-side read (device→host); not traced.
    pub fn host_read(&self, id: BufferId) -> &[T] {
        &self.buffers[id.0]
    }

    pub fn len(&self, id: BufferId) -> usize {
        self.buffers[id.0].len()
    }

    pub fn is_empty(&self, id: BufferId) -> bool {
        self.buffers[id.0].is_empty()
    }

    /// Virtual byte address of element `idx` of buffer `id`.
    #[inline]
    pub fn addr(&self, id: BufferId, idx: usize) -> u64 {
        self.bases[id.0] + (idx * T::DEVICE_BYTES) as u64
    }

    #[inline]
    pub(crate) fn read(&self, id: BufferId, idx: usize) -> T {
        self.buffers[id.0][idx]
    }

    pub(crate) fn write(&mut self, id: BufferId, idx: usize, v: T) {
        self.buffers[id.0][idx] = v;
    }

    /// Total allocated bytes (device footprint).
    pub fn allocated_bytes(&self) -> usize {
        self.buffers.iter().map(|b| b.len() * T::DEVICE_BYTES).sum()
    }
}

impl<T: DeviceValue> Default for GlobalMem<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Handle to a constant-memory allocation (byte offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstId {
    pub(crate) offset: usize,
    pub(crate) len: usize,
}

impl ConstId {
    pub fn len(&self) -> usize {
        self.len
    }
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Error: a constant-memory allocation exceeded the device budget —
/// the failure mode the paper hits at 2,048 monomials ("the capacity of
/// the constant memory was not sufficient to hold the exponents and
/// positions of all 2,048 monomials").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstantOverflow {
    pub requested_total: usize,
    pub budget: usize,
}

impl fmt::Display for ConstantOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "constant memory exhausted: need {} bytes, budget is {} bytes",
            self.requested_total, self.budget
        )
    }
}

impl std::error::Error for ConstantOverflow {}

/// Constant memory: a read-only byte arena with the device's capacity
/// enforced at allocation time.
///
/// Regions can be returned with [`ConstantMemory::free`] (how a
/// residency session evicts an encoded system); freed regions coalesce
/// and are reused first-fit by later allocations, so a long-lived
/// serving arena does not leak budget. [`ConstantMemory::used`] counts
/// **live** bytes only.
#[derive(Debug, Clone)]
pub struct ConstantMemory {
    bytes: Vec<u8>,
    budget: usize,
    /// Free regions `(offset, len)`, sorted by offset, coalesced.
    free: Vec<(usize, usize)>,
    /// Live (allocated, not freed) bytes — the budget denominator.
    live: usize,
}

impl ConstantMemory {
    pub fn new(device: &DeviceSpec) -> Self {
        ConstantMemory {
            bytes: Vec::new(),
            budget: device.constant_budget(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Allocate and fill a region; fails if the live total would
    /// exceed the budget. Freed regions are reused first-fit (lowest
    /// offset wins — deterministic) before the arena grows.
    pub fn alloc(&mut self, data: &[u8]) -> Result<ConstId, ConstantOverflow> {
        let requested_total = self.live + data.len();
        if requested_total > self.budget {
            return Err(ConstantOverflow {
                requested_total,
                budget: self.budget,
            });
        }
        // First fit over the sorted free list.
        if let Some(i) = self.free.iter().position(|&(_, len)| len >= data.len()) {
            let (offset, len) = self.free[i];
            if len == data.len() {
                self.free.remove(i);
            } else {
                self.free[i] = (offset + data.len(), len - data.len());
            }
            self.bytes[offset..offset + data.len()].copy_from_slice(data);
            self.live += data.len();
            return Ok(ConstId {
                offset,
                len: data.len(),
            });
        }
        let offset = self.bytes.len();
        self.bytes.extend_from_slice(data);
        self.live += data.len();
        Ok(ConstId {
            offset,
            len: data.len(),
        })
    }

    /// Return a region to the arena: its bytes become reusable by
    /// later allocations and stop counting against the budget.
    /// Zero-length regions are a no-op. Freeing the same region twice
    /// is a caller bug (debug-asserted).
    pub fn free(&mut self, id: ConstId) {
        if id.len == 0 {
            return;
        }
        debug_assert!(
            !self
                .free
                .iter()
                .any(|&(o, l)| id.offset < o + l && o < id.offset + id.len),
            "double free of constant region at offset {}",
            id.offset
        );
        self.live -= id.len;
        let at = self
            .free
            .iter()
            .position(|&(o, _)| o > id.offset)
            .unwrap_or(self.free.len());
        self.free.insert(at, (id.offset, id.len));
        // Coalesce neighbours so big systems can land in reused space.
        let mut i = at.saturating_sub(1);
        while i + 1 < self.free.len() {
            let (o0, l0) = self.free[i];
            let (o1, l1) = self.free[i + 1];
            if o0 + l0 == o1 {
                self.free[i] = (o0, l0 + l1);
                self.free.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }

    /// Live bytes (allocated and not freed) — what counts against the
    /// budget.
    pub fn used(&self) -> usize {
        self.live
    }

    pub fn budget(&self) -> usize {
        self.budget
    }

    #[inline]
    pub(crate) fn read_u8(&self, id: ConstId, idx: usize) -> u8 {
        debug_assert!(idx < id.len);
        self.bytes[id.offset + idx]
    }

    /// Read a little-endian `u64` word at element index `idx` (byte
    /// offset `8 * idx`) — the packed exponent-key encodings store
    /// whole words.
    #[inline]
    pub(crate) fn read_u64(&self, id: ConstId, idx: usize) -> u64 {
        let at = idx * 8;
        debug_assert!(at + 8 <= id.len);
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.bytes[id.offset + at..id.offset + at + 8]);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `u32` at element index `idx` (byte offset
    /// `4 * idx`) — the ragged-support monomial headers.
    #[inline]
    pub(crate) fn read_u32(&self, id: ConstId, idx: usize) -> u32 {
        let at = idx * 4;
        debug_assert!(at + 4 <= id.len);
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.bytes[id.offset + at..id.offset + at + 4]);
        u32::from_le_bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_complex::C64;

    #[test]
    fn buffers_get_disjoint_aligned_bases() {
        let mut g = GlobalMem::<C64>::new();
        let a = g.alloc(3); // 48 bytes
        let b = g.alloc(100);
        assert_eq!(g.addr(a, 0) % 256, 0);
        assert_eq!(g.addr(b, 0) % 256, 0);
        assert!(g.addr(b, 0) >= g.addr(a, 0) + 48);
        assert_eq!(g.addr(a, 2) - g.addr(a, 0), 32);
    }

    #[test]
    fn host_write_read_round_trip() {
        let mut g = GlobalMem::<C64>::new();
        let a = g.alloc(4);
        g.host_write(a, 1, &[C64::from_f64(1.0, 2.0), C64::from_f64(3.0, 4.0)]);
        assert_eq!(g.host_read(a)[0], C64::zero());
        assert_eq!(g.host_read(a)[1], C64::from_f64(1.0, 2.0));
        assert_eq!(g.host_read(a)[2], C64::from_f64(3.0, 4.0));
        assert_eq!(g.len(a), 4);
        assert_eq!(g.allocated_bytes(), 64);
    }

    #[test]
    fn constant_capacity_enforced() {
        let dev = DeviceSpec::toy(4);
        let mut c = ConstantMemory::new(&dev);
        assert_eq!(c.budget(), 1024);
        let a = c.alloc(&[7u8; 1000]).unwrap();
        assert_eq!(c.read_u8(a, 999), 7);
        let err = c.alloc(&[0u8; 100]).unwrap_err();
        assert_eq!(err.requested_total, 1100);
        assert_eq!(err.budget, 1024);
        // exact fit works
        let b = c.alloc(&[1u8; 24]).unwrap();
        assert_eq!(c.used(), 1024);
        assert_eq!(c.read_u8(b, 0), 1);
    }

    #[test]
    fn c2050_reserved_bytes_shrink_budget() {
        let dev = DeviceSpec::tesla_c2050();
        let mut c = ConstantMemory::new(&dev);
        // The paper's k=16 encoding of 2048 monomials is exactly 65,536
        // payload bytes: it cannot fit alongside the reserved region.
        assert!(c.alloc(&vec![0u8; 65_536]).is_err());
        // 1,536 monomials (Table 2's largest point) fit: 49,152 bytes.
        let mut c2 = ConstantMemory::new(&dev);
        assert!(c2.alloc(&vec![0u8; 1536 * 2 * 16]).is_ok());
    }
}
