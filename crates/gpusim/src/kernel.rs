//! The kernel authoring interface: [`Kernel`], [`BlockCtx`] and
//! [`ThreadCtx`].
//!
//! A kernel describes the work of one thread *block*, phrased as one or
//! more [`BlockCtx::threads`] segments separated by implicit barriers —
//! the structured equivalent of CUDA code with `__syncthreads()`
//! between phases. Within a segment each thread runs to completion
//! (valid because segments are data-parallel between barriers), while
//! every traced operation carries enough information for the warp
//! analyzer to reconstruct lockstep SIMT execution.

use crate::mem::{BufferId, ConstId, ConstantMemory, GlobalMem};
use crate::trace::{Ev, ThreadTrace};
use crate::value::DeviceValue;

/// Grid/block geometry of a launch (1-D, as in the paper's kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of blocks.
    pub grid_dim: u32,
    /// Threads per block.
    pub block_dim: u32,
}

impl LaunchConfig {
    pub fn new(grid_dim: u32, block_dim: u32) -> Self {
        LaunchConfig {
            grid_dim,
            block_dim,
        }
    }

    /// Blocks needed to cover `work` items with `block_dim` threads.
    pub fn cover(work: usize, block_dim: u32) -> Self {
        LaunchConfig {
            grid_dim: Self::blocks_for(work, block_dim),
            block_dim,
        }
    }

    /// Blocks needed to cover `work` items with `block_dim` threads (at
    /// least one, so empty work still launches a guarded block).
    pub fn blocks_for(work: usize, block_dim: u32) -> u32 {
        (work.div_ceil(block_dim.max(1) as usize) as u32).max(1)
    }

    /// A linearized two-dimensional grid: `outer` independent problem
    /// instances ("points"), each covered by
    /// `blocks_for(inner_work, block_dim)` blocks, laid out
    /// **point-major**: block `b` serves instance `b / inner` at inner
    /// block index `b % inner`, where `inner = blocks_for(...)`.
    ///
    /// This is how a batched launch amortizes launch overhead: one grid
    /// of `outer × inner` blocks replaces `outer` separate launches of
    /// `inner` blocks, while each block's program stays identical to
    /// the single-instance kernel — the property that keeps batched
    /// results bit-for-bit equal to single-instance results. Per-launch
    /// counters need no special casing: they are reduced over all
    /// blocks of the (larger) grid in block order.
    pub fn cover_batch(outer: usize, inner_work: usize, block_dim: u32) -> Self {
        let inner = Self::blocks_for(inner_work, block_dim);
        LaunchConfig {
            grid_dim: (outer.max(1) as u32).saturating_mul(inner),
            block_dim,
        }
    }

    pub fn total_threads(&self) -> u64 {
        self.grid_dim as u64 * self.block_dim as u64
    }
}

/// A device kernel, generic over the element type it computes with.
pub trait Kernel<T: DeviceValue>: Sync {
    /// Name for reports.
    fn name(&self) -> &str;

    /// Shared-memory elements (of `T`) each block allocates. The
    /// occupancy model charges `shared_elems * T::DEVICE_BYTES` bytes.
    fn shared_elems(&self, block_dim: u32) -> usize;

    /// Registers per thread (occupancy input); default matches a
    /// typical small kernel.
    fn regs_per_thread(&self) -> u32 {
        24
    }

    /// The block program.
    fn run_block(&self, blk: &mut BlockCtx<'_, T>);
}

/// Per-block execution context handed to [`Kernel::run_block`].
pub struct BlockCtx<'a, T: DeviceValue> {
    pub(crate) block_id: u32,
    pub(crate) block_dim: u32,
    pub(crate) grid_dim: u32,
    pub(crate) global: &'a GlobalMem<T>,
    pub(crate) constant: &'a ConstantMemory,
    pub(crate) shared: Vec<T>,
    pub(crate) traces: Vec<ThreadTrace>,
    pub(crate) writes: Vec<(BufferId, usize, T)>,
}

impl<'a, T: DeviceValue> BlockCtx<'a, T> {
    pub(crate) fn new(
        block_id: u32,
        cfg: LaunchConfig,
        shared_elems: usize,
        global: &'a GlobalMem<T>,
        constant: &'a ConstantMemory,
    ) -> Self {
        BlockCtx {
            block_id,
            block_dim: cfg.block_dim,
            grid_dim: cfg.grid_dim,
            global,
            constant,
            shared: vec![T::zero(); shared_elems],
            traces: vec![Vec::new(); cfg.block_dim as usize],
            writes: Vec::new(),
        }
    }

    #[inline]
    pub fn block_id(&self) -> u32 {
        self.block_id
    }

    #[inline]
    pub fn block_dim(&self) -> u32 {
        self.block_dim
    }

    #[inline]
    pub fn grid_dim(&self) -> u32 {
        self.grid_dim
    }

    /// Run one barrier-delimited segment: the closure is invoked once
    /// per thread of the block (in thread order), then a barrier marker
    /// is appended to every trace — the `__syncthreads()` at the end of
    /// the phase.
    pub fn threads(&mut self, mut body: impl FnMut(&mut ThreadCtx<'_, T>)) {
        for tid in 0..self.block_dim {
            // Move this thread's trace out for the duration of its run
            // so `shared`/`writes` can be borrowed alongside it.
            let mut trace = std::mem::take(&mut self.traces[tid as usize]);
            let mut ctx = ThreadCtx {
                tid,
                block_id: self.block_id,
                block_dim: self.block_dim,
                global: self.global,
                constant: self.constant,
                shared: &mut self.shared,
                trace: &mut trace,
                writes: &mut self.writes,
            };
            body(&mut ctx);
            self.traces[tid as usize] = trace;
        }
        for t in &mut self.traces {
            t.push(Ev::Sync);
        }
    }
}

/// Per-thread view: every method that touches memory or does arithmetic
/// appends a trace event, mirroring what the hardware would issue.
pub struct ThreadCtx<'a, T: DeviceValue> {
    tid: u32,
    block_id: u32,
    block_dim: u32,
    global: &'a GlobalMem<T>,
    constant: &'a ConstantMemory,
    shared: &'a mut Vec<T>,
    trace: &'a mut ThreadTrace,
    writes: &'a mut Vec<(BufferId, usize, T)>,
}

impl<'a, T: DeviceValue> ThreadCtx<'a, T> {
    /// Thread index within the block.
    #[inline]
    pub fn tid(&self) -> u32 {
        self.tid
    }

    #[inline]
    pub fn block_id(&self) -> u32 {
        self.block_id
    }

    #[inline]
    pub fn block_dim(&self) -> u32 {
        self.block_dim
    }

    /// `blockIdx.x * blockDim.x + threadIdx.x`.
    #[inline]
    pub fn global_tid(&self) -> u32 {
        self.block_id * self.block_dim + self.tid
    }

    /// Global-memory load.
    #[inline]
    pub fn gload(&mut self, buf: BufferId, idx: usize) -> T {
        self.trace.push(Ev::GLoad {
            addr: self.global.addr(buf, idx),
        });
        self.global.read(buf, idx)
    }

    /// Global-memory store (buffered; becomes visible after the launch,
    /// matching CUDA's lack of inter-block ordering within a launch).
    #[inline]
    pub fn gstore(&mut self, buf: BufferId, idx: usize, v: T) {
        self.trace.push(Ev::GStore {
            addr: self.global.addr(buf, idx),
        });
        self.writes.push((buf, idx, v));
    }

    /// Shared-memory load (element index within the block's region).
    #[inline]
    pub fn sload(&mut self, idx: usize) -> T {
        self.trace.push(Ev::SLoad {
            addr: (idx * T::DEVICE_BYTES) as u32,
        });
        self.shared[idx]
    }

    /// Shared-memory store.
    #[inline]
    pub fn sstore(&mut self, idx: usize, v: T) {
        self.trace.push(Ev::SStore {
            addr: (idx * T::DEVICE_BYTES) as u32,
        });
        self.shared[idx] = v;
    }

    /// Constant-memory byte load.
    #[inline]
    pub fn cload_u8(&mut self, id: ConstId, idx: usize) -> u8 {
        self.trace.push(Ev::CLoad {
            addr: (id.offset + idx) as u32,
            bytes: 1,
        });
        self.constant.read_u8(id, idx)
    }

    /// Constant-memory word load (little-endian `u64` at element index
    /// `idx`) — how the packed exponent-key encoding reads a whole
    /// key word in one charged access.
    #[inline]
    pub fn cload_u64(&mut self, id: ConstId, idx: usize) -> u64 {
        self.trace.push(Ev::CLoad {
            addr: (id.offset + idx * 8) as u32,
            bytes: 8,
        });
        self.constant.read_u64(id, idx)
    }

    /// Constant-memory `u32` load (little-endian, element index `idx`)
    /// — how the sparse pipeline reads a ragged monomial header.
    #[inline]
    pub fn cload_u32(&mut self, id: ConstId, idx: usize) -> u32 {
        self.trace.push(Ev::CLoad {
            addr: (id.offset + idx * 4) as u32,
            bytes: 4,
        });
        self.constant.read_u32(id, idx)
    }

    /// Traced multiply.
    #[inline]
    pub fn mul(&mut self, a: T, b: T) -> T {
        self.trace.push(Ev::Flop {
            weight: T::MUL_FLOPS,
        });
        a.dmul(b)
    }

    /// Traced add.
    #[inline]
    pub fn add(&mut self, a: T, b: T) -> T {
        self.trace.push(Ev::Flop {
            weight: T::ADD_FLOPS,
        });
        a.dadd(b)
    }

    /// Traced subtract.
    #[inline]
    pub fn sub(&mut self, a: T, b: T) -> T {
        self.trace.push(Ev::Flop {
            weight: T::ADD_FLOPS,
        });
        a.dsub(b)
    }

    /// Charge `count` integer/address operations (index decoding).
    #[inline]
    pub fn iops(&mut self, count: u32) {
        self.trace.push(Ev::IOp { count });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use polygpu_complex::C64;

    #[test]
    fn launch_config_cover() {
        let c = LaunchConfig::cover(100, 32);
        assert_eq!(c.grid_dim, 4);
        assert_eq!(c.block_dim, 32);
        assert_eq!(c.total_threads(), 128);
        assert_eq!(LaunchConfig::cover(0, 32).grid_dim, 1);
        assert_eq!(LaunchConfig::cover(32, 32).grid_dim, 1);
        assert_eq!(LaunchConfig::cover(33, 32).grid_dim, 2);
    }

    #[test]
    fn cover_batch_is_point_major() {
        // 100 items per point at 32 threads/block -> 4 inner blocks.
        let inner = LaunchConfig::blocks_for(100, 32);
        assert_eq!(inner, 4);
        let c = LaunchConfig::cover_batch(5, 100, 32);
        assert_eq!(c.grid_dim, 20);
        assert_eq!(c.block_dim, 32);
        // Point-major linearization: the first `inner` blocks belong to
        // point 0, the next `inner` to point 1, and so on.
        let decode = |b: u32| (b / inner, b % inner);
        assert_eq!(decode(0), (0, 0));
        assert_eq!(decode(3), (0, 3));
        assert_eq!(decode(4), (1, 0));
        assert_eq!(decode(11), (2, 3));
        assert_eq!(decode(19), (4, 3));
        // Degenerate cases.
        assert_eq!(
            LaunchConfig::cover_batch(1, 100, 32),
            LaunchConfig::cover(100, 32)
        );
        assert_eq!(LaunchConfig::cover_batch(0, 100, 32).grid_dim, 4);
        assert_eq!(LaunchConfig::cover_batch(3, 0, 32).grid_dim, 3);
    }

    #[test]
    fn block_ctx_threads_and_barriers() {
        let dev = DeviceSpec::toy(4);
        let mut g = GlobalMem::<C64>::new();
        let buf = g.alloc(8);
        g.host_write(buf, 0, &[C64::from_f64(5.0, 0.0); 8]);
        let cm = ConstantMemory::new(&dev);
        let cfg = LaunchConfig::new(2, 4);
        let mut blk = BlockCtx::new(0, cfg, 4, &g, &cm);
        // segment 1: each thread loads global, stores to shared
        blk.threads(|t| {
            let v = t.gload(buf, t.tid() as usize);
            t.sstore(t.tid() as usize, v);
        });
        // segment 2: each thread reads neighbor's shared value (needs
        // the barrier to be meaningful) and stores doubled to global
        blk.threads(|t| {
            let neighbor = (t.tid() as usize + 1) % 4;
            let v = t.sload(neighbor);
            let d = t.add(v, v);
            t.gstore(buf, 4 + t.tid() as usize, d);
        });
        // traces: 4 threads, each 2+sync+3+sync events
        assert_eq!(blk.traces.len(), 4);
        for tr in &blk.traces {
            assert_eq!(tr.len(), 7);
            assert_eq!(tr[2], Ev::Sync);
            assert_eq!(tr[6], Ev::Sync);
        }
        // writes buffered, not applied: element 4 still holds its
        // initial value rather than the doubled one
        assert_eq!(blk.writes.len(), 4);
        assert_eq!(g.host_read(buf)[4], C64::from_f64(5.0, 0.0));
        assert_eq!(blk.writes[0].2, C64::from_f64(10.0, 0.0));
    }

    #[test]
    fn global_tid_arithmetic() {
        let dev = DeviceSpec::toy(4);
        let g = GlobalMem::<C64>::new();
        let cm = ConstantMemory::new(&dev);
        let mut blk = BlockCtx::new(3, LaunchConfig::new(5, 4), 0, &g, &cm);
        let mut tids = Vec::new();
        blk.threads(|t| tids.push(t.global_tid()));
        assert_eq!(tids, vec![12, 13, 14, 15]);
    }
}
