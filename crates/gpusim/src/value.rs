//! The value type kernels compute with on the simulated device.

use polygpu_complex::{Complex, Real};

/// A scalar that can live in simulated device memory.
///
/// `DEVICE_BYTES` drives address arithmetic (coalescing, bank
/// conflicts, occupancy); `MUL_FLOPS`/`ADD_FLOPS` drive the compute-cost
/// model in units of hardware double-precision operations.
pub trait DeviceValue: Copy + Send + Sync + 'static {
    const DEVICE_BYTES: usize;
    const MUL_FLOPS: u32;
    const ADD_FLOPS: u32;
    fn zero() -> Self;
    fn one() -> Self;
    /// Multiply, as the device would (the caller logs the cost).
    fn dmul(self, b: Self) -> Self;
    fn dadd(self, b: Self) -> Self;
    fn dsub(self, b: Self) -> Self;
}

impl<R: Real> DeviceValue for Complex<R> {
    /// A complex value is two reals: 16 bytes for `Complex<f64>`,
    /// 32 for complex double-double — the figures of the paper's §3.2
    /// shared-memory budget.
    const DEVICE_BYTES: usize = 2 * R::DEVICE_BYTES;
    /// Schoolbook complex multiply: 4 real muls + 2 real adds.
    const MUL_FLOPS: u32 = 6 * R::FLOP_WEIGHT;
    const ADD_FLOPS: u32 = 2 * R::FLOP_WEIGHT;

    fn zero() -> Self {
        Complex::zero()
    }
    fn one() -> Self {
        Complex::one()
    }
    #[inline]
    fn dmul(self, b: Self) -> Self {
        self * b
    }
    #[inline]
    fn dadd(self, b: Self) -> Self {
        self + b
    }
    #[inline]
    fn dsub(self, b: Self) -> Self {
        self - b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_complex::C64;
    use polygpu_qd::Dd;

    #[test]
    fn complex_double_device_footprint() {
        assert_eq!(<C64 as DeviceValue>::DEVICE_BYTES, 16);
        assert_eq!(<Complex<Dd> as DeviceValue>::DEVICE_BYTES, 32);
    }

    #[test]
    fn flop_weights_scale_with_precision() {
        assert_eq!(<C64 as DeviceValue>::MUL_FLOPS, 6);
        assert_eq!(<Complex<Dd> as DeviceValue>::MUL_FLOPS, 48);
    }

    #[test]
    fn arithmetic_delegates() {
        let a = C64::from_f64(1.0, 2.0);
        let b = C64::from_f64(3.0, -4.0);
        assert_eq!(a.dmul(b), a * b);
        assert_eq!(a.dadd(b), a + b);
        assert_eq!(a.dsub(b), a - b);
        assert_eq!(<C64 as DeviceValue>::zero(), C64::zero());
        assert_eq!(<C64 as DeviceValue>::one(), C64::one());
    }
}
