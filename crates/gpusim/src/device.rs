//! Device specifications for the simulated SIMT processor.
//!
//! The preset [`DeviceSpec::tesla_c2050`] matches the card the paper
//! benchmarks on (§4): "The processor clock of the NVIDIA Tesla C2050
//! Computing Processor runs at 1147 Mhz. The graphics card has 14
//! multiprocessors, each with 32 cores, for a total of 448 cores."
//! Remaining figures come from the Fermi (GF100, compute capability 2.0)
//! whitepaper and the CUDA 4.0 programming guide the paper used.

/// Static description of a simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    pub name: String,
    /// Streaming multiprocessors (SMs).
    pub sm_count: u32,
    /// Scalar cores per SM.
    pub cores_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Shader clock in Hz.
    pub clock_hz: f64,
    /// Shared memory per SM in bytes (Fermi: 48 KiB in the
    /// shared-preferred configuration the paper's §3.2 arithmetic uses:
    /// "49,152" bytes).
    pub shared_mem_per_sm: usize,
    /// Constant memory in bytes (the paper: "the capacity of the
    /// constant memory, 65,536 bytes").
    pub constant_mem: usize,
    /// Bytes of constant memory reserved by the runtime for kernel
    /// arguments and launch metadata; user data must fit in
    /// `constant_mem - constant_reserved`. This models why the paper
    /// could not fit 2,048 k=16 monomials whose payload alone is
    /// exactly 65,536 bytes.
    pub constant_reserved: usize,
    /// Max resident threads per SM (Fermi: 1536).
    pub max_threads_per_sm: u32,
    /// Max resident blocks per SM (Fermi: 8).
    pub max_blocks_per_sm: u32,
    /// Max threads per block (Fermi: 1024).
    pub max_threads_per_block: u32,
    /// 32-bit registers per SM (Fermi: 32768).
    pub registers_per_sm: u32,
    /// Global-memory bandwidth in bytes/second (C2050: 144 GB/s).
    pub dram_bandwidth: f64,
    /// Global-memory latency in shader cycles (Fermi: ~400–800; we use
    /// the commonly cited 500).
    pub dram_latency: u32,
    /// Shared-memory banks (Fermi: 32, 4-byte wide).
    pub shared_banks: u32,
    /// Issue cycles for one warp-wide double-precision operation
    /// (Fermi GF100: 16 FP64 units per 32-core SM => 2 cycles; the
    /// Tesla-class C2050 runs FP64 at half the FP32 rate).
    pub fp64_issue_cycles: u32,
    /// Issue cycles for one warp-wide 32-bit integer/byte operation.
    pub int_issue_cycles: u32,
    /// Host-side overhead per kernel launch, seconds (driver queueing,
    /// parameter setup). CUDA 4.0-era launches cost 5–15 µs.
    pub launch_overhead: f64,
    /// Host↔device transfer bandwidth in bytes/second (PCIe 2.0 x16
    /// effective: ~5 GB/s) and fixed per-transfer latency in seconds.
    pub pcie_bandwidth: f64,
    pub pcie_latency: f64,
    /// Memory segment size for coalescing analysis in bytes (Fermi L1
    /// cache line: 128).
    pub coalesce_segment: usize,
}

impl DeviceSpec {
    /// The NVIDIA Tesla C2050 of the paper's experiments.
    pub fn tesla_c2050() -> Self {
        DeviceSpec {
            name: "NVIDIA Tesla C2050 (simulated)".to_string(),
            sm_count: 14,
            cores_per_sm: 32,
            warp_size: 32,
            clock_hz: 1.147e9,
            shared_mem_per_sm: 49_152,
            constant_mem: 65_536,
            constant_reserved: 256,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            max_threads_per_block: 1024,
            registers_per_sm: 32_768,
            dram_bandwidth: 144.0e9,
            dram_latency: 500,
            shared_banks: 32,
            fp64_issue_cycles: 2,
            int_issue_cycles: 1,
            launch_overhead: 8.0e-6,
            pcie_bandwidth: 5.0e9,
            pcie_latency: 10.0e-6,
            coalesce_segment: 128,
        }
    }

    /// A single-SM toy device for deterministic unit tests.
    pub fn toy(warp_size: u32) -> Self {
        DeviceSpec {
            name: "toy".to_string(),
            sm_count: 1,
            cores_per_sm: warp_size,
            warp_size,
            clock_hz: 1.0e9,
            shared_mem_per_sm: 16_384,
            constant_mem: 1024,
            constant_reserved: 0,
            max_threads_per_sm: 512,
            max_blocks_per_sm: 4,
            max_threads_per_block: 256,
            registers_per_sm: 8192,
            dram_bandwidth: 10.0e9,
            dram_latency: 100,
            shared_banks: warp_size.max(1),
            fp64_issue_cycles: 2,
            int_issue_cycles: 1,
            launch_overhead: 1.0e-6,
            pcie_bandwidth: 1.0e9,
            pcie_latency: 1.0e-6,
            coalesce_segment: 128,
        }
    }

    /// Usable constant-memory bytes for user data.
    pub fn constant_budget(&self) -> usize {
        self.constant_mem - self.constant_reserved
    }

    /// Total scalar cores.
    pub fn total_cores(&self) -> u32 {
        self.sm_count * self.cores_per_sm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2050_matches_paper_figures() {
        let d = DeviceSpec::tesla_c2050();
        assert_eq!(d.sm_count, 14);
        assert_eq!(d.cores_per_sm, 32);
        assert_eq!(d.total_cores(), 448);
        assert_eq!(d.clock_hz, 1.147e9);
        assert_eq!(d.constant_mem, 65_536);
        assert_eq!(d.shared_mem_per_sm, 49_152);
        assert_eq!(d.warp_size, 32);
    }

    #[test]
    fn constant_budget_below_capacity() {
        let d = DeviceSpec::tesla_c2050();
        assert!(d.constant_budget() < d.constant_mem);
        assert!(d.constant_budget() >= 65_536 - 512);
    }
}
