//! Per-thread execution traces.
//!
//! Kernels run as ordinary Rust closures, but every memory access and
//! arithmetic operation goes through the [`crate::kernel::ThreadCtx`]
//! API, which appends one [`Ev`] per operation. The warp analyzer
//! (`analysis`) then replays the traces of the 32 threads of each warp
//! in lockstep — slot `s` of every lane is treated as one warp-wide
//! instruction, which is exact for the divergence-free kernels the
//! paper designs and detected-and-flagged otherwise.

/// One traced operation of one thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Ev {
    /// Global-memory load of one element (element size is uniform per
    /// launch).
    GLoad { addr: u64 },
    /// Global-memory store of one element.
    GStore { addr: u64 },
    /// Shared-memory load at a byte offset within the block's region.
    SLoad { addr: u32 },
    /// Shared-memory store.
    SStore { addr: u32 },
    /// Constant-memory load of `bytes` bytes at an absolute offset.
    CLoad { addr: u32, bytes: u8 },
    /// Arithmetic costing `weight` hardware-double flops.
    Flop { weight: u32 },
    /// `count` integer/address operations (index decode etc.).
    IOp { count: u32 },
    /// Block-wide barrier marker (`__syncthreads()` boundary). Inserted
    /// by the executor between `threads()` segments for every thread,
    /// active or not, so segments re-align across the warp.
    Sync,
}

impl Ev {
    /// Coarse kind used to check lockstep compatibility across a warp.
    pub fn kind(&self) -> EvKind {
        match self {
            Ev::GLoad { .. } => EvKind::GLoad,
            Ev::GStore { .. } => EvKind::GStore,
            Ev::SLoad { .. } => EvKind::SLoad,
            Ev::SStore { .. } => EvKind::SStore,
            Ev::CLoad { .. } => EvKind::CLoad,
            Ev::Flop { .. } => EvKind::Flop,
            Ev::IOp { .. } => EvKind::IOp,
            Ev::Sync => EvKind::Sync,
        }
    }
}

/// Event kind without payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvKind {
    GLoad,
    GStore,
    SLoad,
    SStore,
    CLoad,
    Flop,
    IOp,
    Sync,
}

/// The trace of one thread: its ordered event list.
pub type ThreadTrace = Vec<Ev>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_discriminate() {
        assert_eq!(Ev::GLoad { addr: 1 }.kind(), EvKind::GLoad);
        assert_eq!(Ev::GStore { addr: 1 }.kind(), EvKind::GStore);
        assert_ne!(Ev::GLoad { addr: 1 }.kind(), Ev::GStore { addr: 1 }.kind());
        assert_eq!(Ev::Flop { weight: 3 }.kind(), Ev::Flop { weight: 9 }.kind());
        assert_eq!(Ev::Sync.kind(), EvKind::Sync);
    }
}
