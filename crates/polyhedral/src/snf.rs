//! Integer diagonalization for binomial-system root enumeration.
//!
//! To enumerate the `|det V|` roots of `x^V = β` we need coset
//! representatives of `Z^n / V·Z^n`. Diagonalize `D = A·V·B` with
//! `A, B` unimodular (elementary integer row/column operations); then
//! `V·Z^n = A⁻¹·D·Z^n`, so `k = A⁻¹·r` over the box `r ∈ ∏ [0, dᵢ)`
//! enumerates the quotient exactly once. Only `A⁻¹` and the diagonal
//! are needed, so the routine tracks the inverse of the row transform
//! directly (column operations on `A⁻¹`) and discards `B`.

/// Diagonalize `v` (square, nonsingular): returns `(diag, ainv)` with
/// `diag[i] > 0`, `∏ diag[i] = |det v|`, and `ainv` the inverse of the
/// accumulated unimodular row transform. Panics if `v` is singular
/// (callers reject `det == 0` cells before building start systems).
#[allow(clippy::needless_range_loop)] // row k reduces row i in place
pub(crate) fn diagonalize(v: &[Vec<i64>]) -> (Vec<i64>, Vec<Vec<i64>>) {
    let n = v.len();
    let mut m: Vec<Vec<i64>> = v.to_vec();
    // ainv starts as the identity; every row operation `E` applied to
    // `m` right-multiplies ainv by `E⁻¹` (a column operation).
    let mut ainv: Vec<Vec<i64>> = (0..n)
        .map(|i| (0..n).map(|j| i64::from(i == j)).collect())
        .collect();

    for k in 0..n {
        loop {
            // Pivot: the minimum-magnitude nonzero entry of the
            // trailing submatrix, moved to (k, k).
            let mut pivot: Option<(usize, usize)> = None;
            for i in k..n {
                for j in k..n {
                    if m[i][j] != 0 && pivot.is_none_or(|(pi, pj)| m[i][j].abs() < m[pi][pj].abs())
                    {
                        pivot = Some((i, j));
                    }
                }
            }
            let (pi, pj) = pivot.expect("diagonalize: singular matrix");
            if pi != k {
                m.swap(pi, k);
                for row in ainv.iter_mut() {
                    row.swap(pi, k);
                }
            }
            if pj != k {
                for row in m.iter_mut() {
                    row.swap(pj, k);
                }
            }
            // Reduce column k below the pivot (row ops, tracked) and
            // row k right of the pivot (column ops, untracked).
            let mut clean = true;
            for i in (k + 1)..n {
                if m[i][k] != 0 {
                    let q = m[i][k].div_euclid(m[k][k]);
                    if q != 0 {
                        for j in k..n {
                            m[i][j] -= q * m[k][j];
                        }
                        // E = (row i -= q·row k) ⇒ ainv·E⁻¹: col k += q·col i.
                        for row in ainv.iter_mut() {
                            let add = q * row[i];
                            row[k] += add;
                        }
                    }
                    if m[i][k] != 0 {
                        clean = false;
                    }
                }
            }
            for j in (k + 1)..n {
                if m[k][j] != 0 {
                    let q = m[k][j].div_euclid(m[k][k]);
                    if q != 0 {
                        for row in m.iter_mut().skip(k) {
                            row[j] -= q * row[k];
                        }
                    }
                    if m[k][j] != 0 {
                        clean = false;
                    }
                }
            }
            if clean {
                break;
            }
        }
        if m[k][k] < 0 {
            m[k][k] = -m[k][k];
            // E = (negate row k) is self-inverse: negate col k of ainv.
            for row in ainv.iter_mut() {
                row[k] = -row[k];
            }
        }
    }
    let diag = (0..n).map(|i| m[i][i]).collect();
    (diag, ainv)
}

/// `|det v|` by fraction-free (Bareiss) elimination over `i128` —
/// exact for the small exponent-difference matrices cells produce.
pub(crate) fn abs_det(v: &[Vec<i64>]) -> u128 {
    let n = v.len();
    let mut m: Vec<Vec<i128>> = v
        .iter()
        .map(|row| row.iter().map(|&x| x as i128).collect())
        .collect();
    let mut sign = 1i128;
    let mut prev = 1i128;
    for k in 0..n {
        if m[k][k] == 0 {
            let Some(swap) = (k + 1..n).find(|&i| m[i][k] != 0) else {
                return 0;
            };
            m.swap(k, swap);
            sign = -sign;
        }
        for i in (k + 1)..n {
            for j in (k + 1)..n {
                m[i][j] = (m[i][j] * m[k][k] - m[i][k] * m[k][j]) / prev;
            }
            m[i][k] = 0;
        }
        prev = m[k][k];
    }
    (sign * m[n - 1][n - 1]).unsigned_abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det_via_diag(v: &[Vec<i64>]) -> u128 {
        let (d, _) = diagonalize(v);
        d.iter().map(|&x| x as u128).product()
    }

    #[test]
    fn diagonal_product_matches_determinant() {
        let cases: Vec<Vec<Vec<i64>>> = vec![
            vec![vec![2, 0], vec![0, 3]],
            vec![vec![1, 2], vec![3, 4]],
            vec![vec![0, 1], vec![-1, 0]],
            vec![vec![2, 1, 0], vec![-1, 3, 2], vec![0, 4, -5]],
            vec![vec![1, 1], vec![-1, 2]],
        ];
        for v in cases {
            assert_eq!(det_via_diag(&v), abs_det(&v), "matrix {v:?}");
            assert!(det_via_diag(&v) > 0);
        }
    }

    #[test]
    fn ainv_enumerates_distinct_cosets() {
        // k = ainv·r over the diagonal box must hit |det| distinct
        // residues of Z^n / V·Z^n. Check by reducing k mod V·Z^n via
        // the diagonal form: A·k mod D must be distinct.
        let v = vec![vec![2, 1], vec![0, 3]];
        let (d, ainv) = diagonalize(&v);
        let count: i64 = d.iter().product();
        assert_eq!(count as u128, abs_det(&v));
        let mut seen = std::collections::HashSet::new();
        for r0 in 0..d[0] {
            for r1 in 0..d[1] {
                let k = [
                    ainv[0][0] * r0 + ainv[0][1] * r1,
                    ainv[1][0] * r0 + ainv[1][1] * r1,
                ];
                // Reduce k modulo the columns of V by brute force over
                // a small window; distinctness of representatives is
                // what the enumeration relies on.
                let mut canonical = None;
                'outer: for a in -12i64..12 {
                    for b in -12i64..12 {
                        let c = [
                            k[0] - (v[0][0] * a + v[0][1] * b),
                            k[1] - (v[1][0] * a + v[1][1] * b),
                        ];
                        if (0..2).contains(&c[0]) && (0..3).contains(&c[1]) {
                            canonical = Some(c);
                            break 'outer;
                        }
                    }
                }
                assert!(
                    seen.insert(canonical.expect("representative in window")),
                    "coset repeated at r = ({r0}, {r1})"
                );
            }
        }
        assert_eq!(seen.len() as i64, count);
    }
}
