//! `polygpu-polyhedral` — mixed-cell start systems for sparse targets.
//!
//! The total-degree start system tracks one path per Bézout root:
//! `∏ dᵢ` paths, most of which diverge to infinity when the target is
//! sparse. Bernstein's theorem bounds the number of isolated toric
//! roots by the **mixed volume** of the Newton polytopes instead, and
//! the Huber–Sturmfels construction realizes that bound with one
//! **binomial start system per mixed cell** of a lifted subdivision.
//!
//! This crate computes that data for the small-dimension sparse
//! targets the repository's solver handles:
//!
//! * [`lift`] — a deterministic integer lifting, a pure function of
//!   `(seed, polynomial, monomial)`; degenerate (tied) liftings re-lift
//!   with `seed + 1`, so the whole construction is reproducible from
//!   the support and one seed;
//! * [`cells`] — brute-force enumeration of the fine mixed cells of
//!   type `(1, …, 1)`: one support edge per polynomial whose lifted
//!   lower-hull condition holds (an `n × n` linear solve plus a
//!   minimality check per candidate);
//! * [`binomial`] — the binomial start system of one cell, its exact
//!   root count `|det V|` via an integer Smith normal form, and its
//!   root enumeration (deterministic, indexable, host-evaluated like
//!   the total-degree start system).
//!
//! The mixed volume is the sum of `|det V|` over the cells; for sparse
//! systems it is strictly below the Bézout number, so the solver
//! tracks strictly fewer paths for the same roots.
//!
//! ```
//! use polygpu_polyhedral::mixed_cell_starts;
//! use polygpu_polysys::parse_system;
//!
//! // Two sparse quadratics (no pure x² or y² terms): Bézout 4,
//! // mixed volume 2 — half the paths for the same roots.
//! let sys = parse_system::<f64>("x0*x1 + x0 + 1; x0*x1 + x1 + 2").unwrap();
//! let mc = mixed_cell_starts(&sys, 7).unwrap();
//! assert_eq!(mc.mixed_volume, 2);
//! assert_eq!(mc.bezout, 4);
//! ```

pub mod binomial;
pub mod cells;
pub mod lift;
mod snf;

pub use binomial::BinomialStart;
pub use cells::{
    mixed_cell_starts, CellError, MixedCell, MixedCellStarts, MAX_COMBINATIONS, MAX_DIM,
};
pub use lift::lift_value;
