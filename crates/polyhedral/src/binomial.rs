//! The binomial start system of one mixed cell.
//!
//! A cell picks two monomials `c_a·x^a + c_b·x^b` from each target
//! polynomial. Setting each binomial to zero gives `x^V = β` with
//! `V`'s rows the exponent differences `a_i − b_i` and
//! `β_i = −c_{b,i}/c_{a,i}`: exactly `|det V|` toric roots, computed
//! in closed form (`log x = V⁻¹(Log β + 2πi·k)` over the coset
//! representatives `k` of `Z^n/V·Z^n`). Like the total-degree
//! [`StartSystem`](polygpu_polysys::SystemEvaluator), the binomial
//! system is evaluated analytically on the host; only the target runs
//! on the device, so endpoints stay bit-identical across backends.

use crate::snf::{abs_det, diagonalize};
use polygpu_complex::{CMat, Complex, Real, C64};
use polygpu_polysys::{
    loop_evaluate_batch, BatchSystemEvaluator, Exp, SystemEval, SystemEvaluator,
};
use std::f64::consts::TAU;

/// One equation `c_a·x^a + c_b·x^b` of a binomial start system.
#[derive(Debug, Clone)]
pub struct BinomialEq {
    /// Exponent vector of the first monomial (length `n`).
    pub a: Vec<Exp>,
    pub ca: C64,
    /// Exponent vector of the second monomial (length `n`).
    pub b: Vec<Exp>,
    pub cb: C64,
}

/// A square binomial system with its roots enumerable by index —
/// the start system of one mixed cell.
#[derive(Debug, Clone)]
pub struct BinomialStart {
    eqs: Vec<BinomialEq>,
    /// Exponent-difference matrix `V` (rows `a_i − b_i`).
    v: Vec<Vec<i64>>,
    /// Positive diagonal of `D = A·V·B` (root count `∏ diag`).
    diag: Vec<i64>,
    /// `A⁻¹`: maps box indices to coset representatives.
    ainv: Vec<Vec<i64>>,
    /// Principal `Log β_i` as `(ln |β|, arg β)`.
    log_beta: Vec<(f64, f64)>,
}

impl BinomialStart {
    /// Build the system and its root-enumeration data. Panics when the
    /// exponent-difference matrix is singular (cell enumeration rejects
    /// `det = 0` candidates before constructing starts) or a leading
    /// coefficient is zero.
    pub fn new(eqs: Vec<BinomialEq>) -> Self {
        let n = eqs.len();
        let v: Vec<Vec<i64>> = eqs
            .iter()
            .map(|e| {
                assert_eq!(e.a.len(), n, "exponent vector length");
                assert_eq!(e.b.len(), n, "exponent vector length");
                (0..n).map(|j| e.a[j] as i64 - e.b[j] as i64).collect()
            })
            .collect();
        assert!(abs_det(&v) > 0, "binomial system is degenerate (det 0)");
        let (diag, ainv) = diagonalize(&v);
        let log_beta = eqs
            .iter()
            .map(|e| {
                assert!(e.ca.abs() > 0.0, "zero leading coefficient");
                let beta = e.cb.scale(-1.0) * e.ca.recip();
                (beta.abs().ln(), beta.im.atan2(beta.re))
            })
            .collect();
        BinomialStart {
            eqs,
            v,
            diag,
            ainv,
            log_beta,
        }
    }

    pub fn eqs(&self) -> &[BinomialEq] {
        &self.eqs
    }

    /// Number of variables (= number of equations).
    pub fn dim(&self) -> usize {
        self.eqs.len()
    }

    /// Number of roots: `|det V|`, the cell's normalized volume.
    pub fn solution_count(&self) -> u128 {
        self.diag.iter().map(|&d| d as u128).product()
    }

    /// The root numbered `index` in mixed-radix order over the
    /// diagonal box (0 ≤ index < `solution_count`). Deterministic:
    /// pure `f64` arithmetic in a fixed order.
    pub fn solution_by_index(&self, mut index: u128) -> Vec<C64> {
        let n = self.eqs.len();
        assert!(index < self.solution_count(), "root index out of range");
        let mut r = Vec::with_capacity(n);
        for &d in &self.diag {
            r.push((index % d as u128) as i64);
            index /= d as u128;
        }
        // k = A⁻¹·r: the coset representative selecting the branch of
        // each logarithm.
        let k: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| self.ainv[i][j] * r[j]).sum::<i64>() as f64)
            .collect();
        // Solve V·log x = Log β + 2πi·k (real matrix, complex rhs).
        let rhs_re: Vec<f64> = self.log_beta.iter().map(|&(ln, _)| ln).collect();
        let rhs_im: Vec<f64> = self
            .log_beta
            .iter()
            .zip(&k)
            .map(|(&(_, arg), &ki)| arg + TAU * ki)
            .collect();
        let (y_re, y_im) = solve_real(&self.v, &rhs_re, &rhs_im);
        (0..n)
            .map(|j| {
                let scale = y_re[j].exp();
                C64::from_f64(scale * y_im[j].cos(), scale * y_im[j].sin())
            })
            .collect()
    }
}

/// Solve `V·y = rhs` for a real integer matrix and a complex rhs given
/// as `(re, im)` columns — Gaussian elimination with partial pivoting;
/// the real multipliers act on both columns identically.
#[allow(clippy::needless_range_loop)] // row k eliminates row i in place
pub(crate) fn solve_real(v: &[Vec<i64>], rhs_re: &[f64], rhs_im: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = v.len();
    let mut m: Vec<Vec<f64>> = v
        .iter()
        .map(|row| row.iter().map(|&x| x as f64).collect())
        .collect();
    let mut re = rhs_re.to_vec();
    let mut im = rhs_im.to_vec();
    for k in 0..n {
        let pivot = (k..n)
            .max_by(|&i, &j| m[i][k].abs().total_cmp(&m[j][k].abs()))
            .expect("nonempty pivot column");
        m.swap(k, pivot);
        re.swap(k, pivot);
        im.swap(k, pivot);
        for i in (k + 1)..n {
            let f = m[i][k] / m[k][k];
            if f != 0.0 {
                for j in k..n {
                    m[i][j] -= f * m[k][j];
                }
                re[i] -= f * re[k];
                im[i] -= f * im[k];
            }
        }
    }
    for k in (0..n).rev() {
        for j in (k + 1)..n {
            re[k] -= m[k][j] * re[j];
            im[k] -= m[k][j] * im[j];
        }
        re[k] /= m[k][k];
        im[k] /= m[k][k];
    }
    (re, im)
}

/// `c · ∏ x_j^{e_j}` in precision `R`.
fn term<R: Real>(c: C64, e: &[Exp], x: &[Complex<R>]) -> Complex<R> {
    let mut acc: Complex<R> = c.convert();
    for (j, &ej) in e.iter().enumerate() {
        if ej > 0 {
            acc *= x[j].powi(ej as i32);
        }
    }
    acc
}

/// `∂/∂x_j` of `c · x^e`: `c · e_j · x_j^{e_j−1} · ∏_{l≠j} x_l^{e_l}`.
fn term_deriv<R: Real>(c: C64, e: &[Exp], x: &[Complex<R>], j: usize) -> Complex<R> {
    if e[j] == 0 {
        return Complex::zero();
    }
    let mut acc: Complex<R> = c.convert();
    acc = acc.scale(R::from_u32(e[j] as u32));
    for (l, &el) in e.iter().enumerate() {
        let p = if l == j { el - 1 } else { el };
        if p > 0 {
            acc *= x[l].powi(p as i32);
        }
    }
    acc
}

impl<R: Real> SystemEvaluator<R> for BinomialStart {
    fn dim(&self) -> usize {
        self.eqs.len()
    }

    fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        let n = self.eqs.len();
        assert_eq!(x.len(), n);
        let mut values = Vec::with_capacity(n);
        let mut jac = CMat::zeros(n, n);
        for (i, eq) in self.eqs.iter().enumerate() {
            values.push(term(eq.ca, &eq.a, x) + term(eq.cb, &eq.b, x));
            for j in 0..n {
                jac[(i, j)] = term_deriv(eq.ca, &eq.a, x, j) + term_deriv(eq.cb, &eq.b, x, j);
            }
        }
        SystemEval {
            values,
            jacobian: jac,
        }
    }

    fn name(&self) -> &str {
        "binomial-start"
    }
}

impl<R: Real> BatchSystemEvaluator<R> for BinomialStart {
    /// Analytic evaluation has no per-batch fixed cost to amortize.
    fn max_batch(&self) -> usize {
        usize::MAX
    }

    fn evaluate_batch(&mut self, points: &[Vec<Complex<R>>]) -> Vec<SystemEval<R>> {
        loop_evaluate_batch(self, points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> BinomialStart {
        // 2·x0·x1 − 3 = 0, x0 − x1 = 0: V = [[1,1],[1,−1]], two roots.
        BinomialStart::new(vec![
            BinomialEq {
                a: vec![1, 1],
                ca: C64::from_f64(2.0, 0.0),
                b: vec![0, 0],
                cb: C64::from_f64(-3.0, 0.0),
            },
            BinomialEq {
                a: vec![1, 0],
                ca: C64::from_f64(1.0, 0.0),
                b: vec![0, 1],
                cb: C64::from_f64(-1.0, 0.0),
            },
        ])
    }

    #[test]
    fn every_enumerated_root_satisfies_the_system() {
        let mut g = fixture();
        assert_eq!(g.solution_count(), 2);
        let mut seen = Vec::new();
        for idx in 0..2u128 {
            let x = g.solution_by_index(idx);
            let e = SystemEvaluator::<f64>::evaluate(&mut g, &x);
            assert!(
                e.residual_norm() < 1e-12,
                "root {idx} residual {:e}",
                e.residual_norm()
            );
            for prev in &seen {
                let d: f64 = x
                    .iter()
                    .zip(prev)
                    .map(|(p, q): (&C64, &C64)| (*p - *q).abs())
                    .sum();
                assert!(d > 1e-6, "roots {idx} collide");
            }
            seen.push(x);
        }
    }

    #[test]
    fn complex_coefficients_and_larger_volume() {
        // x0^3·x1 + (1+2i) = 0, x0·x1^2 − (2−i) = 0:
        // V = [[3,1],[1,2]], det 5 → five distinct roots.
        let mut g = BinomialStart::new(vec![
            BinomialEq {
                a: vec![3, 1],
                ca: C64::from_f64(1.0, 0.0),
                b: vec![0, 0],
                cb: C64::from_f64(1.0, 2.0),
            },
            BinomialEq {
                a: vec![1, 2],
                ca: C64::from_f64(1.0, 0.0),
                b: vec![0, 0],
                cb: C64::from_f64(-2.0, 1.0),
            },
        ]);
        assert_eq!(g.solution_count(), 5);
        let mut roots = Vec::new();
        for idx in 0..5u128 {
            let x = g.solution_by_index(idx);
            let e = SystemEvaluator::<f64>::evaluate(&mut g, &x);
            assert!(e.residual_norm() < 1e-10, "root {idx}");
            roots.push(x);
        }
        for i in 0..roots.len() {
            for j in (i + 1)..roots.len() {
                let d: f64 = roots[i]
                    .iter()
                    .zip(&roots[j])
                    .map(|(p, q)| (*p - *q).abs())
                    .sum();
                assert!(d > 1e-6, "roots {i} and {j} collide");
            }
        }
    }

    #[test]
    fn jacobian_matches_finite_differences() {
        let mut g = fixture();
        let x = vec![C64::from_f64(0.7, 0.3), C64::from_f64(-1.2, 0.5)];
        let e = SystemEvaluator::<f64>::evaluate(&mut g, &x);
        let h = 1e-7;
        for j in 0..2 {
            let mut xp = x.clone();
            xp[j] += C64::from_f64(h, 0.0);
            let ep = SystemEvaluator::<f64>::evaluate(&mut g, &xp);
            for i in 0..2 {
                let fd = (ep.values[i] - e.values[i]).scale(1.0 / h);
                assert!(
                    (fd - e.jacobian[(i, j)]).abs() < 1e-5,
                    "jac[{i},{j}]: fd {fd:?} vs {:?}",
                    e.jacobian[(i, j)]
                );
            }
        }
    }
}
