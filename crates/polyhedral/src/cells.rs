//! Mixed-cell enumeration over a deterministic lifted subdivision.
//!
//! Each support point is lifted to an integer height
//! ([`crate::lift::lift_value`]); a candidate cell picks one **edge**
//! (two points) per polynomial and is accepted when a common linear
//! functional `α` prices both endpoints of every chosen edge equally
//! and strictly below every other point of that polynomial's lifted
//! support — the fine mixed cells of type `(1, …, 1)` of the induced
//! subdivision. Their normalized volumes `|det V|` sum to the mixed
//! volume (Bernstein's root count), and each cell carries the binomial
//! start system built from the target's own coefficients on the cell's
//! monomials.
//!
//! Ties in the pricing (a degenerate lifting) restart the whole
//! enumeration with `seed + 1`, so the result is still a pure function
//! of `(support, seed)`.

use crate::binomial::{solve_real, BinomialEq, BinomialStart};
use crate::lift::lift_value;
use crate::snf::abs_det;
use polygpu_complex::C64;
use polygpu_polysys::{Exp, System};
use std::fmt;

/// Pricing tolerance: lifted heights are integers and `α` solves an
/// integer system, so true ties land within rounding noise of zero and
/// generic gaps sit far above it.
const TIE_TOL: f64 = 1e-6;

/// Enumeration guard: brute force is exponential in `n`, so cells are
/// only computed for targets of at most this many variables.
pub const MAX_DIM: usize = 6;
/// Enumeration guard: the edge-product search space (`∏ mᵢ·(mᵢ−1)/2`)
/// is capped here; larger supports reject typed.
pub const MAX_COMBINATIONS: u128 = 2_000_000;
const MAX_RELIFTS: u64 = 32;

/// One fine mixed cell: the chosen support-edge per polynomial, its
/// normalized volume, and its binomial start system.
#[derive(Debug, Clone)]
pub struct MixedCell {
    /// Per-polynomial `(j, l)` indices into the deduplicated support.
    pub edges: Vec<(usize, usize)>,
    /// `|det V|`: this cell's share of the mixed volume (= its start
    /// system's root count).
    pub volume: u128,
    /// The cell's binomial start system.
    pub start: BinomialStart,
}

/// Every mixed cell of the target under a deterministic lifting.
#[derive(Debug, Clone)]
pub struct MixedCellStarts {
    pub cells: Vec<MixedCell>,
    /// `Σ |det V|` over the cells — Bernstein's toric root bound.
    pub mixed_volume: u128,
    /// `∏ total_degree` — the total-degree path count, for the ratio.
    pub bezout: u128,
    /// The seed that produced a tie-free lifting (`requested + r` after
    /// `r` re-lifts).
    pub lift_seed: u64,
}

/// Why mixed cells could not be computed — all typed, all free.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CellError {
    /// Mixed volume needs as many polynomials as variables.
    NotSquare { rows: usize, dim: usize },
    /// Brute-force enumeration is capped at [`MAX_DIM`] variables.
    DimensionTooLarge { n: usize },
    /// A polynomial's support has fewer than two distinct monomials —
    /// no edge to pick.
    TooFewMonomials { poly: usize, monomials: usize },
    /// The edge-product search space exceeds [`MAX_COMBINATIONS`].
    TooManyCombinations { combinations: u128 },
    /// Every re-lift produced a tie (pathological support).
    DegenerateLifting { attempts: u64 },
    /// The subdivision has no fine mixed cells (mixed volume zero):
    /// the system has no toric roots to track.
    NoCells,
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::NotSquare { rows, dim } => {
                write!(
                    f,
                    "mixed cells need a square system ({rows} polys, {dim} vars)"
                )
            }
            CellError::DimensionTooLarge { n } => {
                write!(
                    f,
                    "mixed-cell enumeration is capped at {MAX_DIM} variables (got {n})"
                )
            }
            CellError::TooFewMonomials { poly, monomials } => write!(
                f,
                "polynomial {poly} has {monomials} distinct monomial(s); an edge needs two"
            ),
            CellError::TooManyCombinations { combinations } => write!(
                f,
                "edge search space {combinations} exceeds the {MAX_COMBINATIONS} cap"
            ),
            CellError::DegenerateLifting { attempts } => {
                write!(f, "no tie-free lifting after {attempts} attempts")
            }
            CellError::NoCells => write!(f, "the lifted subdivision has no fine mixed cells"),
        }
    }
}

impl std::error::Error for CellError {}

/// One polynomial's deduplicated support: distinct exponent vectors
/// with their (merged) coefficients.
struct Support {
    points: Vec<Vec<Exp>>,
    coeffs: Vec<C64>,
}

fn supports_of(system: &System<f64>) -> Result<Vec<Support>, CellError> {
    let n = system.dim();
    let mut out = Vec::with_capacity(system.rows());
    for (i, poly) in system.polys().iter().enumerate() {
        let mut points: Vec<Vec<Exp>> = Vec::new();
        let mut coeffs: Vec<C64> = Vec::new();
        for t in poly.terms() {
            let mut e = vec![0 as Exp; n];
            for &(v, x) in t.monomial.factors() {
                e[v as usize] += x;
            }
            if let Some(p) = points.iter().position(|q| *q == e) {
                coeffs[p] += t.coeff;
            } else {
                points.push(e);
                coeffs.push(t.coeff);
            }
        }
        // A merged-to-zero coefficient removes the point from the
        // genuine support.
        let mut j = 0;
        while j < points.len() {
            if coeffs[j].abs() == 0.0 {
                points.remove(j);
                coeffs.remove(j);
            } else {
                j += 1;
            }
        }
        if points.len() < 2 {
            return Err(CellError::TooFewMonomials {
                poly: i,
                monomials: points.len(),
            });
        }
        out.push(Support { points, coeffs });
    }
    Ok(out)
}

/// Compute every fine mixed cell of `system` under the deterministic
/// lifting seeded by `lift_seed` (re-lifting on ties), with the
/// binomial start system of each cell. The result is a pure function
/// of the support, the coefficients and the seed.
pub fn mixed_cell_starts(
    system: &System<f64>,
    lift_seed: u64,
) -> Result<MixedCellStarts, CellError> {
    let n = system.dim();
    if system.rows() != n {
        return Err(CellError::NotSquare {
            rows: system.rows(),
            dim: n,
        });
    }
    if n > MAX_DIM {
        return Err(CellError::DimensionTooLarge { n });
    }
    let supports = supports_of(system)?;
    // All index pairs (j < l) per polynomial, in lexicographic order —
    // the deterministic cell order.
    let edge_lists: Vec<Vec<(usize, usize)>> = supports
        .iter()
        .map(|s| {
            let m = s.points.len();
            (0..m)
                .flat_map(|j| ((j + 1)..m).map(move |l| (j, l)))
                .collect()
        })
        .collect();
    let combinations = edge_lists.iter().map(|e| e.len() as u128).product::<u128>();
    if combinations > MAX_COMBINATIONS {
        return Err(CellError::TooManyCombinations { combinations });
    }
    let bezout = system
        .polys()
        .iter()
        .fold(1u128, |acc, p| acc.saturating_mul(p.total_degree() as u128));

    'attempt: for attempt in 0..MAX_RELIFTS {
        let seed = lift_seed.wrapping_add(attempt);
        let w: Vec<Vec<i64>> = supports
            .iter()
            .enumerate()
            .map(|(i, s)| {
                (0..s.points.len())
                    .map(|j| lift_value(seed, i, j))
                    .collect()
            })
            .collect();
        let mut cells = Vec::new();
        // Odometer over one edge per polynomial.
        let mut pick = vec![0usize; n];
        loop {
            if let Some(cell) = try_cell(&supports, &w, &edge_lists, &pick) {
                match cell {
                    CellCheck::Cell(c) => cells.push(c),
                    CellCheck::Tie => continue 'attempt,
                    CellCheck::NotACell => {}
                }
            }
            // Advance the odometer.
            let mut i = 0;
            loop {
                if i == n {
                    // Full sweep done, tie-free.
                    if cells.is_empty() {
                        return Err(CellError::NoCells);
                    }
                    let mixed_volume = cells.iter().map(|c: &MixedCell| c.volume).sum();
                    return Ok(MixedCellStarts {
                        cells,
                        mixed_volume,
                        bezout,
                        lift_seed: seed,
                    });
                }
                pick[i] += 1;
                if pick[i] < edge_lists[i].len() {
                    break;
                }
                pick[i] = 0;
                i += 1;
            }
        }
    }
    Err(CellError::DegenerateLifting {
        attempts: MAX_RELIFTS,
    })
}

enum CellCheck {
    Cell(MixedCell),
    /// A point priced within [`TIE_TOL`] of the cell's minimum:
    /// degenerate lifting, restart with the next seed.
    Tie,
    NotACell,
}

fn try_cell(
    supports: &[Support],
    w: &[Vec<i64>],
    edge_lists: &[Vec<(usize, usize)>],
    pick: &[usize],
) -> Option<CellCheck> {
    let n = supports.len();
    let edges: Vec<(usize, usize)> = (0..n).map(|i| edge_lists[i][pick[i]]).collect();
    // V rows: a_i − b_i; a nonsingular V is a precondition for both
    // the α solve and the binomial start system.
    let v: Vec<Vec<i64>> = (0..n)
        .map(|i| {
            let (j, l) = edges[i];
            let (a, b) = (&supports[i].points[j], &supports[i].points[l]);
            (0..n).map(|c| a[c] as i64 - b[c] as i64).collect()
        })
        .collect();
    let volume = abs_det(&v);
    if volume == 0 {
        return Some(CellCheck::NotACell);
    }
    // ⟨a_i − b_i, α⟩ = w(b_i) − w(a_i): both endpoints priced equally.
    let rhs: Vec<f64> = (0..n)
        .map(|i| {
            let (j, l) = edges[i];
            (w[i][l] - w[i][j]) as f64
        })
        .collect();
    let zeros = vec![0.0; n];
    let (alpha, _) = solve_real(&v, &rhs, &zeros);
    // Minimality: every other lifted point must price strictly higher.
    for i in 0..n {
        let (j, l) = edges[i];
        let price = |p: usize| -> f64 {
            supports[i].points[p]
                .iter()
                .zip(&alpha)
                .map(|(&e, &a)| e as f64 * a)
                .sum::<f64>()
                + w[i][p] as f64
        };
        let h = price(j);
        for p in 0..supports[i].points.len() {
            if p == j || p == l {
                continue;
            }
            let s = price(p) - h;
            if s.abs() <= TIE_TOL {
                return Some(CellCheck::Tie);
            }
            if s < 0.0 {
                return Some(CellCheck::NotACell);
            }
        }
    }
    let eqs = (0..n)
        .map(|i| {
            let (j, l) = edges[i];
            BinomialEq {
                a: supports[i].points[j].clone(),
                ca: supports[i].coeffs[j],
                b: supports[i].points[l].clone(),
                cb: supports[i].coeffs[l],
            }
        })
        .collect();
    Some(CellCheck::Cell(MixedCell {
        edges,
        volume,
        start: BinomialStart::new(eqs),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_polysys::{
        parse_system, random_sparse_system, SparseBenchmarkParams, SystemEvaluator,
    };

    #[test]
    fn dense_quadratics_recover_the_bezout_bound() {
        // Full degree-2 supports in 2 vars: mixed volume = Bézout = 4
        // (Bernstein degenerates to Bézout on dense supports).
        let sys = parse_system::<f64>(
            "x0^2 + 2*x0*x1 + 3*x1^2 + 4*x0 + 5*x1 + 6; \
             7*x0^2 + x0*x1 + 2*x1^2 + 3*x0 + 4*x1 + 5",
        )
        .unwrap();
        let mc = mixed_cell_starts(&sys, 11).unwrap();
        assert_eq!(mc.bezout, 4);
        assert_eq!(mc.mixed_volume, 4, "dense mixed volume must hit Bézout");
        let total: u128 = mc.cells.iter().map(|c| c.start.solution_count()).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn sparse_system_beats_bezout() {
        // Both polynomials have total degree 2 (Bézout 4), but the
        // supports are sparse — no pure x² or y² terms — and the mixed
        // volume drops to 2.
        let sys = parse_system::<f64>("x0*x1 + x0 + 1; x0*x1 + x1 + 2").unwrap();
        let mc = mixed_cell_starts(&sys, 7).unwrap();
        assert_eq!(mc.bezout, 4);
        assert_eq!(mc.mixed_volume, 2);
        // Each cell's starts satisfy its binomial system.
        for cell in &mc.cells {
            let mut g = cell.start.clone();
            for idx in 0..cell.start.solution_count() {
                let x = cell.start.solution_by_index(idx);
                let e = SystemEvaluator::<f64>::evaluate(&mut g, &x);
                assert!(e.residual_norm() < 1e-10);
            }
        }
    }

    #[test]
    fn enumeration_is_a_pure_function_of_support_and_seed() {
        let sys = random_sparse_system::<f64>(&SparseBenchmarkParams {
            n: 3,
            m_min: 2,
            m_max: 4,
            k_min: 0,
            k_max: 3,
            d: 3,
            seed: 11,
        });
        let a = mixed_cell_starts(&sys, 5).unwrap();
        let b = mixed_cell_starts(&sys, 5).unwrap();
        assert_eq!(a.mixed_volume, b.mixed_volume);
        assert_eq!(a.lift_seed, b.lift_seed);
        assert_eq!(a.cells.len(), b.cells.len());
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.edges, cb.edges);
            assert_eq!(ca.volume, cb.volume);
            for idx in 0..ca.volume.min(4) {
                assert_eq!(
                    ca.start.solution_by_index(idx),
                    cb.start.solution_by_index(idx),
                    "start points must be bit-identical"
                );
            }
        }
        assert!(a.mixed_volume >= 1);
        assert!(a.mixed_volume <= a.bezout);
    }

    #[test]
    fn rectangular_and_oversized_targets_reject_typed() {
        let square = parse_system::<f64>("x0 + x1 - 1; x0*x1 - 1").unwrap();
        let rect = System::rectangular(2, vec![square.polys()[0].clone()]).unwrap();
        assert!(matches!(
            mixed_cell_starts(&rect, 0),
            Err(CellError::NotSquare { rows: 1, dim: 2 })
        ));
        let big = random_sparse_system::<f64>(&SparseBenchmarkParams {
            n: 8,
            m_min: 2,
            m_max: 3,
            k_min: 1,
            k_max: 3,
            d: 2,
            seed: 1,
        });
        assert!(matches!(
            mixed_cell_starts(&big, 0),
            Err(CellError::DimensionTooLarge { n: 8 })
        ));
    }
}
