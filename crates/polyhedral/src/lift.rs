//! Deterministic integer liftings.
//!
//! The mixed subdivision is induced by lifting every support point to
//! a height and taking the lower hull. Heights here are small integers
//! (exactly representable in `f64`, so the hull arithmetic is noise
//! free) produced by a splitmix64 chain over `(seed, poly, monomial)`:
//! the subdivision — and therefore the start systems and every path
//! the solver tracks — is a pure function of the support and the seed.

/// splitmix64: the repository's standard seed scrambler.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Maximum lifting height (exclusive): small enough that every height
/// and every hull inner product stays exactly representable.
pub const LIFT_RANGE: i64 = 4096;

/// The lifted height of monomial `mon` of polynomial `poly` under
/// `seed` — in `0..LIFT_RANGE`, a pure function of its arguments.
pub fn lift_value(seed: u64, poly: usize, mon: usize) -> i64 {
    let mixed = splitmix(
        splitmix(seed ^ 0xD1B5_4A32_D192_ED03)
            ^ splitmix((poly as u64).wrapping_mul(0xA24B_AED4_963E_E407))
            ^ splitmix((mon as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25)),
    );
    (mixed % LIFT_RANGE as u64) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifting_is_deterministic_and_seed_sensitive() {
        assert_eq!(lift_value(7, 2, 3), lift_value(7, 2, 3));
        let base = lift_value(7, 0, 0);
        assert!((0..LIFT_RANGE).contains(&base));
        // Different coordinates decorrelate (probabilistic but fixed).
        let distinct: std::collections::HashSet<i64> = (0..16)
            .flat_map(|p| (0..16).map(move |m| lift_value(7, p, m)))
            .collect();
        assert!(
            distinct.len() > 200,
            "liftings collapse: {}",
            distinct.len()
        );
        assert_ne!(
            (0..8).map(|m| lift_value(7, 0, m)).collect::<Vec<_>>(),
            (0..8).map(|m| lift_value(8, 0, m)).collect::<Vec<_>>(),
        );
    }
}
