//! Typed service errors — every rejection is a value, and every
//! rejection is **free**: no arena bytes allocated, no modeled time
//! charged, no queue slot consumed.

use polygpu_core::engine::BuildError;
use std::fmt;

/// Why the service refused a submission (or failed to construct).
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The tenant id was not issued by this service.
    UnknownTenant,
    /// The builder's backend cannot host a residency fleet (CPU
    /// reference, or a point-sharded cluster — whose residency story
    /// is one single-device session per device).
    UnsupportedBackend { backend: &'static str },
    /// The service drives resident double-precision engines; requests
    /// asking for another precision policy are rejected up front
    /// rather than silently downgraded.
    UnsupportedPrecision,
    /// The request's system can **never** fit the fleet, even with
    /// every device empty — rejected typed and free at admission, the
    /// serving-layer form of the paper's constant-memory wall.
    NeverFits {
        /// Bytes the encoding needs on the most loaded device.
        needed: usize,
        /// The tightest device's constant budget.
        budget: usize,
    },
    /// The tenant is at its in-flight budget — typed backpressure;
    /// resubmit after jobs drain. A degraded fleet shrinks the
    /// effective limit, so overload is how degradation surfaces to
    /// tenants instead of service failure.
    Overloaded {
        tenant: String,
        in_flight: usize,
        limit: usize,
    },
    /// Every fleet device has been lost; nothing can be admitted.
    FleetExhausted { devices: usize, lost: usize },
    /// The request is malformed (rectangular target, dimension
    /// mismatch, start index out of range, …).
    BadRequest { reason: String },
    /// Service construction failed (invalid engine spec).
    Build(BuildError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant => write!(f, "unknown tenant id"),
            ServeError::UnsupportedBackend { backend } => {
                write!(f, "backend '{backend}' cannot host a solve service fleet")
            }
            ServeError::UnsupportedPrecision => {
                write!(
                    f,
                    "the solve service runs fixed double precision; \
                     request another policy through Solver::solve directly"
                )
            }
            ServeError::NeverFits { needed, budget } => write!(
                f,
                "system can never fit the fleet: needs {needed} constant bytes \
                 per device, tightest budget is {budget}"
            ),
            ServeError::Overloaded {
                tenant,
                in_flight,
                limit,
            } => write!(
                f,
                "tenant '{tenant}' is at its in-flight budget ({in_flight}/{limit})"
            ),
            ServeError::FleetExhausted { devices, lost } => {
                write!(f, "fleet exhausted: {lost} of {devices} devices lost")
            }
            ServeError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServeError::Build(e) => write!(f, "service construction failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildError> for ServeError {
    fn from(e: BuildError) -> Self {
        ServeError::Build(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_prints() {
        let msgs = [
            ServeError::UnknownTenant.to_string(),
            ServeError::UnsupportedBackend {
                backend: "cpu-reference",
            }
            .to_string(),
            ServeError::UnsupportedPrecision.to_string(),
            ServeError::NeverFits {
                needed: 100,
                budget: 10,
            }
            .to_string(),
            ServeError::Overloaded {
                tenant: "t".into(),
                in_flight: 4,
                limit: 4,
            }
            .to_string(),
            ServeError::FleetExhausted {
                devices: 2,
                lost: 2,
            }
            .to_string(),
            ServeError::BadRequest { reason: "x".into() }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
