//! The multi-tenant solve service: one residency fleet, one fair
//! queue, one admission gate, one cache — all on the modeled clock.
//!
//! [`SolveService`] fronts a single residency fleet (a
//! [`Session`] on the single-device GPU backends, a
//! [`ClusterSession`] on row-sharded clusters) with:
//!
//! * **admission control** — every submission is sized against the
//!   spec's [`AdmissionBudget`] *before* any device state is touched:
//!   a system that can never fit the fleet's constant memory is
//!   rejected typed and free, a tenant at its in-flight budget gets
//!   typed backpressure, and a degraded fleet shrinks the admitted
//!   capacity instead of failing;
//! * **weighted fair queuing** — admitted jobs drain in virtual-finish
//!   order (see [`FairQueue`]), FIFO within a tenant, with priorities
//!   scaling a job's virtual charge rather than bypassing fairness;
//! * **an encoded-system cache** — repeat targets skip the encode +
//!   upload entirely through fleet residency, with LRU eviction under
//!   residency pressure and hit/miss/eviction counters;
//! * **deterministic accounting** — queue waits, admission costs and
//!   solve times all live on the scheduler's modeled clock, so the
//!   same submissions in the same order produce a byte-identical
//!   [`ServeReport::render`] and span export, fault injection
//!   included.

use crate::cache::{CacheStats, SystemCache};
use crate::error::ServeError;
use crate::queue::FairQueue;
use crate::tenant::{Priority, TenantId, TenantSpec};
use polygpu_cluster::ClusterSession;
use polygpu_complex::Complex;
use polygpu_core::engine::{
    AdmissionBudget, AnyEvaluator, BuildError, ClusterProvider, EngineBuilder, Session, SystemId,
};
use polygpu_core::{BatchError, EncodeError, SetupError};
use polygpu_homotopy::homotopy::random_gamma;
use polygpu_homotopy::lockstep::{
    track_lockstep_recovering_traced, track_lockstep_recovering_traced_with, BatchHomotopy,
};
use polygpu_homotopy::queue::{track_queue_recovering_traced, SlotPolicy};
use polygpu_homotopy::resident::{correct_resident, status_to_newton, track_queue_resident};
use polygpu_homotopy::solve::{PrecisionPolicy, SchedulerKind, SolveRequest, StartKind};
use polygpu_homotopy::{CorrectorMode, UsedPrecision};
use polygpu_obs::{
    MetaValue, MetricsRegistry, SpanKind, TelemetrySnapshot, TraceSink, Tracer, Track,
};
use polygpu_polysys::System;
use std::fmt::Write as _;
use std::sync::Arc;

// ---------------------------------------------------------------------
// The fleet: one residency session behind one face
// ---------------------------------------------------------------------

/// The service's residency backend — a single-device [`Session`] or a
/// row-sharded [`ClusterSession`], behind one delegating face so the
/// service logic is backend-free.
enum Fleet {
    Single(Box<Session<f64>>),
    Cluster(Box<ClusterSession<f64>>),
}

impl Fleet {
    fn load(&mut self, label: &str, system: &System<f64>) -> Result<SystemId, BuildError> {
        match self {
            Fleet::Single(s) => s.load(label, system),
            Fleet::Cluster(c) => c.load(label, system),
        }
    }

    fn unload(&mut self, id: SystemId) -> bool {
        match self {
            Fleet::Single(s) => s.unload(id),
            Fleet::Cluster(c) => c.unload(id),
        }
    }

    fn activate(&mut self, id: SystemId) -> &mut dyn AnyEvaluator<f64> {
        match self {
            Fleet::Single(s) => s.activate(id),
            Fleet::Cluster(c) => c.activate(id),
        }
    }

    fn residency_pressure(&self) -> f64 {
        match self {
            Fleet::Single(s) => s.residency_pressure(),
            Fleet::Cluster(c) => c.residency_pressure(),
        }
    }

    /// Modeled seconds of session work so far (loads + switches) — the
    /// admission-side cost pool the service charges deltas from.
    fn session_seconds(&self) -> f64 {
        match self {
            Fleet::Single(s) => s.amortization().session_seconds,
            Fleet::Cluster(c) => c.amortization().session_seconds,
        }
    }

    fn devices(&self) -> usize {
        match self {
            Fleet::Single(_) => 1,
            Fleet::Cluster(c) => c.device_count(),
        }
    }

    fn devices_lost(&self) -> usize {
        match self {
            Fleet::Single(_) => 0,
            Fleet::Cluster(c) => c.devices_lost(),
        }
    }

    fn resident_count(&self) -> usize {
        match self {
            Fleet::Single(s) => s.resident_count(),
            Fleet::Cluster(c) => c.resident_count(),
        }
    }
}

// ---------------------------------------------------------------------
// Jobs and per-tenant state
// ---------------------------------------------------------------------

/// Handle to a job admitted by [`SolveService::submit`], issued in
/// admission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(usize);

impl JobId {
    /// The raw admission index this handle names.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// One admitted-but-unserved job.
struct Job {
    tenant: TenantId,
    priority: Priority,
    request: SolveRequest,
    /// Start points, resolved (and validated) at admission.
    starts: Vec<Vec<Complex<f64>>>,
    /// Modeled clock at admission — queue wait is measured from here.
    arrival: f64,
    /// Residency label: the request's label, or `job-<id>`.
    label: String,
}

struct TenantState {
    spec: TenantSpec,
    in_flight: usize,
    jobs: u64,
    paths: u64,
    successes: u64,
    failed_jobs: u64,
    cache_hits: u64,
    wait_seconds: f64,
    solve_seconds: f64,
    telemetry: TelemetrySnapshot,
}

// ---------------------------------------------------------------------
// The report
// ---------------------------------------------------------------------

/// How one job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Every path tracked; `successes` of them converged.
    Solved,
    /// The solve (or its residency load) failed after recovery — the
    /// service records the typed reason and keeps serving.
    Failed {
        /// Display of the underlying typed error.
        reason: String,
    },
}

/// One served job, in completion (service) order.
#[derive(Debug, Clone)]
pub struct JobRecord {
    pub job: JobId,
    /// Tenant display name.
    pub tenant: String,
    pub priority: Priority,
    /// The request's label, or the generated `job-<id>`.
    pub label: String,
    pub outcome: JobOutcome,
    /// Paths tracked (0 when the job failed before solving).
    pub paths: usize,
    /// Paths that converged to `t = 1`.
    pub successes: usize,
    /// Whether the target was served from the encoded-system cache.
    pub cache_hit: bool,
    /// Modeled queue wait between admission and service.
    pub wait_seconds: f64,
    /// Modeled residency cost this job paid (encode + upload on a
    /// miss, a command-queue switch on a hit).
    pub admission_seconds: f64,
    /// Modeled engine wall time of the solve itself.
    pub solve_seconds: f64,
    /// Order-sensitive checksum over the endpoints (sum of `t` and
    /// coordinate parts, in path order) — byte-identical across runs
    /// of the same submissions.
    pub endpoint_checksum: f64,
    /// Per-job metrics (queue/scheduler stats, faults, cache outcome).
    pub telemetry: TelemetrySnapshot,
}

/// Per-tenant service accounting, aggregated over the run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    pub tenant: String,
    pub weight: u32,
    pub jobs: u64,
    pub failed_jobs: u64,
    pub paths: u64,
    pub successes: u64,
    pub cache_hits: u64,
    pub wait_seconds: f64,
    pub solve_seconds: f64,
    /// Merge of every served job's telemetry snapshot.
    pub telemetry: TelemetrySnapshot,
}

/// Everything one [`SolveService::run`] produced. [`render`]ed, it is
/// byte-identical across runs of the same submissions — the service's
/// determinism contract.
///
/// [`render`]: ServeReport::render
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Served jobs, in service (fair-queue) order.
    pub jobs: Vec<JobRecord>,
    /// Per-tenant accounting, sorted by tenant name.
    pub tenants: Vec<TenantReport>,
    pub cache: CacheStats,
    pub devices: usize,
    pub devices_lost: usize,
    /// Whether any job failed with a degraded fleet (the service kept
    /// running — degradation shrinks capacity, it never errors the
    /// whole run).
    pub degraded: bool,
    /// Submissions rejected because they can never fit the fleet.
    pub rejected_unservable: u64,
    /// Submissions rejected on the tenant in-flight budget.
    pub rejected_overloaded: u64,
    /// Modeled clock when the run started / finished.
    pub started_at: f64,
    pub finished_at: f64,
}

impl ServeReport {
    /// Jobs that finished [`JobOutcome::Solved`].
    pub fn solved(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.outcome == JobOutcome::Solved)
            .count()
    }

    /// Mean queue wait over served jobs (0 with no jobs).
    pub fn mean_wait_seconds(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.iter().map(|j| j.wait_seconds).sum::<f64>() / self.jobs.len() as f64
    }

    /// Deterministic text table: same submissions, same bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "solve service report");
        let _ = writeln!(
            out,
            "  fleet {} devices ({} lost){}   span {:.6e} .. {:.6e} s",
            self.devices,
            self.devices_lost,
            if self.degraded { "  DEGRADED" } else { "" },
            self.started_at,
            self.finished_at,
        );
        let _ = writeln!(
            out,
            "  jobs {} served ({} solved)   rejected: {} unservable, {} overloaded",
            self.jobs.len(),
            self.solved(),
            self.rejected_unservable,
            self.rejected_overloaded,
        );
        let _ = writeln!(
            out,
            "  cache: {} hits / {} misses / {} evictions (hit rate {:.6e})",
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.hit_rate(),
        );
        let _ = writeln!(
            out,
            "  {:<5} {:<10} {:<7} {:>5} {:>4} {:>5}  {:>13} {:>13} {:>13}  {:>13}",
            "job",
            "tenant",
            "prio",
            "paths",
            "ok",
            "cache",
            "wait(s)",
            "admit(s)",
            "solve(s)",
            "checksum",
        );
        for j in &self.jobs {
            let _ = writeln!(
                out,
                "  {:<5} {:<10} {:<7} {:>5} {:>4} {:>5}  {:>13.6e} {:>13.6e} {:>13.6e}  {:>13.6e}",
                j.job.index(),
                j.tenant,
                j.priority.name(),
                j.paths,
                j.successes,
                if j.cache_hit { "hit" } else { "miss" },
                j.wait_seconds,
                j.admission_seconds,
                j.solve_seconds,
                j.endpoint_checksum,
            );
            if let JobOutcome::Failed { reason } = &j.outcome {
                let _ = writeln!(out, "        failed: {reason}");
            }
        }
        let _ = writeln!(
            out,
            "  {:<10} {:>6} {:>5} {:>6} {:>5} {:>5} {:>5}  {:>13} {:>13}",
            "tenant", "weight", "jobs", "failed", "paths", "ok", "hits", "wait(s)", "solve(s)",
        );
        for t in &self.tenants {
            let _ = writeln!(
                out,
                "  {:<10} {:>6} {:>5} {:>6} {:>5} {:>5} {:>5}  {:>13.6e} {:>13.6e}",
                t.tenant,
                t.weight,
                t.jobs,
                t.failed_jobs,
                t.paths,
                t.successes,
                t.cache_hits,
                t.wait_seconds,
                t.solve_seconds,
            );
        }
        out
    }
}

// ---------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------

/// A deterministic multi-tenant front end over one residency fleet.
/// See the [module docs](self) for the full contract; in short:
/// [`register`] tenants, [`submit`] requests (typed rejections are
/// free), [`run`] to drain the fair queue into a [`ServeReport`].
///
/// [`register`]: SolveService::register
/// [`submit`]: SolveService::submit
/// [`run`]: SolveService::run
pub struct SolveService {
    budget: AdmissionBudget,
    fleet: Fleet,
    tenants: Vec<TenantState>,
    queue: FairQueue,
    /// Admitted jobs by [`JobId`] index; `None` once served.
    jobs: Vec<Option<Job>>,
    cache: SystemCache,
    /// Global arrival sequence (also counts rejected submissions, so
    /// admission decisions are a pure function of the arrival order).
    seq: u64,
    /// The modeled service clock: admission costs, switches and solve
    /// wall time all accumulate here.
    clock: f64,
    trace: TraceSink,
    degraded: bool,
    rejected_unservable: u64,
    rejected_overloaded: u64,
}

impl SolveService {
    /// Open a service over `builder`'s fleet. Single-device GPU
    /// backends get a [`Session`]; row-sharded clusters a
    /// [`ClusterSession`]. The CPU reference and point-sharded
    /// clusters have no joint residency arena to admit against and are
    /// rejected typed.
    pub fn new<P: ClusterProvider>(builder: &EngineBuilder<P>) -> Result<Self, ServeError> {
        let budget = builder.admission_budget()?;
        let fleet = match budget.backend {
            "gpu" | "gpu-batch" => Fleet::Single(Box::new(builder.session::<f64>()?)),
            "cluster" if budget.rows_sharded => Fleet::Cluster(Box::new(
                ClusterSession::from_spec(&builder.cluster_spec()?)?,
            )),
            "cluster" => {
                return Err(ServeError::UnsupportedBackend {
                    backend: "cluster (point-sharded)",
                })
            }
            other => return Err(ServeError::UnsupportedBackend { backend: other }),
        };
        let cache = SystemCache::new(budget.encoding);
        Ok(SolveService {
            budget,
            fleet,
            tenants: Vec::new(),
            queue: FairQueue::new(),
            jobs: Vec::new(),
            cache,
            seq: 0,
            clock: 0.0,
            trace: TraceSink::noop(),
            degraded: false,
            rejected_unservable: 0,
            rejected_overloaded: 0,
        })
    }

    /// Install a [`Tracer`]: the service emits `serve → admit → wait →
    /// solve` (and `evict`) spans on the modeled clock, on
    /// [`Track::Scheduler`]. Tracing never feeds back into scheduling:
    /// reports are byte-identical with and without a tracer.
    pub fn with_tracer(mut self, tracer: Arc<dyn Tracer>) -> Self {
        self.trace = TraceSink::new(tracer).on(Track::Scheduler);
        self
    }

    /// Register a tenant (weights below 1 are clamped up). Ids are
    /// issued in registration order.
    pub fn register(&mut self, spec: TenantSpec) -> TenantId {
        let mut spec = spec;
        spec.weight = spec.weight.max(1);
        self.tenants.push(TenantState {
            spec,
            in_flight: 0,
            jobs: 0,
            paths: 0,
            successes: 0,
            failed_jobs: 0,
            cache_hits: 0,
            wait_seconds: 0.0,
            solve_seconds: 0.0,
            telemetry: TelemetrySnapshot::default(),
        });
        TenantId(self.tenants.len() - 1)
    }

    /// Fleet devices (as configured).
    pub fn devices(&self) -> usize {
        self.fleet.devices()
    }

    /// Fleet devices lost to faults so far.
    pub fn devices_lost(&self) -> usize {
        self.fleet.devices_lost()
    }

    /// Jobs admitted and not yet served.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The encoded-system cache's counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats
    }

    /// Resident constant bytes over the tightest device budget.
    pub fn residency_pressure(&self) -> f64 {
        self.fleet.residency_pressure()
    }

    /// Encoded systems currently resident on the fleet.
    pub fn resident_systems(&self) -> usize {
        self.fleet.resident_count()
    }

    /// The modeled service clock (seconds).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// This tenant's effective in-flight limit right now: the
    /// configured budget scaled to the surviving share of the fleet —
    /// degradation shrinks admitted capacity instead of erroring.
    fn effective_limit(&self, spec: &TenantSpec, surviving: usize) -> usize {
        let devices = self.budget.devices().max(1);
        (spec.max_in_flight * surviving).div_ceil(devices)
    }

    /// Admit (or reject, typed and free) one request. Every decision
    /// here is a pure function of the arrival order, the spec's
    /// admission budget and the tenants' budgets — no device state is
    /// touched, no modeled time is charged.
    pub fn submit(
        &mut self,
        tenant: TenantId,
        priority: Priority,
        request: SolveRequest,
    ) -> Result<JobId, ServeError> {
        self.seq += 1;
        let seq = self.seq;
        if tenant.0 >= self.tenants.len() {
            return Err(ServeError::UnknownTenant);
        }
        if !matches!(
            request.precision,
            PrecisionPolicy::Fixed(UsedPrecision::Double)
        ) {
            return Err(ServeError::UnsupportedPrecision);
        }
        if request.start_kind != StartKind::TotalDegree {
            // The service replays the request's start system itself
            // (resident engines, session amortization); mixed-cell
            // start construction stays a solver-side feature for now.
            return Err(ServeError::BadRequest {
                reason: format!(
                    "start kind {:?} is not servable; submit total-degree requests",
                    request.start_kind
                ),
            });
        }
        let shape = request
            .target
            .uniform_shape()
            .map_err(|e| ServeError::BadRequest {
                reason: e.to_string(),
            })?;
        if shape.rows != shape.n {
            return Err(ServeError::BadRequest {
                reason: format!(
                    "target is not square ({} polys, {} vars)",
                    shape.rows, shape.n
                ),
            });
        }
        let devices = self.budget.devices();
        let lost = self.fleet.devices_lost();
        let surviving = devices.saturating_sub(lost);
        if surviving == 0 {
            return Err(ServeError::FleetExhausted { devices, lost });
        }
        if !self.budget.fits(&shape, surviving) {
            self.rejected_unservable += 1;
            return Err(ServeError::NeverFits {
                needed: self.budget.bytes_needed_per_device(&shape, surviving),
                budget: self
                    .budget
                    .device_constant_budgets
                    .iter()
                    .copied()
                    .min()
                    .unwrap_or(0),
            });
        }
        let state = &self.tenants[tenant.0];
        let limit = self.effective_limit(&state.spec, surviving);
        if state.in_flight >= limit {
            self.rejected_overloaded += 1;
            return Err(ServeError::Overloaded {
                tenant: state.spec.name.clone(),
                in_flight: state.in_flight,
                limit,
            });
        }
        let starts = request
            .resolve_starts()
            .map_err(|e| ServeError::BadRequest {
                reason: e.to_string(),
            })?;
        if starts.is_empty() {
            return Err(ServeError::BadRequest {
                reason: "no start points selected".to_string(),
            });
        }

        // Admitted. The job's virtual charge is its path count scaled
        // by priority; its arrival pins the queue-wait measurement.
        let id = JobId(self.jobs.len());
        let label = request
            .label
            .clone()
            .unwrap_or_else(|| format!("job-{}", id.0));
        let weight = self.tenants[tenant.0].spec.weight;
        let charge = starts.len() as f64 * priority.charge_factor();
        self.queue.push(id.0, tenant.0, weight, charge, seq);
        self.tenants[tenant.0].in_flight += 1;
        self.trace.emit(
            SpanKind::Admit,
            self.clock,
            0.0,
            1,
            &[
                ("job", MetaValue::U64(id.0 as u64)),
                ("tenant", MetaValue::U64(tenant.0 as u64)),
                ("paths", MetaValue::U64(starts.len() as u64)),
            ],
        );
        self.jobs.push(Some(Job {
            tenant,
            priority,
            request,
            starts,
            arrival: self.clock,
            label,
        }));
        Ok(id)
    }

    /// Make `target` resident, serving repeats from the cache and
    /// evicting LRU residents under residency pressure. Returns the
    /// resident id and whether it was a cache hit.
    fn ensure_resident(
        &mut self,
        label: &str,
        target: &System<f64>,
    ) -> Result<(SystemId, bool), BuildError> {
        if let Some(id) = self.cache.lookup(target) {
            return Ok((id, true));
        }
        loop {
            match self.fleet.load(label, target) {
                Ok(id) => {
                    self.cache.insert(target.clone(), id);
                    return Ok((id, false));
                }
                Err(BuildError::Setup(SetupError::Encode(EncodeError::Constant(_))))
                    if self.cache.len() > 0 =>
                {
                    // Residency pressure: evict the LRU resident and
                    // retry — its arena regions return to the pool.
                    let victim = self.cache.pop_lru().expect("cache is non-empty");
                    self.fleet.unload(victim);
                    self.trace.emit(
                        SpanKind::Evict,
                        self.clock,
                        0.0,
                        1,
                        &[("resident", MetaValue::U64(victim.index() as u64))],
                    );
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Drain the fair queue, serving every admitted job on the modeled
    /// clock. Failures (faults that outlive recovery, degraded-fleet
    /// loads) fail the *job*, never the run.
    pub fn run(&mut self) -> ServeReport {
        let started_at = self.clock;
        let mut records: Vec<JobRecord> = Vec::new();

        while let Some(idx) = self.queue.pop() {
            let job = self.jobs[idx].take().expect("queued job exists");
            let wait = self.clock - job.arrival;
            self.trace.emit(
                SpanKind::Wait,
                job.arrival,
                wait,
                1,
                &[("job", MetaValue::U64(idx as u64))],
            );

            let admit_base = self.fleet.session_seconds();
            let resident = self.ensure_resident(&job.label, &job.request.target);
            let (record, telemetry) = match resident {
                Ok((sys_id, cache_hit)) => {
                    self.serve_one(idx, job, sys_id, cache_hit, wait, admit_base)
                }
                Err(e) => {
                    if matches!(e, BuildError::DegradedFleet { .. }) {
                        self.degraded = true;
                    }
                    let mut reg = MetricsRegistry::new();
                    reg.counter("serve.failed", 1);
                    reg.gauge("serve.wait_seconds", wait);
                    let telemetry = reg.snapshot();
                    let t = &mut self.tenants[job.tenant.0];
                    t.failed_jobs += 1;
                    (
                        JobRecord {
                            job: JobId(idx),
                            tenant: self.tenants[job.tenant.0].spec.name.clone(),
                            priority: job.priority,
                            label: job.label,
                            outcome: JobOutcome::Failed {
                                reason: e.to_string(),
                            },
                            paths: 0,
                            successes: 0,
                            cache_hit: false,
                            wait_seconds: wait,
                            admission_seconds: 0.0,
                            solve_seconds: 0.0,
                            endpoint_checksum: 0.0,
                            telemetry: telemetry.clone(),
                        },
                        (job.tenant, telemetry),
                    )
                }
            };
            let (tenant, telemetry) = telemetry;
            let t = &mut self.tenants[tenant.0];
            t.jobs += 1;
            t.paths += record.paths as u64;
            t.successes += record.successes as u64;
            t.cache_hits += u64::from(record.cache_hit);
            t.wait_seconds += record.wait_seconds;
            t.solve_seconds += record.solve_seconds;
            t.telemetry = t.telemetry.merge(&telemetry);
            t.in_flight = t.in_flight.saturating_sub(1);
            records.push(record);
        }

        self.trace.emit(
            SpanKind::Serve,
            started_at,
            self.clock - started_at,
            0,
            &[("jobs", MetaValue::U64(records.len() as u64))],
        );

        let mut tenants: Vec<TenantReport> = self
            .tenants
            .iter()
            .map(|t| TenantReport {
                tenant: t.spec.name.clone(),
                weight: t.spec.weight,
                jobs: t.jobs,
                failed_jobs: t.failed_jobs,
                paths: t.paths,
                successes: t.successes,
                cache_hits: t.cache_hits,
                wait_seconds: t.wait_seconds,
                solve_seconds: t.solve_seconds,
                telemetry: t.telemetry.clone(),
            })
            .collect();
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));

        ServeReport {
            jobs: records,
            tenants,
            cache: self.cache.stats,
            devices: self.fleet.devices(),
            devices_lost: self.fleet.devices_lost(),
            degraded: self.degraded,
            rejected_unservable: self.rejected_unservable,
            rejected_overloaded: self.rejected_overloaded,
            started_at,
            finished_at: self.clock,
        }
    }

    /// Serve one job against its resident engine: activate, solve with
    /// the request's scheduler, advance the modeled clock, and fold the
    /// whole thing into metrics.
    fn serve_one(
        &mut self,
        idx: usize,
        job: Job,
        sys_id: SystemId,
        cache_hit: bool,
        wait: f64,
        admit_base: f64,
    ) -> (JobRecord, (TenantId, TelemetrySnapshot)) {
        let Job {
            tenant,
            priority,
            request,
            starts,
            label,
            ..
        } = job;
        let params = request.params;
        let scheduler = request.scheduler;
        let recovery = request.recovery;
        let gamma = random_gamma::<f64>(request.gamma_seed);

        let engine = self.fleet.activate(sys_id);
        // Admission cost = the session-seconds delta (a full setup on
        // a miss, one switch on a hit); charged before the solve.
        engine.reset_engine_stats();
        let caps = engine.caps();
        let mut h = BatchHomotopy::new(request.start.clone(), engine, gamma);

        let solve_base = {
            // `session_seconds` needs `&self.fleet`, which `h` borrows
            // mutably — read the admission delta off the clock instead:
            // it is applied after the solve, from `admit_base`.
            self.clock
        };
        let trace = self.trace.rebased(solve_base);
        // `DeviceResident` requests run the fused corrector on the
        // resident engine — endpoints bit-identical to host mode, but
        // each Newton iteration downloads only the convergence flags.
        let resident = params.corrector_mode == CorrectorMode::DeviceResident;
        let outcome = match scheduler {
            SchedulerKind::PerPath if resident => {
                track_queue_resident(&mut h, &starts, params, 1, &recovery, &trace)
                    .map(|(r, fault)| (r.paths, r.stats, fault))
            }
            SchedulerKind::PerPath => track_queue_recovering_traced(
                &mut h,
                &starts,
                params,
                SlotPolicy::Fixed(1),
                &recovery,
                &trace,
            )
            .map(|(r, fault)| (r.paths, r.stats, fault)),
            SchedulerKind::Lockstep if resident => {
                let corrector = params.corrector;
                track_lockstep_recovering_traced_with(
                    &mut h,
                    &starts,
                    params,
                    &recovery,
                    &trace,
                    &mut |h, pts, t_new, rounds, fault| {
                        let mut points = pts.to_vec();
                        let ts = vec![t_new; points.len()];
                        let statuses = correct_resident(
                            h,
                            &mut points,
                            &ts,
                            &corrector,
                            rounds,
                            &recovery,
                            fault,
                        )?;
                        Ok(points
                            .into_iter()
                            .zip(statuses)
                            .map(|(x, s)| status_to_newton(x, s))
                            .collect())
                    },
                )
                .map(|(r, fault)| {
                    let stats = r.stats();
                    (r.paths, stats, fault)
                })
            }
            SchedulerKind::Lockstep => track_lockstep_recovering_traced(
                &mut h, &starts, params, &recovery, &trace,
            )
            .map(|(r, fault)| {
                let stats = r.stats();
                (r.paths, stats, fault)
            }),
            SchedulerKind::Queue { slots } if resident => {
                let resolved = slots.resolve(caps.auto_slots(), starts.len());
                track_queue_resident(&mut h, &starts, params, resolved, &recovery, &trace)
                    .map(|(r, fault)| (r.paths, r.stats, fault))
            }
            SchedulerKind::Queue { slots } => {
                let resolved = slots.resolve(caps.auto_slots(), starts.len());
                track_queue_recovering_traced(
                    &mut h,
                    &starts,
                    params,
                    SlotPolicy::Fixed(resolved),
                    &recovery,
                    &trace,
                )
                .map(|(r, fault)| (r.paths, r.stats, fault))
            }
        };
        let solve_seconds = h.f.engine_stats().wall_seconds;
        drop(h);
        let admission_seconds = self.fleet.session_seconds() - admit_base;

        let mut reg = MetricsRegistry::new();
        reg.counter("serve.jobs", 1);
        reg.counter("serve.cache_hit", u64::from(cache_hit));
        reg.gauge("serve.wait_seconds", wait);
        reg.gauge("serve.admission_seconds", admission_seconds);
        reg.gauge("serve.solve_seconds", solve_seconds);
        reg.counter("serve.paths", starts.len() as u64);

        let record = match outcome {
            Ok((paths, stats, fault)) => {
                stats.record_metrics(&mut reg, "serve.queue");
                fault.record_metrics(&mut reg, "serve.fault");
                let successes = paths.iter().filter(|p| p.success()).count();
                let mut checksum = 0.0;
                for p in &paths {
                    checksum += p.t;
                    for c in &p.x {
                        checksum += c.re + c.im;
                    }
                }
                reg.counter("serve.successes", successes as u64);
                let telemetry = reg.snapshot();
                self.clock += admission_seconds + solve_seconds;
                self.trace.emit(
                    SpanKind::Solve,
                    solve_base + admission_seconds,
                    solve_seconds,
                    1,
                    &[
                        ("job", MetaValue::U64(idx as u64)),
                        ("paths", MetaValue::U64(paths.len() as u64)),
                    ],
                );
                JobRecord {
                    job: JobId(idx),
                    tenant: self.tenants[tenant.0].spec.name.clone(),
                    priority,
                    label,
                    outcome: JobOutcome::Solved,
                    paths: paths.len(),
                    successes,
                    cache_hit,
                    wait_seconds: wait,
                    admission_seconds,
                    solve_seconds,
                    endpoint_checksum: checksum,
                    telemetry,
                }
            }
            Err(e) => {
                if matches!(e, BatchError::DegradedFleet { .. }) {
                    self.degraded = true;
                }
                reg.counter("serve.failed", 1);
                let telemetry = reg.snapshot();
                self.clock += admission_seconds + solve_seconds;
                self.tenants[tenant.0].failed_jobs += 1;
                JobRecord {
                    job: JobId(idx),
                    tenant: self.tenants[tenant.0].spec.name.clone(),
                    priority,
                    label,
                    outcome: JobOutcome::Failed {
                        reason: e.to_string(),
                    },
                    paths: 0,
                    successes: 0,
                    cache_hit,
                    wait_seconds: wait,
                    admission_seconds,
                    solve_seconds,
                    endpoint_checksum: 0.0,
                    telemetry,
                }
            }
        };
        let telemetry = record.telemetry.clone();
        (record, (tenant, telemetry))
    }
}
