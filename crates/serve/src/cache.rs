//! The encoded-system cache: repeat targets skip encode/upload.
//!
//! Keys are [`cache_key`] values: the system's support hash **tagged
//! with the service's encoding kind**, so a dense and a packed
//! encoding of the same support are distinct residents — they occupy
//! different constant-memory layouts and must never alias. The
//! underlying support hash deliberately **ignores coefficient
//! values**, so every hash hit is additionally verified with a full
//! `System` equality check before the resident engine is reused.
//! Eviction is LRU by last service use and is driven by the owning
//! service (only it can unload from the fleet session); the cache
//! itself is pure bookkeeping.

use polygpu_core::engine::SystemId;
use polygpu_core::EncodingKind;
use polygpu_polysys::System;

/// Stable nonzero tag folded into the support hash per encoding kind.
/// Explicit values (not `as u64` on the enum) so reordering variants
/// can never silently re-key a deployed cache.
fn encoding_tag(encoding: EncodingKind) -> u64 {
    match encoding {
        EncodingKind::Direct => 1,
        EncodingKind::Compact => 2,
        EncodingKind::Packed => 3,
    }
}

/// The residency-cache key of `system` under `encoding`:
/// [`System::support_hash_tagged`] over the encoding's tag. Two
/// encodings of the same support get distinct keys (their device
/// layouts differ), and — like the untagged support hash — the key
/// covers ragged (sparse) supports exactly as it covers uniform ones.
pub fn cache_key(system: &System<f64>, encoding: EncodingKind) -> u64 {
    system.support_hash_tagged(encoding_tag(encoding))
}

/// Hit/miss/eviction counters of the encoded-system cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Admissions served from residency (no encode, no upload).
    pub hits: u64,
    /// Admissions that paid the full encode + upload.
    pub misses: u64,
    /// Residents unloaded to make room under residency pressure.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over lookups, in `[0, 1]` (`0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Slot {
    hash: u64,
    system: System<f64>,
    id: SystemId,
    /// Service tick of the last lookup hit or insert — the LRU key.
    last_used: u64,
}

/// [`cache_key`]-keyed map from systems to resident [`SystemId`]s.
#[derive(Debug, Clone, Default)]
pub(crate) struct SystemCache {
    slots: Vec<Slot>,
    pub(crate) stats: CacheStats,
    tick: u64,
    /// The service's encoding kind, folded into every key.
    encoding: EncodingKind,
}

impl SystemCache {
    pub(crate) fn new(encoding: EncodingKind) -> Self {
        SystemCache {
            encoding,
            ..SystemCache::default()
        }
    }

    /// Resident id of `system`, if cached. A hash match alone is not a
    /// hit: the support hash ignores coefficients, so the candidate is
    /// verified by full equality. Counts a hit and refreshes LRU.
    pub(crate) fn lookup(&mut self, system: &System<f64>) -> Option<SystemId> {
        let hash = cache_key(system, self.encoding);
        self.tick += 1;
        for slot in &mut self.slots {
            if slot.hash == hash && slot.system == *system {
                slot.last_used = self.tick;
                self.stats.hits += 1;
                return Some(slot.id);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Record a freshly loaded system (the miss was already counted by
    /// the failed lookup).
    pub(crate) fn insert(&mut self, system: System<f64>, id: SystemId) {
        self.tick += 1;
        self.slots.push(Slot {
            hash: cache_key(&system, self.encoding),
            system,
            id,
            last_used: self.tick,
        });
    }

    /// Remove and return the least-recently-used resident — the
    /// eviction victim. Counts an eviction.
    pub(crate) fn pop_lru(&mut self) -> Option<SystemId> {
        let i = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.last_used)
            .map(|(i, _)| i)?;
        self.stats.evictions += 1;
        Some(self.slots.remove(i).id)
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_complex::C64;
    use polygpu_polysys::{random_system, BenchmarkParams, Monomial, Polynomial, Term};

    fn sys(seed: u64) -> System<f64> {
        random_system::<f64>(&BenchmarkParams {
            n: 3,
            m: 2,
            k: 2,
            d: 2,
            seed,
        })
    }

    /// `system` with every coefficient scaled: same supports, different
    /// values — the pair whose hashes collide by design.
    fn rescaled(system: &System<f64>, factor: f64) -> System<f64> {
        let polys = system
            .polys()
            .iter()
            .map(|p| {
                Polynomial::new(
                    p.terms()
                        .iter()
                        .map(|t| Term {
                            coeff: C64 {
                                re: t.coeff.re * factor,
                                im: t.coeff.im,
                            },
                            monomial: Monomial::new(t.monomial.factors().to_vec()).unwrap(),
                        })
                        .collect(),
                )
            })
            .collect();
        System::new(system.dim(), polys).unwrap()
    }

    #[test]
    fn distinct_encodings_key_distinct_residents() {
        let a = sys(1);
        let keys = [
            cache_key(&a, EncodingKind::Direct),
            cache_key(&a, EncodingKind::Compact),
            cache_key(&a, EncodingKind::Packed),
        ];
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "encodings {i} and {j} alias");
            }
        }
        // The tagged key is also distinct from the raw support hash.
        for k in keys {
            assert_ne!(k, a.support_hash());
        }
    }

    #[test]
    fn hash_hit_requires_full_equality() {
        let mut c = SystemCache::new(EncodingKind::Direct);
        let a = sys(1);
        // Same supports, different coefficients: hashes collide by
        // design, but the cache must not serve `b` from `a`'s slot.
        let b = rescaled(&a, 0.5);
        assert_eq!(a.support_hash(), b.support_hash());
        c.insert(a.clone(), SystemId::new(0));
        assert_eq!(c.lookup(&a), Some(SystemId::new(0)));
        assert_eq!(c.lookup(&b), None);
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn lru_evicts_the_stalest_slot() {
        let mut c = SystemCache::new(EncodingKind::Direct);
        c.insert(sys(1), SystemId::new(0));
        c.insert(sys(2), SystemId::new(1));
        c.insert(sys(3), SystemId::new(2));
        // Touch 1 and 3; 2 becomes the LRU victim.
        assert!(c.lookup(&sys(1)).is_some());
        assert!(c.lookup(&sys(3)).is_some());
        assert_eq!(c.pop_lru(), Some(SystemId::new(1)));
        assert_eq!(c.stats.evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn hit_rate_tracks_counters() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
