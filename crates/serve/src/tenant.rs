//! Tenants and priorities: who a job belongs to and how urgently the
//! fair queue should serve it.

use std::fmt;

/// Handle to a tenant registered with a
/// [`SolveService`](crate::service::SolveService). Ids are issued in
/// registration order and are only meaningful against the service that
/// issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub(crate) usize);

impl TenantId {
    /// The raw registration index this handle names.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Service priority of one submitted job.
///
/// Priority scales the job's **virtual charge** in the weighted fair
/// queue: a [`Priority::High`] job consumes half the virtual time of a
/// [`Priority::Normal`] job of the same path count, a
/// [`Priority::Low`] job twice as much — so high-priority work moves
/// ahead *within* the fairness model instead of bypassing it, and a
/// tenant cannot starve the fleet by marking everything urgent (its
/// weight still bounds its share).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    High,
    Normal,
    Low,
}

impl Priority {
    /// Multiplier applied to a job's virtual charge (its cost in the
    /// fair-share accounting). Lower = served sooner.
    pub fn charge_factor(self) -> f64 {
        match self {
            Priority::High => 0.5,
            Priority::Normal => 1.0,
            Priority::Low => 2.0,
        }
    }

    /// Short stable name for reports and tables.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-tenant service configuration.
///
/// ```
/// use polygpu_serve::TenantSpec;
///
/// let spec = TenantSpec::new("acme").with_weight(3).with_max_in_flight(8);
/// assert_eq!(spec.weight, 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Display name (also the sort key of the per-tenant report).
    pub name: String,
    /// Fair-share weight (≥ 1; values below 1 are clamped up at
    /// registration). Over a contended window a tenant receives
    /// service in proportion to `weight / Σ weights`.
    pub weight: u32,
    /// Jobs this tenant may have admitted-but-unfinished at once;
    /// further submissions get the typed
    /// [`ServeError::Overloaded`](crate::ServeError::Overloaded)
    /// backpressure. A degraded fleet shrinks the effective limit
    /// proportionally to surviving devices.
    pub max_in_flight: usize,
}

impl TenantSpec {
    /// A spec with weight 1 and an in-flight budget of 4.
    pub fn new(name: impl Into<String>) -> Self {
        TenantSpec {
            name: name.into(),
            weight: 1,
            max_in_flight: 4,
        }
    }

    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_charge_factors_order_service() {
        assert!(Priority::High.charge_factor() < Priority::Normal.charge_factor());
        assert!(Priority::Normal.charge_factor() < Priority::Low.charge_factor());
        assert_eq!(Priority::High.name(), "high");
        assert_eq!(Priority::Low.to_string(), "low");
    }

    #[test]
    fn spec_builder_sets_fields() {
        let s = TenantSpec::new("t").with_weight(5).with_max_in_flight(2);
        assert_eq!(s.name, "t");
        assert_eq!(s.weight, 5);
        assert_eq!(s.max_in_flight, 2);
    }
}
