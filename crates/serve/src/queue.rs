//! Deterministic weighted fair queuing (WFQ) over tenants.
//!
//! The queue assigns every admitted job a **virtual finish tag**
//!
//! ```text
//! finish(job) = max(V, last_finish[tenant]) + charge / weight
//! ```
//!
//! where `V` is the queue's virtual time (the tag of the last job
//! served), `charge` is the job's cost scaled by its priority
//! ([`Priority::charge_factor`](crate::Priority::charge_factor)), and
//! `weight` is the tenant's fair-share weight. Serving always picks the
//! smallest tag, ties broken by arrival sequence — a pure function of
//! the arrival order and the tenants' parameters, so the same
//! submissions always drain in the same order. Tags grow monotonically
//! within a tenant, which is exactly FIFO per tenant.

/// One queued job: the caller's payload index plus scheduling state.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    /// Caller-side payload index (opaque to the queue).
    job: usize,
    tenant: usize,
    /// Global arrival sequence number — the deterministic tie-break.
    seq: u64,
    /// Virtual finish tag.
    finish: f64,
}

/// A deterministic weighted fair queue. See the module docs for the
/// scheduling discipline.
///
/// ```
/// use polygpu_serve::queue::FairQueue;
///
/// let mut q = FairQueue::new();
/// // Tenant 0 (weight 1) and tenant 1 (weight 2) each enqueue two
/// // equal-cost jobs; tenant 1's higher weight earns it earlier slots.
/// q.push(0, 0, 1, 1.0, 0);
/// q.push(1, 0, 1, 1.0, 1);
/// q.push(2, 1, 2, 1.0, 2);
/// q.push(3, 1, 2, 1.0, 3);
/// let order: Vec<usize> = std::iter::from_fn(|| q.pop()).collect();
/// assert_eq!(order, [2, 0, 3, 1]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FairQueue {
    pending: Vec<Entry>,
    /// `(tenant, last finish tag)` — small and sorted by first insert.
    last_finish: Vec<(usize, f64)>,
    virtual_now: f64,
}

impl FairQueue {
    pub fn new() -> Self {
        FairQueue::default()
    }

    fn last_finish_mut(&mut self, tenant: usize) -> &mut f64 {
        if let Some(i) = self.last_finish.iter().position(|&(t, _)| t == tenant) {
            &mut self.last_finish[i].1
        } else {
            self.last_finish.push((tenant, 0.0));
            &mut self.last_finish.last_mut().expect("just pushed").1
        }
    }

    /// Enqueue `job` for `tenant`. `charge` is the job's virtual cost
    /// (path count × priority factor); `weight ≥ 1` is the tenant's
    /// fair share; `seq` must be globally unique and increasing (the
    /// arrival order).
    pub fn push(&mut self, job: usize, tenant: usize, weight: u32, charge: f64, seq: u64) {
        let v = self.virtual_now;
        let last = self.last_finish_mut(tenant);
        let finish = v.max(*last) + charge / f64::from(weight.max(1));
        *last = finish;
        self.pending.push(Entry {
            job,
            tenant,
            seq,
            finish,
        });
    }

    /// Serve the job with the smallest virtual finish tag (ties by
    /// arrival sequence) and advance virtual time to its tag.
    pub fn pop(&mut self) -> Option<usize> {
        let best = self
            .pending
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.finish.total_cmp(&b.finish).then(a.seq.cmp(&b.seq)))
            .map(|(i, _)| i)?;
        let e = self.pending.swap_remove(best);
        self.virtual_now = self.virtual_now.max(e.finish);
        Some(e.job)
    }

    pub fn len(&self) -> usize {
        self.pending.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Queued jobs of one tenant (the in-flight count admission checks).
    pub fn queued_of(&self, tenant: usize) -> usize {
        self.pending.iter().filter(|e| e.tenant == tenant).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut FairQueue) -> Vec<usize> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    #[test]
    fn fifo_within_a_tenant() {
        let mut q = FairQueue::new();
        for i in 0..5 {
            q.push(i, 0, 1, 1.0 + i as f64, i as u64);
        }
        assert_eq!(drain(&mut q), [0, 1, 2, 3, 4]);
    }

    #[test]
    fn weights_apportion_service() {
        let mut q = FairQueue::new();
        // Tenant 0 weight 1, tenant 1 weight 3, equal unit costs.
        let mut seq = 0u64;
        for i in 0..4 {
            q.push(i, 0, 1, 1.0, seq);
            seq += 1;
        }
        for i in 4..8 {
            q.push(i, 1, 3, 1.0, seq);
            seq += 1;
        }
        let order = drain(&mut q);
        // Tenant 1 clears three jobs before tenant 0's second turn.
        let pos = |j: usize| order.iter().position(|&x| x == j).unwrap();
        assert!(pos(4) < pos(0), "{order:?}");
        assert!(pos(5) < pos(1), "{order:?}");
        assert!(pos(6) < pos(1), "{order:?}");
    }

    #[test]
    fn priority_scales_charge_not_order_guarantees() {
        let mut q = FairQueue::new();
        // Same tenant: a cheaper (higher-priority) later job still
        // waits behind the earlier one — FIFO within a tenant.
        q.push(0, 0, 1, 2.0, 0);
        q.push(1, 0, 1, 0.5, 1);
        assert_eq!(drain(&mut q), [0, 1]);
        // Across tenants the smaller charge lands the earlier tag.
        let mut q = FairQueue::new();
        q.push(0, 0, 1, 2.0, 0);
        q.push(1, 1, 1, 0.5, 1);
        assert_eq!(drain(&mut q), [1, 0]);
    }

    #[test]
    fn ties_break_by_arrival_sequence() {
        let mut q = FairQueue::new();
        q.push(7, 0, 1, 1.0, 0);
        q.push(9, 1, 1, 1.0, 1);
        q.push(8, 2, 1, 1.0, 2);
        assert_eq!(drain(&mut q), [7, 9, 8]);
    }

    #[test]
    fn queued_of_counts_per_tenant() {
        let mut q = FairQueue::new();
        q.push(0, 0, 1, 1.0, 0);
        q.push(1, 1, 1, 1.0, 1);
        q.push(2, 0, 1, 1.0, 2);
        assert_eq!(q.queued_of(0), 2);
        assert_eq!(q.queued_of(1), 1);
        q.pop();
        assert_eq!(q.queued_of(0), 1);
        assert_eq!(q.len(), 2);
    }
}
