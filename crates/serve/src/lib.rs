//! `polygpu-serve` — a deterministic multi-tenant solve service over
//! the simulated GPU fleet.
//!
//! The crate fronts one residency fleet (a single-device session or a
//! row-sharded cluster session) with the serving-layer mechanics a
//! shared polynomial-system solver needs:
//!
//! * **tenants and priorities** ([`TenantSpec`], [`Priority`]) — who a
//!   job belongs to and how urgently to serve it;
//! * **weighted fair queuing** ([`queue::FairQueue`]) — virtual finish
//!   tags apportion service by tenant weight, FIFO within a tenant,
//!   ties broken by arrival order: the drain order is a pure function
//!   of the submissions;
//! * **admission control** ([`SolveService::submit`]) — requests are
//!   sized against the engine spec's admission budget before any
//!   device state is touched; every rejection is a typed
//!   [`ServeError`] and free;
//! * **an encoded-system cache** ([`CacheStats`]) — repeat targets are
//!   served from residency (no encode, no upload), with LRU eviction
//!   under constant-memory pressure;
//! * **deterministic service reports** ([`ServeReport`]) — modeled
//!   queue waits, admission costs, solve times, per-tenant telemetry
//!   and `serve → admit → wait → solve` spans, byte-identical across
//!   runs of the same submissions.
//!
//! ```
//! use polygpu_core::engine::{Backend, Engine};
//! use polygpu_homotopy::solve::SolveRequest;
//! use polygpu_polysys::{random_system, BenchmarkParams};
//! use polygpu_serve::{Priority, SolveService, TenantSpec};
//!
//! let builder = Engine::builder().backend(Backend::GpuBatch { capacity: 8 });
//! let mut svc = SolveService::new(&builder).unwrap();
//! let acme = svc.register(TenantSpec::new("acme"));
//! let params = BenchmarkParams { n: 2, m: 2, k: 2, d: 2, seed: 1 };
//! let target = random_system::<f64>(&params);
//! svc.submit(acme, Priority::Normal, SolveRequest::new(target)).unwrap();
//! let report = svc.run();
//! assert_eq!(report.jobs.len(), 1);
//! assert!(report.jobs[0].paths > 0);
//! assert_eq!(report.cache.misses, 1);
//! ```

pub mod cache;
pub mod error;
pub mod queue;
pub mod service;
pub mod tenant;

pub use cache::{cache_key, CacheStats};
pub use error::ServeError;
pub use queue::FairQueue;
pub use service::{JobId, JobOutcome, JobRecord, ServeReport, SolveService, TenantReport};
pub use tenant::{Priority, TenantId, TenantSpec};
