//! Service-level integration tests: typed admission, cache
//! amortization, chaos degradation, and the determinism contract —
//! admission and fair-queue decisions are pure functions of the
//! arrival order, the engine caps and the tenant budgets, fault
//! injection included.

use polygpu_complex::C64;
use polygpu_core::engine::{Backend, Engine, SystemShardPolicy};
use polygpu_core::{ClusterPolicy, EncodingKind, FaultPlan, ShardMode};
use polygpu_gpusim::device::DeviceSpec;
use polygpu_homotopy::solve::{SolveRequest, StartSelection};
use polygpu_obs::{CollectingTracer, Span};
use polygpu_polysys::{
    random_sparse_system, random_system, BenchmarkParams, Monomial, Polynomial,
    SparseBenchmarkParams, System, Term,
};
use polygpu_serve::{cache_key, Priority, ServeError, SolveService, TenantSpec};
use proptest::prelude::*;
use std::sync::Arc;

fn sys(seed: u64) -> System<f64> {
    random_system::<f64>(&BenchmarkParams {
        n: 2,
        m: 2,
        k: 2,
        d: 2,
        seed,
    })
}

/// A small request: 4 paths of a random uniform target.
fn request(seed: u64) -> SolveRequest {
    SolveRequest::new(sys(seed)).with_starts(StartSelection::FirstN(4))
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Submit a derived sequence of `n` jobs (tenant, priority and target
/// are pure functions of `seed`) and serve them. Returns the decision
/// strings, the rendered report and the span export — the three
/// artifacts the determinism contract covers.
fn run_once(seed: u64, n: usize, chaos: bool) -> (Vec<String>, String, Vec<Span>) {
    let mut builder = Engine::builder().backend(Backend::GpuBatch { capacity: 4 });
    if chaos {
        builder = builder.fault_plan(FaultPlan::new(seed, 30_000));
    }
    let tracer = Arc::new(CollectingTracer::new());
    let mut svc = SolveService::new(&builder)
        .unwrap()
        .with_tracer(tracer.clone());
    let tenants = [
        svc.register(TenantSpec::new("alpha").with_weight(1)),
        svc.register(TenantSpec::new("beta").with_weight(2)),
        svc.register(
            TenantSpec::new("gamma")
                .with_weight(3)
                .with_max_in_flight(2),
        ),
    ];
    let mut decisions = Vec::new();
    for i in 0..n {
        let r = splitmix(seed.wrapping_mul(31).wrapping_add(i as u64));
        let tenant = tenants[(r % 3) as usize];
        let priority = match (r >> 8) % 3 {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        };
        let target_seed = (r >> 16) % 3;
        let got = svc.submit(tenant, priority, request(target_seed));
        decisions.push(match got {
            Ok(id) => format!("admit:{}", id.index()),
            Err(e) => format!("reject:{e}"),
        });
    }
    let report = svc.run();
    (decisions, report.render(), tracer.spans())
}

#[test]
fn identical_runs_are_byte_identical() {
    let (d1, r1, s1) = run_once(7, 6, false);
    let (d2, r2, s2) = run_once(7, 6, false);
    assert_eq!(d1, d2, "admission decisions diverged");
    assert_eq!(r1, r2, "rendered reports diverged");
    assert_eq!(s1, s2, "span exports diverged");
    assert!(!s1.is_empty(), "the tracer saw serve spans");
    assert!(r1.contains("solve service report"), "{r1}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The determinism contract, swept: admission decisions, service
    /// order, rendered report and span export are pure functions of
    /// (arrival order, caps, budgets) — with and without an injected
    /// fault plan.
    #[test]
    fn service_is_a_pure_function_of_arrivals(seed in 0u64..1000, n in 1usize..7, chaos in 0u32..2) {
        let chaos = chaos == 1;
        let (d1, r1, s1) = run_once(seed, n, chaos);
        let (d2, r2, s2) = run_once(seed, n, chaos);
        prop_assert_eq!(d1, d2, "decisions diverged (seed {}, chaos {})", seed, chaos);
        prop_assert_eq!(r1, r2, "reports diverged (seed {}, chaos {})", seed, chaos);
        prop_assert_eq!(s1.len(), s2.len(), "span counts diverged");
        prop_assert!(s1 == s2, "span exports diverged (seed {}, chaos {})", seed, chaos);
    }
}

#[test]
fn repeat_targets_amortize_through_the_cache() {
    let builder = Engine::builder().backend(Backend::GpuBatch { capacity: 4 });
    let mut svc = SolveService::new(&builder).unwrap();
    let t = svc.register(TenantSpec::new("acme").with_max_in_flight(8));
    // Two targets, alternating: the second round of each is a cache
    // hit that pays at most a command-queue switch instead of the
    // full encode + upload + validation-probe setup.
    for _ in 0..2 {
        svc.submit(t, Priority::Normal, request(1)).unwrap();
        svc.submit(t, Priority::Normal, request(2)).unwrap();
    }
    let report = svc.run();
    assert_eq!(report.jobs.len(), 4);
    assert_eq!(report.cache.misses, 2);
    assert_eq!(report.cache.hits, 2);
    assert_eq!(report.cache.evictions, 0);
    let miss: Vec<f64> = report
        .jobs
        .iter()
        .filter(|j| !j.cache_hit)
        .map(|j| j.admission_seconds)
        .collect();
    let hit: Vec<f64> = report
        .jobs
        .iter()
        .filter(|j| j.cache_hit)
        .map(|j| j.admission_seconds)
        .collect();
    assert_eq!(miss.len(), 2);
    assert_eq!(hit.len(), 2);
    for (m, h) in miss.iter().zip(&hit) {
        assert!(
            h * 5.0 <= *m,
            "repeat admission must be >= 5x cheaper: miss {m:.3e}, hit {h:.3e}"
        );
    }
}

/// `system` with every real part scaled: same supports, different
/// coefficients — the pair whose support hashes collide by design.
fn rescaled(system: &System<f64>, factor: f64) -> System<f64> {
    let polys = system
        .polys()
        .iter()
        .map(|p| {
            Polynomial::new(
                p.terms()
                    .iter()
                    .map(|t| Term {
                        coeff: C64 {
                            re: t.coeff.re * factor,
                            im: t.coeff.im,
                        },
                        monomial: Monomial::new(t.monomial.factors().to_vec()).unwrap(),
                    })
                    .collect(),
            )
        })
        .collect();
    System::new(system.dim(), polys).unwrap()
}

/// Collision/aliasing regression for the residency-cache key: the key
/// covers the encoding kind (a dense and a packed encoding of the same
/// support are distinct residents) and sparse (ragged) supports, and a
/// designed support-hash collision never serves one system from
/// another's resident engine.
#[test]
fn cache_key_separates_encodings_and_collisions_never_alias() {
    // A dense and a packed encoding of the SAME support must be
    // distinct residents: their constant-memory layouts differ.
    let a = sys(1);
    assert_ne!(
        cache_key(&a, EncodingKind::Direct),
        cache_key(&a, EncodingKind::Packed),
        "dense and packed encodings of one support alias"
    );
    assert_ne!(
        cache_key(&a, EncodingKind::Direct),
        cache_key(&a, EncodingKind::Compact),
    );

    // The key covers ragged (sparse) supports: distinct ragged
    // supports key apart, and the encoding tag still separates them.
    let ragged = |seed| {
        random_sparse_system::<f64>(&SparseBenchmarkParams {
            n: 4,
            m_min: 1,
            m_max: 3,
            k_min: 0,
            k_max: 3,
            d: 3,
            seed,
        })
    };
    let (r5, r6) = (ragged(5), ragged(6));
    assert!(r5.uniform_shape().is_err(), "family must be ragged");
    assert_ne!(
        cache_key(&r5, EncodingKind::Packed),
        cache_key(&r6, EncodingKind::Packed),
    );
    assert_ne!(
        cache_key(&r5, EncodingKind::Direct),
        cache_key(&r5, EncodingKind::Packed),
    );

    // Aliasing through the service: rescaled coefficients collide on
    // the support hash by design, so the second submission must pay
    // its own load — never be served from the first one's residency.
    let b = rescaled(&a, 0.5);
    assert_eq!(a.support_hash(), b.support_hash());
    assert_eq!(
        cache_key(&a, EncodingKind::Direct),
        cache_key(&b, EncodingKind::Direct),
        "the collision under test disappeared"
    );
    let builder = Engine::builder().backend(Backend::GpuBatch { capacity: 4 });
    let mut svc = SolveService::new(&builder).unwrap();
    let t = svc.register(TenantSpec::new("acme").with_max_in_flight(8));
    let req = |s: &System<f64>| SolveRequest::new(s.clone()).with_starts(StartSelection::FirstN(2));
    svc.submit(t, Priority::Normal, req(&a)).unwrap();
    svc.submit(t, Priority::Normal, req(&b)).unwrap();
    svc.submit(t, Priority::Normal, req(&a)).unwrap();
    let report = svc.run();
    assert_eq!(report.jobs.len(), 3);
    assert_eq!(
        report.cache.misses, 2,
        "colliding hash aliased: b was served from a's slot"
    );
    assert_eq!(report.cache.hits, 1, "the true repeat of a is a hit");
}

#[test]
fn never_fits_is_typed_and_free() {
    let builder = Engine::builder().backend(Backend::GpuBatch { capacity: 4 });
    let mut svc = SolveService::new(&builder).unwrap();
    let t = svc.register(TenantSpec::new("acme"));
    // 8 polys x 520 monomials x 8 vars: the direct encoding wants
    // 2 * 8 * 520 * 8 = 66,560 bytes against the C2050's 64 KiB —
    // the serving-layer face of the paper's constant-memory wall.
    let huge = random_system::<f64>(&BenchmarkParams {
        n: 8,
        m: 520,
        k: 8,
        d: 2,
        seed: 3,
    });
    let err = svc
        .submit(t, Priority::Normal, SolveRequest::new(huge))
        .unwrap_err();
    match err {
        ServeError::NeverFits { needed, budget } => {
            assert!(needed > budget, "needed {needed} vs budget {budget}");
        }
        other => panic!("expected NeverFits, got {other}"),
    }
    // Rejection is free: no queue slot, no residency, no modeled time.
    assert_eq!(svc.queued(), 0);
    assert_eq!(svc.resident_systems(), 0);
    assert_eq!(svc.clock(), 0.0);
    // The service still serves well-sized work afterwards.
    svc.submit(t, Priority::Normal, request(1)).unwrap();
    let report = svc.run();
    assert_eq!(report.jobs.len(), 1);
    assert_eq!(report.rejected_unservable, 1);
}

#[test]
fn overload_is_typed_backpressure_that_drains() {
    let builder = Engine::builder().backend(Backend::GpuBatch { capacity: 4 });
    let mut svc = SolveService::new(&builder).unwrap();
    let t = svc.register(TenantSpec::new("acme").with_max_in_flight(1));
    svc.submit(t, Priority::Normal, request(1)).unwrap();
    let err = svc.submit(t, Priority::Normal, request(2)).unwrap_err();
    match err {
        ServeError::Overloaded {
            in_flight, limit, ..
        } => {
            assert_eq!((in_flight, limit), (1, 1));
        }
        other => panic!("expected Overloaded, got {other}"),
    }
    let report = svc.run();
    assert_eq!(report.jobs.len(), 1);
    assert_eq!(report.rejected_overloaded, 1);
    // Served jobs return their in-flight slot.
    svc.submit(t, Priority::Normal, request(2)).unwrap();
    assert_eq!(svc.queued(), 1);
}

#[test]
fn bad_requests_are_typed() {
    let builder = Engine::builder().backend(Backend::GpuBatch { capacity: 4 });
    let mut svc = SolveService::new(&builder).unwrap();
    let t = svc.register(TenantSpec::new("acme"));
    // Unknown tenant ids are rejected before anything else.
    let ghost = {
        let mut other = SolveService::new(&builder).unwrap();
        other.register(TenantSpec::new("a"));
        other.register(TenantSpec::new("b"))
    };
    assert!(matches!(
        svc.submit(ghost, Priority::Normal, request(1)),
        Err(ServeError::UnknownTenant)
    ));
    // Escalating precision is not served (typed, not downgraded).
    let esc = request(1).with_precision(polygpu_homotopy::solve::PrecisionPolicy::Escalating {
        dd_params: Default::default(),
    });
    assert!(matches!(
        svc.submit(t, Priority::Normal, esc),
        Err(ServeError::UnsupportedPrecision)
    ));
    // Mixed-cell start systems are a solver-side feature: the service
    // replays the start system itself, so the kind rejects typed.
    let polyhedral =
        request(1).with_start_kind(polygpu_homotopy::solve::StartKind::MixedCells { lift_seed: 7 });
    match svc.submit(t, Priority::Normal, polyhedral) {
        Err(ServeError::BadRequest { reason }) => {
            assert!(reason.contains("MixedCells"), "{reason}");
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }
}

#[test]
fn unsupported_backends_reject_at_construction() {
    let cpu = Engine::builder().backend(Backend::CpuReference);
    assert!(matches!(
        SolveService::new(&cpu),
        Err(ServeError::UnsupportedBackend { .. })
    ));
    let points = Engine::builder().backend(Backend::Cluster {
        devices: vec![DeviceSpec::tesla_c2050(); 2],
        shard: ShardMode::Points {
            policy: ClusterPolicy::RoundRobin,
        },
    });
    assert!(matches!(
        SolveService::new(&points),
        Err(ServeError::UnsupportedBackend { .. })
    ));
}

/// Chaos: a row-sharded fleet with heavy fault injection keeps
/// *serving* — jobs fail typed or succeed, the run itself never
/// errors, and the whole thing stays deterministic.
#[test]
fn chaos_degrades_jobs_not_the_service() {
    let serve = |seed: u64| {
        let builder = Engine::builder()
            .backend(Backend::Cluster {
                devices: vec![DeviceSpec::tesla_c2050(); 2],
                shard: SystemShardPolicy::Contiguous.into(),
            })
            .per_device_capacity(4)
            .fault_plan(FaultPlan::new(seed, 200_000));
        let mut svc = SolveService::new(&builder).unwrap();
        let t = svc.register(TenantSpec::new("acme").with_max_in_flight(8));
        for target in [1u64, 2, 1] {
            svc.submit(t, Priority::Normal, request(target)).unwrap();
        }
        svc.run()
    };
    for seed in [3u64, 11, 29] {
        let report = serve(seed);
        assert_eq!(report.jobs.len(), 3, "every admitted job is accounted for");
        let again = serve(seed);
        assert_eq!(
            report.render(),
            again.render(),
            "chaos run diverged (seed {seed})"
        );
    }
}

#[test]
fn fault_free_cluster_serve_succeeds() {
    let builder = Engine::builder()
        .backend(Backend::Cluster {
            devices: vec![DeviceSpec::tesla_c2050(); 2],
            shard: SystemShardPolicy::Contiguous.into(),
        })
        .per_device_capacity(4);
    let mut svc = SolveService::new(&builder).unwrap();
    let t = svc.register(TenantSpec::new("acme").with_max_in_flight(8));
    for target in [1u64, 2] {
        svc.submit(t, Priority::Normal, request(target)).unwrap();
    }
    let report = svc.run();
    assert_eq!(report.jobs.len(), 2);
    assert_eq!(report.solved(), 2, "{report:?}");
    assert!(!report.degraded);
}

/// `CorrectorMode::DeviceResident` flows through the service: a
/// resident job's endpoints (and success count) are bit-identical to
/// the same request served in host mode — the fused corrector is a
/// transfer optimization, never a numerical one — across single-device
/// and row-sharded cluster fleets (the fleet shapes the service hosts).
#[test]
fn device_resident_jobs_match_host_jobs_bit_for_bit() {
    use polygpu_homotopy::CorrectorMode;
    let backends = [
        Backend::GpuBatch { capacity: 4 },
        Backend::Cluster {
            devices: vec![DeviceSpec::tesla_c2050(); 2],
            shard: SystemShardPolicy::Contiguous.into(),
        },
    ];
    for backend in backends {
        let serve = |mode: CorrectorMode| {
            let builder = Engine::builder()
                .backend(backend.clone())
                .per_device_capacity(4);
            let mut svc = SolveService::new(&builder).unwrap();
            let t = svc.register(TenantSpec::new("acme").with_max_in_flight(8));
            for target in [1u64, 2] {
                svc.submit(t, Priority::Normal, request(target).with_corrector(mode))
                    .unwrap();
            }
            svc.run()
        };
        let host = serve(CorrectorMode::Host);
        let resident = serve(CorrectorMode::DeviceResident);
        assert_eq!(host.jobs.len(), resident.jobs.len());
        for (h, r) in host.jobs.iter().zip(&resident.jobs) {
            assert_eq!(h.outcome, r.outcome, "{backend:?}");
            assert_eq!(h.successes, r.successes, "{backend:?}");
            assert_eq!(
                h.endpoint_checksum, r.endpoint_checksum,
                "{backend:?}: endpoints must be bit-identical across corrector modes"
            );
        }
    }
}
