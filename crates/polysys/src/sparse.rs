//! Sparse (ragged) support structures: per-equation monomial lists with
//! arbitrary multi-indices and **no uniform-shape assumption**.
//!
//! The paper's benchmark systems are regular — `m` monomials per
//! polynomial, `k` variables per monomial — which is what
//! [`UniformShape`](crate::UniformShape) captures and what the dense
//! `Direct`/`Compact` constant-memory encodings require. Real systems
//! are sparse and ragged: each equation has its own monomial count and
//! each monomial its own variable count (including constant terms with
//! an empty support). [`SparseSupport`] is the shape-free view of a
//! system's supports that the packed exponent-key encoding and the
//! polyhedral (mixed-cell) start machinery consume, and
//! [`SparseShape`] is its summary: the maxima that size device
//! buffers, shared-memory scratch and zero-padded `Mons` layouts.

use crate::monomial::{Exp, Var};
use crate::system::System;
use polygpu_complex::Real;

/// Shape summary of a ragged system: the maxima and totals that size
/// every downstream buffer. Unlike `UniformShape` this always exists —
/// a uniform system is just the special case `max_m == m`,
/// `max_k == k` for every equation and monomial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseShape {
    /// Dimension (number of variables).
    pub n: usize,
    /// Number of equations (rows; `== n` for square systems).
    pub rows: usize,
    /// Total monomials across all equations.
    pub total_monomials: usize,
    /// Largest per-equation monomial count (zero-padding width of the
    /// sparse `Mons` layout).
    pub max_m: usize,
    /// Largest per-monomial variable count (shared-memory scratch
    /// width; `0` only for systems of constants).
    pub max_k: usize,
    /// Largest exponent appearing anywhere (power-table depth), `>= 1`.
    pub d: Exp,
    /// `true` when every equation has the same monomial count and every
    /// monomial the same variable count — i.e. the system also has a
    /// `UniformShape` and the dense pipeline can evaluate it.
    pub uniform: bool,
}

impl SparseShape {
    /// Outputs per evaluation point: `rows` values plus the `rows × n`
    /// Jacobian, laid out as the dense pipeline's `q` index.
    pub fn outputs(&self) -> usize {
        self.rows * (1 + self.n)
    }

    /// Elements of the zero-padded sparse `Mons` scratch:
    /// `max_m × outputs`, mirroring the dense `mons_len`.
    pub fn mons_len(&self) -> usize {
        self.max_m * self.outputs()
    }
}

/// The supports of a system, detached from its coefficients: for each
/// equation, the list of its monomials' sorted `(variable, exponent)`
/// factor lists. This is the input to both the packed exponent-key
/// encoder (which never sees coefficients) and the polyhedral
/// mixed-cell computation (which works on the supports as lattice
/// point sets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseSupport {
    n: usize,
    supports: Vec<Vec<Vec<(Var, Exp)>>>,
}

impl SparseSupport {
    /// Extract the supports of `system` (coefficients dropped).
    pub fn of<R: Real>(system: &System<R>) -> Self {
        let supports = system
            .polys()
            .iter()
            .map(|poly| {
                poly.terms()
                    .iter()
                    .map(|t| t.monomial.factors().to_vec())
                    .collect()
            })
            .collect();
        SparseSupport {
            n: system.dim(),
            supports,
        }
    }

    /// Dimension (number of variables).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of equations.
    pub fn rows(&self) -> usize {
        self.supports.len()
    }

    /// The factor lists of equation `p`'s monomials, in term order.
    pub fn equation(&self, p: usize) -> &[Vec<(Var, Exp)>] {
        &self.supports[p]
    }

    /// Equation `p`'s support as dense lattice points in `Z^n` — the
    /// form the mixed-cell computation consumes.
    pub fn lattice_points(&self, p: usize) -> Vec<Vec<i64>> {
        self.supports[p]
            .iter()
            .map(|factors| {
                let mut a = vec![0i64; self.n];
                for &(v, e) in factors {
                    a[v as usize] = e as i64;
                }
                a
            })
            .collect()
    }

    /// Shape summary (maxima and totals).
    pub fn shape(&self) -> SparseShape {
        sparse_shape_of(self.n, self.supports.len(), |p| {
            self.supports[p].iter().map(|f| f.as_slice())
        })
    }
}

/// Shared shape scan used by [`SparseSupport::shape`] and
/// [`System::sparse_shape`].
fn sparse_shape_of<'a, I>(n: usize, rows: usize, eq: impl Fn(usize) -> I) -> SparseShape
where
    I: Iterator<Item = &'a [(Var, Exp)]>,
{
    let mut total = 0usize;
    let mut max_m = 0usize;
    let mut max_k = 0usize;
    let mut d: Exp = 1;
    let mut uniform = true;
    let mut first_m: Option<usize> = None;
    let mut first_k: Option<usize> = None;
    for p in 0..rows {
        let mut m = 0usize;
        for factors in eq(p) {
            m += 1;
            let k = factors.len();
            max_k = max_k.max(k);
            match first_k {
                None => first_k = Some(k),
                Some(k0) if k0 != k => uniform = false,
                _ => {}
            }
            for &(_, e) in factors {
                d = d.max(e);
            }
        }
        total += m;
        max_m = max_m.max(m);
        match first_m {
            None => first_m = Some(m),
            Some(m0) if m0 != m => uniform = false,
            _ => {}
        }
    }
    // A uniform shape additionally requires k >= 1 (no constant terms):
    // the dense encodings reject empty supports.
    if first_k == Some(0) || first_k.is_none() {
        uniform = false;
    }
    SparseShape {
        n,
        rows,
        total_monomials: total,
        max_m,
        max_k,
        d,
        uniform,
    }
}

impl<R: Real> System<R> {
    /// Shape summary of this system's (possibly ragged) supports.
    /// Always succeeds — contrast with
    /// [`System::uniform_shape`](crate::System::uniform_shape), which
    /// rejects ragged systems.
    pub fn sparse_shape(&self) -> SparseShape {
        sparse_shape_of(self.dim(), self.rows(), |p| {
            self.polys()[p].terms().iter().map(|t| t.monomial.factors())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{random_system, BenchmarkParams};
    use crate::monomial::Monomial;
    use crate::polynomial::{Polynomial, Term};
    use polygpu_complex::C64;

    fn ragged() -> System<f64> {
        // f0 = x0^2 x1 + x1 + 3;  f1 = x0 x1^3
        let p0 = Polynomial::new(vec![
            Term {
                coeff: C64::one(),
                monomial: Monomial::new(vec![(0, 2), (1, 1)]).unwrap(),
            },
            Term {
                coeff: C64::one(),
                monomial: Monomial::var(1),
            },
            Term {
                coeff: C64::from_f64(3.0, 0.0),
                monomial: Monomial::constant(),
            },
        ]);
        let p1 = Polynomial::new(vec![Term {
            coeff: C64::one(),
            monomial: Monomial::new(vec![(0, 1), (1, 3)]).unwrap(),
        }]);
        System::new(2, vec![p0, p1]).unwrap()
    }

    #[test]
    fn ragged_shape_scans_maxima() {
        let sys = ragged();
        let shape = sys.sparse_shape();
        assert_eq!(shape.n, 2);
        assert_eq!(shape.rows, 2);
        assert_eq!(shape.total_monomials, 4);
        assert_eq!(shape.max_m, 3);
        assert_eq!(shape.max_k, 2);
        assert_eq!(shape.d, 3);
        assert!(!shape.uniform);
        assert_eq!(shape.outputs(), 2 * 3);
        assert_eq!(shape.mons_len(), 3 * 6);
        assert!(sys.uniform_shape().is_err());
    }

    #[test]
    fn uniform_system_is_flagged_uniform() {
        let params = BenchmarkParams {
            n: 6,
            m: 4,
            k: 3,
            d: 4,
            seed: 2,
        };
        let sys = random_system::<f64>(&params);
        let shape = sys.sparse_shape();
        assert!(shape.uniform);
        let u = sys.uniform_shape().unwrap();
        assert_eq!(shape.max_m, u.m);
        assert_eq!(shape.max_k, u.k);
        assert_eq!(shape.d, u.d);
        assert_eq!(shape.total_monomials, u.total_monomials());
        assert_eq!(shape.outputs(), u.outputs());
    }

    #[test]
    fn support_detaches_coefficients_and_exposes_lattice_points() {
        let sys = ragged();
        let sup = SparseSupport::of(&sys);
        assert_eq!(sup.n(), 2);
        assert_eq!(sup.rows(), 2);
        assert_eq!(sup.equation(0).len(), 3);
        assert_eq!(sup.equation(0)[0], vec![(0, 2), (1, 1)]);
        assert_eq!(sup.equation(0)[2], Vec::<(Var, Exp)>::new());
        assert_eq!(
            sup.lattice_points(0),
            vec![vec![2, 1], vec![0, 1], vec![0, 0]]
        );
        assert_eq!(sup.lattice_points(1), vec![vec![1, 3]]);
        assert_eq!(sup.shape(), sys.sparse_shape());
        // Rescaling coefficients leaves the support unchanged.
        let scaled: System<f64> = System::new(
            2,
            sys.polys()
                .iter()
                .map(|p| {
                    Polynomial::new(
                        p.terms()
                            .iter()
                            .map(|t| Term {
                                coeff: t.coeff.scale(2.0),
                                monomial: t.monomial.clone(),
                            })
                            .collect(),
                    )
                })
                .collect(),
        )
        .unwrap();
        assert_eq!(SparseSupport::of(&scaled), sup);
    }

    #[test]
    fn constant_only_system_is_not_uniform() {
        let p = Polynomial::new(vec![Term {
            coeff: C64::one(),
            monomial: Monomial::constant(),
        }]);
        let sys = System::new(1, vec![p]).unwrap();
        let shape = sys.sparse_shape();
        assert_eq!(shape.max_k, 0);
        assert_eq!(shape.d, 1);
        assert!(!shape.uniform);
    }
}
