//! Sparse monomials: sorted lists of `(variable, exponent)` pairs.
//!
//! The paper's problem statement (§2) stores a polynomial as a tuple
//! `(C, A)` of coefficients and *supports* (exponent vectors). Because
//! the systems are sparse, we store each monomial as the list of
//! variables that actually occur, with exponents `>= 1` — exactly the
//! information the GPU layouts (`Positions`/`Exponents`) encode.

use std::fmt;

/// Index of a variable, `0`-based. The paper's constant-memory encoding
/// limits positions to a `u8` ("a position of a variable from 0 to
/// 255"); the in-memory representation is wider so the encoding layer
/// can report the limit instead of silently truncating.
pub type Var = u16;

/// Exponent of a variable in a monomial. Always `>= 1` when stored.
/// The paper's encoding stores `exponent - 1` in a `u8`, "giving us
/// opportunity to work with variables appearing in degrees up to 255".
pub type Exp = u16;

/// A sparse monomial `x_{i1}^{a1} · x_{i2}^{a2} · … · x_{ik}^{ak}` with
/// `i1 < i2 < … < ik` and all `aj >= 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Monomial {
    factors: Vec<(Var, Exp)>,
}

/// Errors constructing a [`Monomial`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonomialError {
    /// An exponent of zero was supplied; absent variables must simply be
    /// omitted from the support.
    ZeroExponent(Var),
    /// The same variable appeared twice.
    DuplicateVariable(Var),
}

impl fmt::Display for MonomialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonomialError::ZeroExponent(v) => {
                write!(f, "variable x{v} given exponent 0; omit it instead")
            }
            MonomialError::DuplicateVariable(v) => {
                write!(f, "variable x{v} appears more than once")
            }
        }
    }
}

impl std::error::Error for MonomialError {}

impl Monomial {
    /// Build from `(variable, exponent)` pairs in any order.
    pub fn new(mut factors: Vec<(Var, Exp)>) -> Result<Self, MonomialError> {
        factors.sort_unstable_by_key(|&(v, _)| v);
        for w in factors.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(MonomialError::DuplicateVariable(w[0].0));
            }
        }
        if let Some(&(v, _)) = factors.iter().find(|&&(_, e)| e == 0) {
            return Err(MonomialError::ZeroExponent(v));
        }
        Ok(Monomial { factors })
    }

    /// The constant monomial `1` (empty support).
    pub fn constant() -> Self {
        Monomial {
            factors: Vec::new(),
        }
    }

    /// A single variable `x_v`.
    pub fn var(v: Var) -> Self {
        Monomial {
            factors: vec![(v, 1)],
        }
    }

    /// Number of distinct variables (the paper's `k`).
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.factors.len()
    }

    /// Total degree `Σ aj`.
    pub fn total_degree(&self) -> u32 {
        self.factors.iter().map(|&(_, e)| e as u32).sum()
    }

    /// Largest exponent of any single variable (the paper's `d` is the
    /// system-wide bound on this).
    pub fn max_exponent(&self) -> Exp {
        self.factors.iter().map(|&(_, e)| e).max().unwrap_or(0)
    }

    /// Sorted `(variable, exponent)` pairs.
    #[inline]
    pub fn factors(&self) -> &[(Var, Exp)] {
        &self.factors
    }

    /// Does `x_v` occur?
    pub fn contains(&self, v: Var) -> bool {
        self.factors.binary_search_by_key(&v, |&(w, _)| w).is_ok()
    }

    /// Exponent of `x_v` (0 if absent).
    pub fn exponent_of(&self, v: Var) -> Exp {
        match self.factors.binary_search_by_key(&v, |&(w, _)| w) {
            Ok(i) => self.factors[i].1,
            Err(_) => 0,
        }
    }

    /// The monomial of the partial derivative w.r.t. `x_v`, i.e. the
    /// support of `∂(x^a)/∂x_v` (without the numeric factor `a_v`).
    /// Returns `None` when the derivative is zero.
    pub fn derivative_support(&self, v: Var) -> Option<Monomial> {
        let i = self.factors.binary_search_by_key(&v, |&(w, _)| w).ok()?;
        let mut f = self.factors.clone();
        if f[i].1 == 1 {
            f.remove(i);
        } else {
            f[i].1 -= 1;
        }
        Some(Monomial { factors: f })
    }

    /// The common-factor support `x^{a - 1}` restricted to occurring
    /// variables: each exponent reduced by one, variables with exponent
    /// one dropping out. This is the quantity kernel 1 of the paper
    /// evaluates.
    pub fn common_factor_support(&self) -> Monomial {
        let factors = self
            .factors
            .iter()
            .filter(|&&(_, e)| e > 1)
            .map(|&(v, e)| (v, e - 1))
            .collect();
        Monomial { factors }
    }

    /// The Speelpenning product `x_{i1} x_{i2} … x_{ik}` of this
    /// monomial's variables.
    pub fn speelpenning_support(&self) -> Monomial {
        Monomial {
            factors: self.factors.iter().map(|&(v, _)| (v, 1)).collect(),
        }
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.factors.is_empty() {
            return write!(f, "1");
        }
        for (i, &(v, e)) in self.factors.iter().enumerate() {
            if i > 0 {
                write!(f, "*")?;
            }
            if e == 1 {
                write!(f, "x{v}")?;
            } else {
                write!(f, "x{v}^{e}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_validates() {
        let m = Monomial::new(vec![(3, 2), (1, 1), (2, 7)]).unwrap();
        assert_eq!(m.factors(), &[(1, 1), (2, 7), (3, 2)]);
        assert_eq!(m.num_vars(), 3);
        assert_eq!(m.total_degree(), 10);
        assert_eq!(m.max_exponent(), 7);
    }

    #[test]
    fn rejects_zero_exponent_and_duplicates() {
        assert_eq!(
            Monomial::new(vec![(1, 0)]),
            Err(MonomialError::ZeroExponent(1))
        );
        assert_eq!(
            Monomial::new(vec![(1, 2), (1, 3)]),
            Err(MonomialError::DuplicateVariable(1))
        );
    }

    #[test]
    fn derivative_support_drops_or_decrements() {
        // d/dx2 of x1^3 x2 x3^2 = x1^3 x3^2 (x2 drops out)
        let m = Monomial::new(vec![(1, 3), (2, 1), (3, 2)]).unwrap();
        let d2 = m.derivative_support(2).unwrap();
        assert_eq!(d2.factors(), &[(1, 3), (3, 2)]);
        // d/dx1 decrements
        let d1 = m.derivative_support(1).unwrap();
        assert_eq!(d1.factors(), &[(1, 2), (2, 1), (3, 2)]);
        // d/dx7 of something without x7 is zero
        assert!(m.derivative_support(7).is_none());
    }

    #[test]
    fn paper_example_common_factor() {
        // Paper §3.1: monomial x1^3 x2^7 x3^2 has common factor
        // x1^2 x2^6 x3 (shifted to 0-based variables here).
        let m = Monomial::new(vec![(0, 3), (1, 7), (2, 2)]).unwrap();
        let cf = m.common_factor_support();
        assert_eq!(cf.factors(), &[(0, 2), (1, 6), (2, 1)]);
        let sp = m.speelpenning_support();
        assert_eq!(sp.factors(), &[(0, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn common_factor_of_multilinear_is_constant() {
        let m = Monomial::new(vec![(0, 1), (5, 1)]).unwrap();
        assert_eq!(m.common_factor_support(), Monomial::constant());
    }

    #[test]
    fn exponent_queries() {
        let m = Monomial::new(vec![(2, 4), (9, 1)]).unwrap();
        assert!(m.contains(2));
        assert!(!m.contains(3));
        assert_eq!(m.exponent_of(2), 4);
        assert_eq!(m.exponent_of(3), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Monomial::constant().to_string(), "1");
        assert_eq!(
            Monomial::new(vec![(0, 1), (3, 2)]).unwrap().to_string(),
            "x0*x3^2"
        );
    }
}
