//! Sparse polynomials: lists of complex-coefficient terms.

use crate::monomial::{Exp, Monomial, Var};
use polygpu_complex::{Complex, Real};
use std::fmt;

/// One additive term `c · x^a`.
#[derive(Debug, Clone, PartialEq)]
pub struct Term<R> {
    pub coeff: Complex<R>,
    pub monomial: Monomial,
}

/// A sparse polynomial in several variables: `Σ c_a x^a`.
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial<R> {
    terms: Vec<Term<R>>,
}

impl<R: Real> Polynomial<R> {
    pub fn new(terms: Vec<Term<R>>) -> Self {
        Polynomial { terms }
    }

    pub fn zero() -> Self {
        Polynomial { terms: Vec::new() }
    }

    #[inline]
    pub fn terms(&self) -> &[Term<R>] {
        &self.terms
    }

    #[inline]
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Largest variable index occurring (plus one), i.e. the minimal
    /// ambient dimension.
    pub fn min_dimension(&self) -> usize {
        self.terms
            .iter()
            .flat_map(|t| t.monomial.factors())
            .map(|&(v, _)| v as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Total degree: max over terms.
    pub fn total_degree(&self) -> u32 {
        self.terms
            .iter()
            .map(|t| t.monomial.total_degree())
            .max()
            .unwrap_or(0)
    }

    /// Largest single-variable exponent (the paper's `d` for this
    /// polynomial).
    pub fn max_exponent(&self) -> Exp {
        self.terms
            .iter()
            .map(|t| t.monomial.max_exponent())
            .max()
            .unwrap_or(0)
    }

    /// Evaluate at `x` by plain powering — the slow, obviously-correct
    /// oracle. `x.len()` must cover all variables.
    pub fn eval(&self, x: &[Complex<R>]) -> Complex<R> {
        let mut acc = Complex::zero();
        for t in &self.terms {
            let mut m = t.coeff;
            for &(v, e) in t.monomial.factors() {
                m *= x[v as usize].powi(e as i32);
            }
            acc += m;
        }
        acc
    }

    /// Partial derivative as a new polynomial (terms without `x_v`
    /// vanish).
    pub fn derivative(&self, v: Var) -> Polynomial<R> {
        let terms = self
            .terms
            .iter()
            .filter_map(|t| {
                let support = t.monomial.derivative_support(v)?;
                let a_v = t.monomial.exponent_of(v);
                Some(Term {
                    coeff: t.coeff.scale(R::from_u32(a_v as u32)),
                    monomial: support,
                })
            })
            .collect();
        Polynomial { terms }
    }

    /// Map coefficients into another precision.
    pub fn convert<S: Real>(&self) -> Polynomial<S> {
        Polynomial {
            terms: self
                .terms
                .iter()
                .map(|t| Term {
                    coeff: t.coeff.convert(),
                    monomial: t.monomial.clone(),
                })
                .collect(),
        }
    }
}

impl<R: Real> fmt::Display for Polynomial<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "({:.4})", t.coeff.to_c64())?;
            if t.monomial.num_vars() > 0 {
                write!(f, "*{}", t.monomial)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_complex::C64;

    fn poly_xy() -> Polynomial<f64> {
        // 2*x0^2*x1 + (0+1i)*x1^3
        Polynomial::new(vec![
            Term {
                coeff: C64::from_f64(2.0, 0.0),
                monomial: Monomial::new(vec![(0, 2), (1, 1)]).unwrap(),
            },
            Term {
                coeff: C64::i(),
                monomial: Monomial::new(vec![(1, 3)]).unwrap(),
            },
        ])
    }

    #[test]
    fn eval_known_point() {
        let p = poly_xy();
        // at x0=2, x1=3: 2*4*3 + i*27 = 24 + 27i
        let v = p.eval(&[C64::from_f64(2.0, 0.0), C64::from_f64(3.0, 0.0)]);
        assert_eq!(v, C64::from_f64(24.0, 27.0));
    }

    #[test]
    fn derivative_matches_calculus() {
        let p = poly_xy();
        // d/dx0 = 4*x0*x1
        let d0 = p.derivative(0);
        assert_eq!(d0.num_terms(), 1);
        let v = d0.eval(&[C64::from_f64(2.0, 0.0), C64::from_f64(3.0, 0.0)]);
        assert_eq!(v, C64::from_f64(24.0, 0.0));
        // d/dx1 = 2*x0^2 + 3i*x1^2
        let d1 = p.derivative(1);
        assert_eq!(d1.num_terms(), 2);
        let v = d1.eval(&[C64::from_f64(2.0, 0.0), C64::from_f64(3.0, 0.0)]);
        assert_eq!(v, C64::from_f64(8.0, 27.0));
        // d/dx5 = 0
        assert_eq!(p.derivative(5).num_terms(), 0);
    }

    #[test]
    fn degree_queries() {
        let p = poly_xy();
        assert_eq!(p.total_degree(), 3);
        assert_eq!(p.max_exponent(), 3);
        assert_eq!(p.min_dimension(), 2);
        assert_eq!(Polynomial::<f64>::zero().total_degree(), 0);
    }

    #[test]
    fn derivative_of_linear_term_is_constant() {
        let p = Polynomial::new(vec![Term {
            coeff: C64::from_f64(5.0, 0.0),
            monomial: Monomial::var(3),
        }]);
        let d = p.derivative(3);
        assert_eq!(d.num_terms(), 1);
        assert_eq!(d.terms()[0].monomial, Monomial::constant());
        assert_eq!(d.eval(&[C64::zero(); 4]), C64::from_f64(5.0, 0.0));
    }

    #[test]
    fn convert_round_trips_through_dd() {
        use polygpu_qd::Dd;
        let p = poly_xy();
        let pd: Polynomial<Dd> = p.convert();
        let back: Polynomial<f64> = pd.convert();
        assert_eq!(back, p);
    }
}
