//! The paper's evaluation algorithm on a single CPU core.
//!
//! This is the same three-stage algorithm the GPU kernels execute —
//! power table, common factors, Speelpenning forward/backward products,
//! coefficient multiplication, summation — run sequentially. It is
//! both the paper's baseline ("1 CPU core" column of Tables 1 and 2)
//! and, because the arithmetic is performed in exactly the same order
//! as the kernels, a bit-for-bit reference for the simulated GPU
//! pipeline.
//!
//! Operation counts are tallied per stage so tests can verify the
//! paper's `5k − 4` / `3k − 6` multiplication counts (§3.2).

use crate::system::{System, SystemEval, SystemEvaluator, UniformShape};
use polygpu_complex::{Complex, Real};

/// Complex-multiplication counts per evaluation, broken down by the
/// paper's stages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Stage 1a: building the power table (`n` vars × up to `d − 2`
    /// multiplications).
    pub power_table: u64,
    /// Stage 1b: common factors (`k − 1` per monomial).
    pub common_factor: u64,
    /// Stage 2a: Speelpenning derivatives (`3k − 6` per monomial for
    /// `k >= 2`).
    pub speelpenning: u64,
    /// Stage 2b: multiplying derivatives by the common factor and
    /// recovering the monomial value (`k + 1` per monomial).
    pub combine: u64,
    /// Stage 2c: coefficient multiplications (`k + 1` per monomial).
    pub coefficient: u64,
    /// Stage 3: additive accumulation (complex additions, not counted in
    /// the paper's multiplication tally).
    pub additions: u64,
}

impl OpCounts {
    /// Total multiplications attributed to the paper's kernel 2
    /// (`5k − 4` per monomial): Speelpenning + combine + coefficient.
    pub fn kernel2_muls(&self) -> u64 {
        self.speelpenning + self.combine + self.coefficient
    }

    pub fn total_muls(&self) -> u64 {
        self.power_table + self.common_factor + self.kernel2_muls()
    }
}

/// Sequential algorithmic-differentiation evaluator (the paper's
/// algorithm, one core). Requires a uniform system.
pub struct AdEvaluator<R> {
    system: System<R>,
    shape: UniformShape,
    /// Derivative coefficients `c · a_j`, precomputed once per system —
    /// the paper stores exactly these in the `Coeffs` array because the
    /// exponents "do not change along the path tracking".
    deriv_coeffs: Vec<Complex<R>>,
    /// Scratch: power table, `n × d` entries `pow[v*d + e] = x_v^e`,
    /// `e` in `0..d` (exponent of the *common factor*, i.e. `a − 1`).
    pow: Vec<Complex<R>>,
    /// Scratch: Speelpenning locations `L[0..=k+1]` (index 0 unused to
    /// match the paper's 1-based `L1..L_{k+1}`).
    loc: Vec<Complex<R>>,
    counts: OpCounts,
}

impl<R: Real> AdEvaluator<R> {
    /// Build from a uniform system. Errors with the shape violation
    /// otherwise.
    pub fn new(system: System<R>) -> Result<Self, crate::system::SystemError> {
        let shape = system.uniform_shape()?;
        let mut deriv_coeffs = Vec::with_capacity(shape.total_monomials() * shape.k);
        for poly in system.polys() {
            for t in poly.terms() {
                for &(_, e) in t.monomial.factors() {
                    deriv_coeffs.push(t.coeff.scale(R::from_u32(e as u32)));
                }
            }
        }
        let pow_rows = shape.d as usize; // exponents 0..=d-1
        Ok(AdEvaluator {
            pow: vec![Complex::zero(); shape.n * pow_rows],
            loc: vec![Complex::zero(); shape.k + 2],
            deriv_coeffs,
            system,
            shape,
            counts: OpCounts::default(),
        })
    }

    pub fn shape(&self) -> UniformShape {
        self.shape
    }

    pub fn system(&self) -> &System<R> {
        &self.system
    }

    /// Operation counts accumulated since construction (or the last
    /// [`AdEvaluator::reset_counts`]).
    pub fn counts(&self) -> OpCounts {
        self.counts
    }

    pub fn reset_counts(&mut self) {
        self.counts = OpCounts::default();
    }

    /// Build the power table for the point `x`: `pow[v][e] = x_v^e` for
    /// `e` in `0..d`, computed by sequential multiplication exactly as
    /// kernel 1's first stage does.
    fn build_power_table(&mut self, x: &[Complex<R>]) {
        let d = self.shape.d as usize;
        for (v, &xv) in x.iter().enumerate() {
            self.pow[v * d] = Complex::one();
            if d > 1 {
                self.pow[v * d + 1] = xv;
                for e in 2..d {
                    self.pow[v * d + e] = self.pow[v * d + e - 1] * xv;
                    self.counts.power_table += 1;
                }
            }
        }
    }

    /// Common factor of one monomial: product of `k` power-table entries
    /// (`k − 1` multiplications), as in kernel 1's second stage.
    fn common_factor(&mut self, factors: &[(u16, u16)]) -> Complex<R> {
        let d = self.shape.d as usize;
        let mut cf = self.pow[factors[0].0 as usize * d + (factors[0].1 as usize - 1)];
        for &(v, e) in &factors[1..] {
            cf *= self.pow[v as usize * d + (e as usize - 1)];
            self.counts.common_factor += 1;
        }
        cf
    }

    /// Derivatives of the Speelpenning product into `loc[1..=k]`,
    /// following §3.2 verbatim: forward products into `L2..Lk`, backward
    /// product in the register `q`. `3k − 6` multiplications for
    /// `k >= 3`; 0 for `k <= 2`.
    fn speelpenning_derivatives(&mut self, x: &[Complex<R>], factors: &[(u16, u16)]) {
        let k = factors.len();
        let xi = |j: usize| x[factors[j].0 as usize]; // x_{i_{j+1}} 0-based
        match k {
            0 => {}
            1 => {
                self.loc[1] = Complex::one();
            }
            2 => {
                self.loc[1] = xi(1);
                self.loc[2] = xi(0);
            }
            _ => {
                // Forward products: L[2] = x_{i1}; L[r+2] = L[r+1] * x_{i_{r+1}}.
                self.loc[2] = xi(0);
                for r in 1..=k - 2 {
                    self.loc[r + 2] = self.loc[r + 1] * xi(r);
                    self.counts.speelpenning += 1;
                }
                // Backward: q = x_{ik}; L[k-1] *= q.
                let mut q = xi(k - 1);
                self.loc[k - 1] *= q;
                self.counts.speelpenning += 1;
                // Middle steps: two multiplications each.
                for r in 1..=k.saturating_sub(3) {
                    q *= xi(k - 1 - r);
                    self.loc[k - r - 1] *= q;
                    self.counts.speelpenning += 2;
                }
                // Last derivative (w.r.t. x_{i1}) lands in L1.
                q *= xi(1);
                self.counts.speelpenning += 1;
                self.loc[1] = q;
            }
        }
    }
}

impl<R: Real> SystemEvaluator<R> for AdEvaluator<R> {
    fn dim(&self) -> usize {
        self.shape.n
    }

    fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        let n = self.shape.n;
        let k = self.shape.k;
        assert_eq!(x.len(), n, "point dimension mismatch");
        self.build_power_table(x);
        // Rectangular row blocks produce `rows` values and a `rows × n`
        // Jacobian; square systems keep their `n × n` shape.
        let mut out = SystemEval::zeros_rect(self.shape.rows, n);
        let mut dc_idx = 0usize; // index into deriv_coeffs, k per monomial
        let polys = std::mem::take(&mut self.system); // split borrows
        for (p, poly) in polys.polys().iter().enumerate() {
            for t in poly.terms() {
                let factors = t.monomial.factors();
                let cf = self.common_factor(factors);
                self.speelpenning_derivatives(x, factors);
                // Multiply derivatives by the common factor (k muls).
                for i in 1..=k {
                    self.loc[i] *= cf;
                }
                self.counts.combine += k as u64;
                // Monomial value = derivative w.r.t. x_{ik} times x_{ik}.
                self.loc[k + 1] = self.loc[k] * x[factors[k - 1].0 as usize];
                self.counts.combine += 1;
                // Coefficient multiplications (k + 1) and accumulation.
                out.values[p] += self.loc[k + 1] * t.coeff;
                self.counts.coefficient += 1;
                self.counts.additions += 1;
                for (j, &(v, _)) in factors.iter().enumerate() {
                    let term = self.loc[j + 1] * self.deriv_coeffs[dc_idx + j];
                    out.jacobian[(p, v as usize)] += term;
                    self.counts.coefficient += 1;
                    self.counts.additions += 1;
                }
                dc_idx += k;
            }
        }
        self.system = polys;
        out
    }

    fn name(&self) -> &str {
        "cpu-ad"
    }
}

impl<R: Real> crate::system::BatchSystemEvaluator<R> for AdEvaluator<R> {
    /// A CPU evaluator has no per-batch fixed cost to amortize, so any
    /// batch size is acceptable.
    fn max_batch(&self) -> usize {
        usize::MAX
    }

    fn evaluate_batch(&mut self, points: &[Vec<Complex<R>>]) -> Vec<SystemEval<R>> {
        crate::system::loop_evaluate_batch(self, points)
    }
}

impl<R: Real> Default for System<R> {
    /// Empty placeholder used internally to split borrows; not a valid
    /// system for evaluation.
    fn default() -> Self {
        System::new(0, Vec::new()).expect("0-dimensional system")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost;
    use crate::eval::naive::NaiveEvaluator;
    use crate::generator::{random_point, random_system, BenchmarkParams};

    fn check_matches_naive(params: BenchmarkParams, tol: f64) {
        let sys = random_system::<f64>(&params);
        let mut ad = AdEvaluator::new(sys.clone()).unwrap();
        let mut naive = NaiveEvaluator::new(sys);
        let x = random_point::<f64>(params.n, params.seed ^ 0xABCD);
        let a = ad.evaluate(&x);
        let b = naive.evaluate(&x);
        let diff = a.max_difference(&b);
        assert!(diff < tol, "AD vs naive differ by {diff:e} for {params:?}");
    }

    #[test]
    fn matches_naive_across_shapes() {
        for (n, m, k, d, seed) in [
            (4, 3, 2, 1, 1u64),
            (5, 4, 3, 2, 2),
            (8, 6, 4, 5, 3),
            (12, 10, 6, 3, 4),
            (32, 8, 9, 2, 5),
            (32, 8, 16, 10, 6),
            (6, 2, 1, 4, 7), // k = 1 edge case
        ] {
            check_matches_naive(BenchmarkParams { n, m, k, d, seed }, 1e-10);
        }
    }

    #[test]
    fn op_counts_match_paper_formulas() {
        for k in [2usize, 3, 5, 9, 16, 32] {
            let params = BenchmarkParams {
                n: 32,
                m: 4,
                k,
                d: 3,
                seed: k as u64,
            };
            let sys = random_system::<f64>(&params);
            let mut ad = AdEvaluator::new(sys).unwrap();
            let x = random_point::<f64>(32, 99);
            let _ = ad.evaluate(&x);
            let c = ad.counts();
            let monomials = (32 * 4) as u64;
            // Paper §3.2: 3k − 6 multiplications for the Speelpenning
            // derivatives (k >= 3; zero for k = 2)...
            assert_eq!(
                c.speelpenning,
                monomials * cost::speelpenning_muls(k),
                "speelpenning count for k = {k}"
            );
            // ...and 5k − 4 total for kernel 2's work.
            assert_eq!(
                c.kernel2_muls(),
                monomials * cost::kernel2_muls(k),
                "kernel-2 count for k = {k}"
            );
            // Kernel 1's second stage: k − 1 per monomial.
            assert_eq!(c.common_factor, monomials * (k as u64 - 1));
            // Power table: n vars × max(d − 2, 0) multiplications.
            assert_eq!(c.power_table, 32);
        }
    }

    #[test]
    fn dd_evaluation_agrees_with_f64_to_double_roundoff() {
        use polygpu_qd::Dd;
        let params = BenchmarkParams {
            n: 6,
            m: 4,
            k: 3,
            d: 4,
            seed: 21,
        };
        let sys = random_system::<f64>(&params);
        let sys_dd: System<Dd> = sys.convert();
        let mut ad64 = AdEvaluator::new(sys).unwrap();
        let mut ad_dd = AdEvaluator::new(sys_dd).unwrap();
        let x = random_point::<f64>(6, 5);
        let x_dd: Vec<_> = x.iter().map(|z| z.convert::<Dd>()).collect();
        let a = ad64.evaluate(&x);
        let b = ad_dd.evaluate(&x_dd);
        for (va, vb) in a.values.iter().zip(&b.values) {
            assert!((va.re - vb.re.to_f64()).abs() < 1e-12);
            assert!((va.im - vb.im.to_f64()).abs() < 1e-12);
        }
    }

    #[test]
    fn counts_reset() {
        let params = BenchmarkParams {
            n: 4,
            m: 2,
            k: 2,
            d: 2,
            seed: 1,
        };
        let mut ad = AdEvaluator::new(random_system::<f64>(&params)).unwrap();
        let x = random_point::<f64>(4, 2);
        let _ = ad.evaluate(&x);
        assert!(ad.counts().total_muls() > 0);
        ad.reset_counts();
        assert_eq!(ad.counts().total_muls(), 0);
    }

    #[test]
    fn rejects_non_uniform_system() {
        use crate::monomial::Monomial;
        use crate::polynomial::{Polynomial, Term};
        use polygpu_complex::C64;
        let p1 = Polynomial::new(vec![Term {
            coeff: C64::one(),
            monomial: Monomial::new(vec![(0, 1), (1, 1)]).unwrap(),
        }]);
        let p2 = Polynomial::new(vec![Term {
            coeff: C64::one(),
            monomial: Monomial::new(vec![(0, 1)]).unwrap(),
        }]);
        let sys = System::new(2, vec![p1, p2]).unwrap();
        assert!(AdEvaluator::new(sys).is_err());
    }
}
