//! The obviously-correct oracle evaluator.
//!
//! Evaluates each monomial by binary powering and each Jacobian entry
//! from the analytically differentiated polynomial. Used only to
//! validate the algorithmic-differentiation evaluators (CPU and GPU);
//! makes no attempt at efficiency beyond a per-point power table.

use crate::system::{System, SystemEval, SystemEvaluator};
use polygpu_complex::{Complex, Real};

/// Naive evaluator: power table + analytic derivative per entry.
pub struct NaiveEvaluator<R> {
    system: System<R>,
    max_exp: i32,
}

impl<R: Real> NaiveEvaluator<R> {
    pub fn new(system: System<R>) -> Self {
        let max_exp = system
            .polys()
            .iter()
            .map(|p| p.max_exponent())
            .max()
            .unwrap_or(0) as i32;
        NaiveEvaluator { system, max_exp }
    }

    pub fn system(&self) -> &System<R> {
        &self.system
    }
}

impl<R: Real> SystemEvaluator<R> for NaiveEvaluator<R> {
    fn dim(&self) -> usize {
        self.system.dim()
    }

    fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        let n = self.system.dim();
        assert_eq!(x.len(), n, "point dimension mismatch");
        // Power table: pow[v * (max_exp+1) + e] = x_v^e.
        let stride = self.max_exp as usize + 1;
        let mut pow = vec![Complex::<R>::one(); n * stride];
        for v in 0..n {
            for e in 1..stride {
                pow[v * stride + e] = pow[v * stride + e - 1] * x[v];
            }
        }
        let mut out = SystemEval::zeros_rect(self.system.rows(), n);
        for (p, poly) in self.system.polys().iter().enumerate() {
            for t in poly.terms() {
                // Value.
                let mut mv = t.coeff;
                for &(v, e) in t.monomial.factors() {
                    mv *= pow[v as usize * stride + e as usize];
                }
                out.values[p] += mv;
                // Each partial derivative.
                for &(v, e) in t.monomial.factors() {
                    let mut dv = t.coeff.scale(R::from_u32(e as u32));
                    for &(w, f) in t.monomial.factors() {
                        let fe = if w == v { f - 1 } else { f } as usize;
                        dv *= pow[w as usize * stride + fe];
                    }
                    out.jacobian[(p, v as usize)] += dv;
                }
            }
        }
        out
    }

    fn name(&self) -> &str {
        "cpu-naive"
    }
}

impl<R: Real> crate::system::BatchSystemEvaluator<R> for NaiveEvaluator<R> {
    /// A CPU evaluator has no per-batch fixed cost to amortize, so any
    /// batch size is acceptable.
    fn max_batch(&self) -> usize {
        usize::MAX
    }

    fn evaluate_batch(&mut self, points: &[Vec<Complex<R>>]) -> Vec<SystemEval<R>> {
        crate::system::loop_evaluate_batch(self, points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomial::Monomial;
    use crate::polynomial::{Polynomial, Term};
    use polygpu_complex::C64;

    /// f0 = x0^2*x1, f1 = x0 + ... needs uniform shape? Naive does not
    /// require uniformity; exercise a ragged system on purpose.
    #[test]
    fn known_system_values_and_jacobian() {
        let f0 = Polynomial::new(vec![Term {
            coeff: C64::one(),
            monomial: Monomial::new(vec![(0, 2), (1, 1)]).unwrap(),
        }]);
        let f1 = Polynomial::new(vec![
            Term {
                coeff: C64::from_f64(3.0, 0.0),
                monomial: Monomial::new(vec![(0, 1)]).unwrap(),
            },
            Term {
                coeff: C64::i(),
                monomial: Monomial::new(vec![(1, 2)]).unwrap(),
            },
        ]);
        let sys = System::new(2, vec![f0, f1]).unwrap();
        let mut ev = NaiveEvaluator::new(sys);
        let x = [C64::from_f64(2.0, 0.0), C64::from_f64(-1.0, 0.0)];
        let r = ev.evaluate(&x);
        // f0 = 4 * -1 = -4 ; f1 = 6 + i*1
        assert_eq!(r.values[0], C64::from_f64(-4.0, 0.0));
        assert_eq!(r.values[1], C64::from_f64(6.0, 1.0));
        // J = [[2*x0*x1, x0^2], [3, 2i*x1]]
        assert_eq!(r.jacobian[(0, 0)], C64::from_f64(-4.0, 0.0));
        assert_eq!(r.jacobian[(0, 1)], C64::from_f64(4.0, 0.0));
        assert_eq!(r.jacobian[(1, 0)], C64::from_f64(3.0, 0.0));
        assert_eq!(r.jacobian[(1, 1)], C64::from_f64(0.0, -2.0));
    }

    #[test]
    fn jacobian_matches_finite_differences() {
        use crate::generator::{random_point, random_system, BenchmarkParams};
        let params = BenchmarkParams {
            n: 5,
            m: 4,
            k: 3,
            d: 3,
            seed: 17,
        };
        let sys = random_system::<f64>(&params);
        let mut ev = NaiveEvaluator::new(sys);
        let x = random_point::<f64>(5, 23);
        let base = ev.evaluate(&x);
        let h = 1e-7;
        for j in 0..5 {
            let mut xp = x.clone();
            xp[j] += C64::from_f64(h, 0.0);
            let plus = ev.evaluate(&xp);
            for i in 0..5 {
                let fd = (plus.values[i] - base.values[i]).scale(1.0 / h);
                let an = base.jacobian[(i, j)];
                assert!(
                    (fd - an).abs() < 1e-5,
                    "d f{i}/dx{j}: fd {fd} vs analytic {an}"
                );
            }
        }
    }
}
