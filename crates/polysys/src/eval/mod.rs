//! CPU evaluators: the naive oracle and the paper's sequential
//! algorithmic-differentiation algorithm.

pub mod ad;
pub mod naive;

pub use ad::{AdEvaluator, OpCounts};
pub use naive::NaiveEvaluator;
