//! CPU evaluators: the naive oracle, the paper's sequential
//! algorithmic-differentiation algorithm, and its sparse (ragged)
//! generalization.

pub mod ad;
pub mod naive;
pub mod sparse_ad;

pub use ad::{AdEvaluator, OpCounts};
pub use naive::NaiveEvaluator;
pub use sparse_ad::SparseAdEvaluator;
