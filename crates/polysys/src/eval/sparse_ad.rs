//! The sparse (ragged) evaluation algorithm on a single CPU core — the
//! bit-for-bit reference for the packed-key GPU pipeline.
//!
//! Same three stages as [`AdEvaluator`](crate::eval::ad::AdEvaluator)
//! — power table, common factors, Speelpenning products, coefficient
//! multiplication, summation — but with **per-monomial** variable
//! counts `k_g` and **per-equation** monomial counts `m_p`, including
//! constant terms (`k = 0`). To stay bit-identical to the simulated
//! GPU, term contributions are scattered into a zero-initialized
//! `max_m × outputs` scratch (the sparse `Mons` layout) and then summed
//! over **all** `max_m` slots in slot order, exactly as the sparse sum
//! kernel does — including the additions of the zero padding, which
//! matter bitwise (`-0.0 + 0.0 == +0.0`).

use crate::sparse::SparseShape;
use crate::system::{System, SystemEval, SystemEvaluator};
use polygpu_complex::{Complex, Real};

/// Sequential sparse algorithmic-differentiation evaluator. Accepts any
/// system, uniform or ragged, square or rectangular row block.
pub struct SparseAdEvaluator<R> {
    system: System<R>,
    shape: SparseShape,
    /// Derivative coefficients `c · a_j`, flattened in term order with
    /// `k_g` entries per monomial — the sparse `Coeffs` portions.
    deriv_coeffs: Vec<Complex<R>>,
    /// Power table scratch: `pow[v*d + e] = x_v^e`, `e` in `0..d`.
    pow: Vec<Complex<R>>,
    /// Speelpenning locations `L[0..=max_k+1]` (index 0 unused).
    loc: Vec<Complex<R>>,
    /// The zero-padded sparse `Mons` scratch (`max_m × outputs`).
    mons: Vec<Complex<R>>,
}

impl<R: Real> SparseAdEvaluator<R> {
    pub fn new(system: System<R>) -> Self {
        let shape = system.sparse_shape();
        let mut deriv_coeffs = Vec::new();
        for poly in system.polys() {
            for t in poly.terms() {
                for &(_, e) in t.monomial.factors() {
                    deriv_coeffs.push(t.coeff.scale(R::from_u32(e as u32)));
                }
            }
        }
        SparseAdEvaluator {
            pow: vec![Complex::zero(); shape.n * shape.d as usize],
            loc: vec![Complex::zero(); shape.max_k + 2],
            mons: vec![Complex::zero(); shape.mons_len()],
            deriv_coeffs,
            system,
            shape,
        }
    }

    pub fn shape(&self) -> SparseShape {
        self.shape
    }

    pub fn system(&self) -> &System<R> {
        &self.system
    }

    /// `pow[v][e] = x_v^e` for `e` in `0..d`, by sequential
    /// multiplication — kernel 1's first stage.
    fn build_power_table(&mut self, x: &[Complex<R>]) {
        let d = self.shape.d as usize;
        for (v, &xv) in x.iter().enumerate() {
            self.pow[v * d] = Complex::one();
            if d > 1 {
                self.pow[v * d + 1] = xv;
                for e in 2..d {
                    self.pow[v * d + e] = self.pow[v * d + e - 1] * xv;
                }
            }
        }
    }

    /// Product of `k >= 1` power-table entries (`k − 1` multiplications).
    fn common_factor(&mut self, factors: &[(u16, u16)]) -> Complex<R> {
        let d = self.shape.d as usize;
        let mut cf = self.pow[factors[0].0 as usize * d + (factors[0].1 as usize - 1)];
        for &(v, e) in &factors[1..] {
            cf *= self.pow[v as usize * d + (e as usize - 1)];
        }
        cf
    }

    /// Speelpenning derivatives into `loc[1..=k]` — identical to the
    /// uniform evaluator's §3.2 program, with this monomial's own `k`.
    fn speelpenning_derivatives(&mut self, x: &[Complex<R>], factors: &[(u16, u16)]) {
        let k = factors.len();
        let xi = |j: usize| x[factors[j].0 as usize];
        match k {
            0 => {}
            1 => {
                self.loc[1] = Complex::one();
            }
            2 => {
                self.loc[1] = xi(1);
                self.loc[2] = xi(0);
            }
            _ => {
                self.loc[2] = xi(0);
                for r in 1..=k - 2 {
                    self.loc[r + 2] = self.loc[r + 1] * xi(r);
                }
                let mut q = xi(k - 1);
                self.loc[k - 1] *= q;
                for r in 1..=k.saturating_sub(3) {
                    q *= xi(k - 1 - r);
                    self.loc[k - r - 1] *= q;
                }
                q *= xi(1);
                self.loc[1] = q;
            }
        }
    }
}

/// Output index of equation `p`'s value in the `q` layout.
#[inline]
fn q_value(p: usize) -> usize {
    p
}

/// Output index of `∂f_p/∂x_v` in the `q` layout (groups stride by the
/// row count, matching the dense pipeline).
#[inline]
fn q_deriv(rows: usize, p: usize, v: usize) -> usize {
    rows * (1 + v) + p
}

impl<R: Real> SystemEvaluator<R> for SparseAdEvaluator<R> {
    fn dim(&self) -> usize {
        self.shape.n
    }

    fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        let shape = self.shape;
        assert_eq!(x.len(), shape.n, "point dimension mismatch");
        self.build_power_table(x);
        let outputs = shape.outputs();
        self.mons.iter_mut().for_each(|z| *z = Complex::zero());
        let mut dc_idx = 0usize;
        let polys = std::mem::take(&mut self.system); // split borrows
        for (p, poly) in polys.polys().iter().enumerate() {
            for (j, t) in poly.terms().iter().enumerate() {
                let factors = t.monomial.factors();
                let k = factors.len();
                if k == 0 {
                    // Constant term: its value is the coefficient, no
                    // derivatives.
                    self.mons[j * outputs + q_value(p)] = t.coeff;
                    continue;
                }
                let cf = self.common_factor(factors);
                self.speelpenning_derivatives(x, factors);
                for i in 1..=k {
                    self.loc[i] *= cf;
                }
                self.loc[k + 1] = self.loc[k] * x[factors[k - 1].0 as usize];
                self.mons[j * outputs + q_value(p)] = self.loc[k + 1] * t.coeff;
                for (i, &(v, _)) in factors.iter().enumerate() {
                    self.mons[j * outputs + q_deriv(shape.rows, p, v as usize)] =
                        self.loc[i + 1] * self.deriv_coeffs[dc_idx + i];
                }
                dc_idx += k;
            }
        }
        self.system = polys;
        // Stage 3: branch-free sums over all max_m slots, in slot
        // order — the sparse sum kernel's program.
        let mut out = SystemEval::zeros_rect(shape.rows, shape.n);
        for q in 0..outputs {
            let mut acc = Complex::<R>::zero();
            for j in 0..shape.max_m {
                acc += self.mons[j * outputs + q];
            }
            if q < shape.rows {
                out.values[q] = acc;
            } else {
                let v = q / shape.rows - 1;
                let p = q % shape.rows;
                out.jacobian[(p, v)] = acc;
            }
        }
        out
    }

    fn name(&self) -> &str {
        "cpu-sparse-ad"
    }
}

impl<R: Real> crate::system::BatchSystemEvaluator<R> for SparseAdEvaluator<R> {
    fn max_batch(&self) -> usize {
        usize::MAX
    }

    fn evaluate_batch(&mut self, points: &[Vec<Complex<R>>]) -> Vec<SystemEval<R>> {
        crate::system::loop_evaluate_batch(self, points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::ad::AdEvaluator;
    use crate::eval::naive::NaiveEvaluator;
    use crate::generator::{random_point, random_system, BenchmarkParams};
    use crate::monomial::Monomial;
    use crate::polynomial::{Polynomial, Term};
    use polygpu_complex::C64;

    #[test]
    fn matches_uniform_ad_bitwise_on_uniform_systems() {
        for (n, m, k, d, seed) in [
            (4, 3, 2, 1, 1u64),
            (5, 4, 3, 2, 2),
            (8, 6, 4, 5, 3),
            (32, 8, 9, 2, 5),
            (32, 8, 16, 10, 6),
            (6, 2, 1, 4, 7),
        ] {
            let params = BenchmarkParams { n, m, k, d, seed };
            let sys = random_system::<f64>(&params);
            let mut ad = AdEvaluator::new(sys.clone()).unwrap();
            let mut sp = SparseAdEvaluator::new(sys);
            let x = random_point::<f64>(n, seed ^ 0x5151);
            let a = ad.evaluate(&x);
            let b = sp.evaluate(&x);
            // Bitwise: the sparse pipeline on a uniform support performs
            // the identical float op sequence (the padding sum is empty).
            assert_eq!(a.values, b.values, "values differ for {params:?}");
            assert_eq!(a.jacobian, b.jacobian, "jacobian differs for {params:?}");
        }
    }

    fn ragged() -> System<f64> {
        // f0 = 2 x0^3 x1 − x1^2 + 3;  f1 = x0 x1 + x0
        let p0 = Polynomial::new(vec![
            Term {
                coeff: C64::from_f64(2.0, 0.0),
                monomial: Monomial::new(vec![(0, 3), (1, 1)]).unwrap(),
            },
            Term {
                coeff: C64::from_f64(-1.0, 0.0),
                monomial: Monomial::new(vec![(1, 2)]).unwrap(),
            },
            Term {
                coeff: C64::from_f64(3.0, 0.0),
                monomial: Monomial::constant(),
            },
        ]);
        let p1 = Polynomial::new(vec![
            Term {
                coeff: C64::one(),
                monomial: Monomial::new(vec![(0, 1), (1, 1)]).unwrap(),
            },
            Term {
                coeff: C64::one(),
                monomial: Monomial::var(0),
            },
        ]);
        System::new(2, vec![p0, p1]).unwrap()
    }

    #[test]
    fn ragged_system_matches_naive_oracle() {
        let sys = ragged();
        let mut sp = SparseAdEvaluator::new(sys.clone());
        let mut naive = NaiveEvaluator::new(sys);
        let x = random_point::<f64>(2, 77);
        let a = sp.evaluate(&x);
        let b = naive.evaluate(&x);
        assert!(a.max_difference(&b) < 1e-12);
    }

    #[test]
    fn ragged_hand_check() {
        let sys = ragged();
        let mut sp = SparseAdEvaluator::new(sys);
        // x0 = 2, x1 = 1: f0 = 2·8·1 − 1 + 3 = 18, f1 = 2 + 2 = 4.
        let x = vec![C64::from_f64(2.0, 0.0), C64::from_f64(1.0, 0.0)];
        let out = sp.evaluate(&x);
        assert_eq!(out.values[0], C64::from_f64(18.0, 0.0));
        assert_eq!(out.values[1], C64::from_f64(4.0, 0.0));
        // ∂f0/∂x0 = 6 x0² x1 = 24; ∂f0/∂x1 = 2 x0³ − 2 x1 = 14.
        assert_eq!(out.jacobian[(0, 0)], C64::from_f64(24.0, 0.0));
        assert_eq!(out.jacobian[(0, 1)], C64::from_f64(14.0, 0.0));
        // ∂f1/∂x0 = x1 + 1 = 2; ∂f1/∂x1 = x0 = 2.
        assert_eq!(out.jacobian[(1, 0)], C64::from_f64(2.0, 0.0));
        assert_eq!(out.jacobian[(1, 1)], C64::from_f64(2.0, 0.0));
    }

    #[test]
    fn dd_ragged_agrees_with_f64_to_roundoff() {
        use polygpu_qd::Dd;
        let sys = ragged();
        let sys_dd: System<Dd> = sys.convert();
        let mut sp64 = SparseAdEvaluator::new(sys);
        let mut sp_dd = SparseAdEvaluator::new(sys_dd);
        let x = random_point::<f64>(2, 9);
        let x_dd: Vec<_> = x.iter().map(|z| z.convert::<Dd>()).collect();
        let a = sp64.evaluate(&x);
        let b = sp_dd.evaluate(&x_dd);
        for (va, vb) in a.values.iter().zip(&b.values) {
            assert!((va.re - vb.re.to_f64()).abs() < 1e-12);
            assert!((va.im - vb.im.to_f64()).abs() < 1e-12);
        }
    }
}
