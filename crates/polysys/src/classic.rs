//! Classic benchmark systems from the polynomial homotopy literature.
//!
//! The paper's engine exists to accelerate solvers like PHCpack on
//! exactly these families. They are *not* uniform in the `(m, k, d)`
//! sense (different monomials have different variable counts), so they
//! exercise the general CPU evaluators and the solve driver rather
//! than the GPU pipeline, documenting precisely where the paper's
//! regularity assumptions (§2) bind.

use crate::monomial::Monomial;
use crate::polynomial::{Polynomial, Term};
use crate::system::System;
use polygpu_complex::{Complex, Real};

/// The cyclic n-roots system:
/// `f_j = Σ_i Π_{l=i..i+j} x_{l mod n}` for `j = 0..n-1`, and
/// `f_{n-1} = x_0 x_1 … x_{n-1} − 1`.
///
/// The celebrated benchmark of computer algebra and homotopy solvers;
/// `cyclic(3)` has 6 isolated solutions.
pub fn cyclic<R: Real>(n: usize) -> System<R> {
    assert!(n >= 2, "cyclic needs n >= 2");
    let mut polys = Vec::with_capacity(n);
    for j in 0..n - 1 {
        // f_j = sum over i of the product of j+1 consecutive variables.
        let terms = (0..n)
            .map(|i| {
                let vars: Vec<(u16, u16)> = (0..=j).map(|l| (((i + l) % n) as u16, 1u16)).collect();
                Term {
                    coeff: Complex::one(),
                    monomial: Monomial::new(vars).expect("distinct consecutive vars"),
                }
            })
            .collect();
        polys.push(Polynomial::new(terms));
    }
    // Last equation: product of all variables minus one.
    let all: Vec<(u16, u16)> = (0..n).map(|v| (v as u16, 1)).collect();
    polys.push(Polynomial::new(vec![
        Term {
            coeff: Complex::one(),
            monomial: Monomial::new(all).unwrap(),
        },
        Term {
            coeff: -Complex::<R>::one(),
            monomial: Monomial::constant(),
        },
    ]));
    System::new(n, polys).expect("cyclic is square")
}

/// The Katsura-n system (magnetism): `n + 1` equations in `n + 1`
/// unknowns `u_0..u_n`:
///
/// * for `m = 0..n-1`:  `Σ_{l=-n..n} u_{|l|} u_{|m-l|} − u_m = 0`
///   (indices clamped to `0..=n`, out-of-range terms dropped);
/// * normalisation: `u_0 + 2 Σ_{l=1..n} u_l − 1 = 0`.
pub fn katsura<R: Real>(n: usize) -> System<R> {
    assert!(n >= 1, "katsura needs n >= 1");
    let dim = n + 1;
    let u = |i: i64| -> Option<u16> {
        let a = i.unsigned_abs() as usize;
        (a < dim).then_some(a as u16)
    };
    let mut polys = Vec::with_capacity(dim);
    for m in 0..n {
        // Collect quadratic terms u_|l| * u_|m-l|, merging coefficients.
        let mut acc: std::collections::BTreeMap<(u16, u16), f64> = Default::default();
        for l in -(n as i64)..=(n as i64) {
            let (Some(a), Some(b)) = (u(l), u(m as i64 - l)) else {
                continue;
            };
            let key = if a <= b { (a, b) } else { (b, a) };
            *acc.entry(key).or_insert(0.0) += 1.0;
        }
        let mut terms: Vec<Term<R>> = acc
            .into_iter()
            .map(|((a, b), c)| {
                let monomial = if a == b {
                    Monomial::new(vec![(a, 2)]).unwrap()
                } else {
                    Monomial::new(vec![(a, 1), (b, 1)]).unwrap()
                };
                Term {
                    coeff: Complex::from_f64(c, 0.0),
                    monomial,
                }
            })
            .collect();
        terms.push(Term {
            coeff: -Complex::<R>::one(),
            monomial: Monomial::var(m as u16),
        });
        polys.push(Polynomial::new(terms));
    }
    // Normalisation row.
    let mut norm = vec![Term {
        coeff: Complex::one(),
        monomial: Monomial::var(0),
    }];
    for l in 1..dim {
        norm.push(Term {
            coeff: Complex::from_f64(2.0, 0.0),
            monomial: Monomial::var(l as u16),
        });
    }
    norm.push(Term {
        coeff: -Complex::<R>::one(),
        monomial: Monomial::constant(),
    });
    polys.push(Polynomial::new(norm));
    System::new(dim, polys).expect("katsura is square")
}

/// The Noonburg neural-network system:
/// `f_i = x_i (Σ_{j≠i} x_j²) − c·x_i + 1` with the traditional
/// `c = 1.1`.
pub fn noon<R: Real>(n: usize) -> System<R> {
    assert!(n >= 2, "noon needs n >= 2");
    let c = 1.1;
    let mut polys = Vec::with_capacity(n);
    for i in 0..n {
        let mut terms: Vec<Term<R>> = (0..n)
            .filter(|&j| j != i)
            .map(|j| Term {
                coeff: Complex::one(),
                monomial: Monomial::new(vec![(i as u16, 1), (j as u16, 2)]).unwrap(),
            })
            .collect();
        terms.push(Term {
            coeff: Complex::from_f64(-c, 0.0),
            monomial: Monomial::var(i as u16),
        });
        terms.push(Term {
            coeff: Complex::one(),
            monomial: Monomial::constant(),
        });
        polys.push(Polynomial::new(terms));
    }
    System::new(n, polys).expect("noon is square")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::NaiveEvaluator;
    use crate::system::SystemEvaluator;
    use polygpu_complex::C64;

    #[test]
    fn cyclic3_known_solution() {
        // (1, w, w^2) with w a primitive cube root of unity solves
        // cyclic-3: sums of powers of w vanish and the product is w^3=1.
        let mut sys = NaiveEvaluator::new(cyclic::<f64>(3));
        let w = C64::unit_from_angle(std::f64::consts::TAU / 3.0);
        let x = vec![C64::one(), w, w * w];
        let r = sys.evaluate(&x);
        assert!(
            r.residual_norm() < 1e-12,
            "residual {:e}",
            r.residual_norm()
        );
    }

    #[test]
    fn cyclic_shapes() {
        let s = cyclic::<f64>(5);
        assert_eq!(s.dim(), 5);
        // f_0 is linear with 5 terms; f_3 has 5 quartic terms;
        // the last has 2 terms.
        assert_eq!(s.polys()[0].num_terms(), 5);
        assert_eq!(s.polys()[0].total_degree(), 1);
        assert_eq!(s.polys()[3].total_degree(), 4);
        assert_eq!(s.polys()[4].num_terms(), 2);
        assert_eq!(s.polys()[4].total_degree(), 5);
        // Not uniform: the GPU pipeline's regularity assumption binds.
        assert!(s.uniform_shape().is_err());
    }

    #[test]
    fn katsura_total_degrees_and_known_structure() {
        let s = katsura::<f64>(3);
        assert_eq!(s.dim(), 4);
        // First n rows are quadratic, last is linear.
        for p in &s.polys()[..3] {
            assert_eq!(p.total_degree(), 2);
        }
        assert_eq!(s.polys()[3].total_degree(), 1);
        // The all-zero point gives residual 1 in the normalisation row
        // only (u_m rows vanish at 0).
        let mut e = NaiveEvaluator::new(s);
        let r = e.evaluate(&[C64::zero(); 4]);
        assert_eq!(r.values[3], -C64::one());
        assert_eq!(r.values[0], C64::zero());
    }

    #[test]
    fn katsura_m0_row_identity() {
        // Row m=0: sum_l u_|l| u_|l| = u_0^2 + 2 sum_{l>=1} u_l^2 - u_0.
        let s = katsura::<f64>(2);
        let mut e = NaiveEvaluator::new(s);
        let x = [
            C64::from_f64(0.5, 0.0),
            C64::from_f64(0.25, 0.0),
            C64::from_f64(0.125, 0.0),
        ];
        let r = e.evaluate(&x);
        let expect = 0.25 + 2.0 * (0.0625 + 0.015625) - 0.5;
        assert!((r.values[0].re - expect).abs() < 1e-14);
    }

    #[test]
    fn noon_rows_have_expected_terms() {
        let s = noon::<f64>(3);
        assert_eq!(s.dim(), 3);
        for p in s.polys() {
            // n-1 cubic terms + linear + constant.
            assert_eq!(p.num_terms(), 4);
            assert_eq!(p.total_degree(), 3);
        }
        // A quick value check at x = (1, 1, 1):
        // f_i = 1*(1+1) - 1.1 + 1 = 1.9.
        let mut e = NaiveEvaluator::new(s);
        let r = e.evaluate(&[C64::one(); 3]);
        for v in &r.values {
            assert!((v.re - 1.9).abs() < 1e-14);
        }
    }

    #[test]
    fn classic_systems_work_in_dd() {
        use polygpu_qd::Dd;
        let mut e = NaiveEvaluator::new(cyclic::<Dd>(4));
        let x = vec![Complex::<Dd>::one(); 4];
        let r = e.evaluate(&x);
        // f_0 = 4, f_3 = 0 at the all-ones point.
        assert_eq!(r.values[0].re.to_f64(), 4.0);
        assert_eq!(r.values[3].re.to_f64(), 0.0);
    }
}
