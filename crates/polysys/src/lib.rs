//! # polygpu-polysys — sparse polynomial systems
//!
//! The problem-statement layer of the reproduction (paper §2): sparse
//! polynomial systems `f(x) = 0` stored as coefficient/support tuples,
//! the regular `(n, m, k, d)` benchmark family, CPU reference
//! evaluators (naive and the paper's algorithmic-differentiation
//! algorithm), and the paper's multiplication-count cost model.
//!
//! ```
//! use polygpu_polysys::generator::{random_system, random_point, BenchmarkParams};
//! use polygpu_polysys::eval::AdEvaluator;
//! use polygpu_polysys::system::SystemEvaluator;
//!
//! // The paper's Table 1 shape at 1/16 scale: n=32, m=2, k=9, d=2.
//! let params = BenchmarkParams { n: 32, m: 2, k: 9, d: 2, seed: 7 };
//! let system = random_system::<f64>(&params);
//! let mut eval = AdEvaluator::new(system).unwrap();
//! let x = random_point(32, 1);
//! let result = eval.evaluate(&x);
//! assert_eq!(result.values.len(), 32);
//! assert_eq!(result.jacobian.rows(), 32);
//! ```

pub mod classic;
pub mod cost;
pub mod eval;
pub mod generator;
pub mod monomial;
pub mod parse;
pub mod polynomial;
pub mod sparse;
pub mod system;

pub use classic::{cyclic, katsura, noon};
pub use eval::{AdEvaluator, NaiveEvaluator, OpCounts, SparseAdEvaluator};
pub use generator::{
    random_point, random_points, random_sparse_system, random_system, BenchmarkParams,
    SparseBenchmarkParams,
};
pub use monomial::{Exp, Monomial, MonomialError, Var};
pub use parse::{parse_polynomial, parse_system, ParseError};
pub use polynomial::{Polynomial, Term};
pub use sparse::{SparseShape, SparseSupport};
pub use system::{
    loop_evaluate_batch, BatchSystemEvaluator, System, SystemError, SystemEval, SystemEvaluator,
    UniformShape,
};
