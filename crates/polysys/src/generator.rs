//! Random benchmark systems with the paper's regular shape.
//!
//! §2 of the paper: "For establishing benchmarks we consider in this
//! paper systems with a fixed number k of variables in monomials, a
//! fixed maximal degree d up to which any of variables can appear in
//! monomials of the system, and a fixed number m of monomials in all
//! polynomials." §4 uses dimension `n = 32` with `m ∈ {22, 32, 48}`
//! monomials per polynomial (704/1024/1536 total), `k = 9, d = 2`
//! (Table 1) and `k = 16, d = 10` (Table 2). Coefficients are random on
//! the complex unit circle, the standard choice in polynomial homotopy
//! benchmarks.

use crate::monomial::{Exp, Monomial, Var};
use crate::polynomial::{Polynomial, Term};
use crate::system::{System, UniformShape};
use polygpu_complex::{Complex, Real};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::TAU;

/// Parameters for the random benchmark family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkParams {
    /// Dimension (variables = polynomials).
    pub n: usize,
    /// Monomials per polynomial.
    pub m: usize,
    /// Variables per monomial (`2 <= k <= n`).
    pub k: usize,
    /// Maximal exponent of a variable (`>= 1`). Exponents are drawn
    /// uniformly from `1..=d`.
    pub d: Exp,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl BenchmarkParams {
    /// Table 1 family: `n = 32`, `k = 9`, `d = 2`; `m` chosen so the
    /// total monomial count is 704, 1024 or 1536.
    pub fn table1(monomials_total: usize, seed: u64) -> Self {
        assert_eq!(
            monomials_total % 32,
            0,
            "total must be a multiple of n = 32"
        );
        BenchmarkParams {
            n: 32,
            m: monomials_total / 32,
            k: 9,
            d: 2,
            seed,
        }
    }

    /// Table 2 family: `n = 32`, `k = 16`, `d = 10`.
    pub fn table2(monomials_total: usize, seed: u64) -> Self {
        assert_eq!(
            monomials_total % 32,
            0,
            "total must be a multiple of n = 32"
        );
        BenchmarkParams {
            n: 32,
            m: monomials_total / 32,
            k: 16,
            d: 10,
            seed,
        }
    }

    pub fn shape(&self) -> UniformShape {
        UniformShape::square(self.n, self.m, self.k, self.d)
    }
}

/// Generate a random system of the given shape. Panics if `k > n` or
/// `k < 1` or `d < 1`.
///
/// Note: the generated shape's `d` is an upper bound realized with high
/// probability, not a guarantee — `uniform_shape()` may report a smaller
/// observed `d` for tiny systems.
pub fn random_system<R: Real>(params: &BenchmarkParams) -> System<R> {
    assert!(params.k >= 1 && params.k <= params.n, "need 1 <= k <= n");
    assert!(params.d >= 1, "need d >= 1");
    assert!(params.m >= 1, "need m >= 1");
    let mut rng = StdRng::seed_from_u64(params.seed);
    let polys = (0..params.n)
        .map(|_| random_polynomial(params, &mut rng))
        .collect();
    System::new(params.n, polys).expect("generator produces square systems")
}

fn random_polynomial<R: Real>(params: &BenchmarkParams, rng: &mut StdRng) -> Polynomial<R> {
    let terms = (0..params.m)
        .map(|_| Term {
            coeff: random_unit_coeff(rng),
            monomial: random_monomial(params, rng),
        })
        .collect();
    Polynomial::new(terms)
}

/// `k` distinct variables by partial Fisher-Yates over `0..n`, exponents
/// uniform in `1..=d`.
fn random_monomial(params: &BenchmarkParams, rng: &mut StdRng) -> Monomial {
    let vars = sample_distinct(params.n, params.k, rng);
    let factors = vars
        .into_iter()
        .map(|v| (v as Var, rng.gen_range(1..=params.d)))
        .collect();
    Monomial::new(factors).expect("distinct vars with exponents >= 1")
}

/// Coefficient on the complex unit circle.
fn random_unit_coeff<R: Real>(rng: &mut StdRng) -> Complex<R> {
    Complex::unit_from_angle(rng.gen_range(0.0..TAU))
}

/// Sample `k` distinct values from `0..n` (partial Fisher-Yates).
fn sample_distinct(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

/// Parameters for the random **sparse** (ragged) benchmark family:
/// per-equation monomial counts drawn from `m_min..=m_max` and
/// per-monomial variable counts from `k_min..=k_max` — no uniform-shape
/// guarantee, which is exactly what the packed-key encoding and the
/// polyhedral start machinery exist to handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseBenchmarkParams {
    /// Dimension (variables = polynomials).
    pub n: usize,
    /// Per-equation monomial count range (inclusive, `m_min >= 1`).
    pub m_min: usize,
    pub m_max: usize,
    /// Per-monomial variable count range (inclusive; `k_min` may be 0,
    /// producing constant terms).
    pub k_min: usize,
    pub k_max: usize,
    /// Maximal exponent (`>= 1`); exponents uniform in `1..=d`.
    pub d: Exp,
    /// RNG seed.
    pub seed: u64,
}

impl SparseBenchmarkParams {
    /// A ragged cousin of the paper's Table 1 family: `n = 32`,
    /// `d = 2`, per-equation monomial counts in `8..=32` and
    /// per-monomial variable counts in `1..=9`.
    pub fn table1_sparse(seed: u64) -> Self {
        SparseBenchmarkParams {
            n: 32,
            m_min: 8,
            m_max: 32,
            k_min: 1,
            k_max: 9,
            d: 2,
            seed,
        }
    }
}

/// Generate a random ragged system. Panics if the ranges are empty,
/// `k_max > n`, `m_min < 1` or `d < 1`.
pub fn random_sparse_system<R: Real>(params: &SparseBenchmarkParams) -> System<R> {
    assert!(
        params.m_min >= 1 && params.m_min <= params.m_max,
        "bad m range"
    );
    assert!(
        params.k_min <= params.k_max && params.k_max <= params.n,
        "bad k range"
    );
    assert!(params.d >= 1, "need d >= 1");
    let mut rng = StdRng::seed_from_u64(params.seed);
    let polys = (0..params.n)
        .map(|_| {
            let m = rng.gen_range(params.m_min..=params.m_max);
            let terms = (0..m)
                .map(|_| {
                    let k = rng.gen_range(params.k_min..=params.k_max);
                    let vars = sample_distinct(params.n, k, &mut rng);
                    let factors = vars
                        .into_iter()
                        .map(|v| (v as Var, rng.gen_range(1..=params.d)))
                        .collect();
                    Term {
                        coeff: random_unit_coeff(&mut rng),
                        monomial: Monomial::new(factors).expect("distinct vars, exps >= 1"),
                    }
                })
                .collect();
            Polynomial::new(terms)
        })
        .collect();
    System::new(params.n, polys).expect("generator produces square systems")
}

/// A random evaluation point with coordinates on the unit circle — the
/// magnitude-neutral choice used when timing evaluations.
pub fn random_point<R: Real>(n: usize, seed: u64) -> Vec<Complex<R>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Complex::unit_from_angle(rng.gen_range(0.0..TAU)))
        .collect()
}

/// A batch of random evaluation points.
pub fn random_points<R: Real>(n: usize, count: usize, seed: u64) -> Vec<Vec<Complex<R>>> {
    (0..count)
        .map(|i| {
            random_point(
                n,
                seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_system_has_requested_shape() {
        let params = BenchmarkParams {
            n: 10,
            m: 7,
            k: 4,
            d: 5,
            seed: 42,
        };
        let sys = random_system::<f64>(&params);
        let shape = sys.uniform_shape().unwrap();
        assert_eq!(shape.n, 10);
        assert_eq!(shape.m, 7);
        assert_eq!(shape.k, 4);
        assert!(shape.d <= 5 && shape.d >= 1);
    }

    #[test]
    fn table_presets_match_paper() {
        let t1 = BenchmarkParams::table1(1024, 1);
        assert_eq!((t1.n, t1.m, t1.k, t1.d), (32, 32, 9, 2));
        let t2 = BenchmarkParams::table2(704, 1);
        assert_eq!((t2.n, t2.m, t2.k, t2.d), (32, 22, 16, 10));
        assert_eq!(t2.shape().total_monomials(), 704);
    }

    #[test]
    fn deterministic_under_seed() {
        let params = BenchmarkParams {
            n: 6,
            m: 3,
            k: 2,
            d: 3,
            seed: 7,
        };
        let a = random_system::<f64>(&params);
        let b = random_system::<f64>(&params);
        assert_eq!(a, b);
        let c = random_system::<f64>(&BenchmarkParams { seed: 8, ..params });
        assert_ne!(a, c);
    }

    #[test]
    fn coefficients_on_unit_circle() {
        let params = BenchmarkParams {
            n: 4,
            m: 5,
            k: 2,
            d: 2,
            seed: 3,
        };
        let sys = random_system::<f64>(&params);
        for poly in sys.polys() {
            for t in poly.terms() {
                assert!((t.coeff.norm_sqr() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn monomials_have_distinct_vars_in_range() {
        let params = BenchmarkParams {
            n: 8,
            m: 10,
            k: 8, // k == n: every variable in every monomial
            d: 2,
            seed: 9,
        };
        let sys = random_system::<f64>(&params);
        for poly in sys.polys() {
            for t in poly.terms() {
                let vars: Vec<_> = t.monomial.factors().iter().map(|&(v, _)| v).collect();
                assert_eq!(vars.len(), 8);
                let mut sorted = vars.clone();
                sorted.dedup();
                assert_eq!(sorted.len(), 8, "duplicate variable in {vars:?}");
                assert!(vars.iter().all(|&v| (v as usize) < 8));
            }
        }
    }

    #[test]
    fn random_points_are_unit_and_deterministic() {
        let a = random_point::<f64>(5, 11);
        let b = random_point::<f64>(5, 11);
        assert_eq!(a, b);
        for z in &a {
            assert!((z.norm_sqr() - 1.0).abs() < 1e-12);
        }
        let batch = random_points::<f64>(5, 3, 11);
        assert_eq!(batch.len(), 3);
        assert_ne!(batch[0], batch[1]);
    }
}
