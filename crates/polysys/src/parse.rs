//! A small text format for polynomials and systems.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! system     := polynomial (';' polynomial)* ';'?
//! polynomial := term (('+' | '-') term)*
//! term       := coeff ('*' factor)* | factor ('*' factor)*
//! factor     := 'x' INDEX ('^' EXP)?
//! coeff      := NUMBER | '(' NUMBER (('+'|'-') NUMBER? 'i')? ')' | 'i'
//! ```
//!
//! Examples: `3.5*x0^2*x2 + (1+2i)*x1 - x0`, `x0^2 - 1; x0*x1 + 2`.
//!
//! Round-trips with the `Display` implementations (which print
//! coefficients in full precision through the generic decimal
//! formatter), so systems survive save/load in any supported scalar.

use crate::monomial::Monomial;
use crate::polynomial::{Polynomial, Term};
use crate::system::{System, SystemError};
use polygpu_complex::{Complex, Real};
use std::fmt;

/// Parse failure with a byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub position: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Cursor<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Cursor {
            s: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    /// An unsigned decimal number (integer or float, with optional
    /// exponent).
    fn number(&mut self) -> Result<f64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.s.len()
            && (self.s[self.pos].is_ascii_digit() || self.s[self.pos] == b'.')
        {
            self.pos += 1;
        }
        // optional exponent
        if self.pos < self.s.len() && (self.s[self.pos] | 0x20) == b'e' {
            let mark = self.pos;
            self.pos += 1;
            if self.pos < self.s.len() && (self.s[self.pos] == b'+' || self.s[self.pos] == b'-') {
                self.pos += 1;
            }
            if self.pos < self.s.len() && self.s[self.pos].is_ascii_digit() {
                while self.pos < self.s.len() && self.s[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
            } else {
                self.pos = mark; // not an exponent after all
            }
        }
        if start == self.pos {
            return Err(self.err("expected a number"));
        }
        std::str::from_utf8(&self.s[start..self.pos])
            .expect("ascii digits")
            .parse::<f64>()
            .map_err(|e| self.err(format!("bad number: {e}")))
    }

    /// An unsigned integer.
    fn integer(&mut self) -> Result<u32, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected an integer"));
        }
        std::str::from_utf8(&self.s[start..self.pos])
            .expect("ascii digits")
            .parse::<u32>()
            .map_err(|e| self.err(format!("bad integer: {e}")))
    }
}

/// `x INDEX [^ EXP]`
fn parse_factor(c: &mut Cursor<'_>) -> Result<(u16, u16), ParseError> {
    if !c.eat(b'x') {
        return Err(c.err("expected a variable like `x0`"));
    }
    let var = c.integer()?;
    if var > u16::MAX as u32 {
        return Err(c.err("variable index too large"));
    }
    let exp = if c.eat(b'^') {
        let e = c.integer()?;
        if e == 0 || e > u16::MAX as u32 {
            return Err(c.err("exponent must be in 1..=65535"));
        }
        e as u16
    } else {
        1
    };
    Ok((var as u16, exp))
}

/// A parenthesised complex literal: `( a )`, `( a + b i )`, `( a - i )`.
fn parse_complex_paren<R: Real>(c: &mut Cursor<'_>) -> Result<Complex<R>, ParseError> {
    // '(' already consumed
    let re_neg = c.eat(b'-');
    let re = c.number()?;
    let re = if re_neg { -re } else { re };
    let mut im = 0.0;
    match c.peek() {
        Some(b'+') | Some(b'-') => {
            let neg = c.bump() == Some(b'-');
            // `b i` or bare `i`
            let mag = if c.peek() == Some(b'i') {
                1.0
            } else {
                c.number()?
            };
            if !c.eat(b'i') {
                return Err(c.err("expected `i` after imaginary part"));
            }
            im = if neg { -mag } else { mag };
        }
        Some(b'i') => {
            // `(ai)` form: what we parsed was the imaginary magnitude
            c.bump();
            if !c.eat(b')') {
                return Err(c.err("expected `)`"));
            }
            return Ok(Complex::from_f64(0.0, re));
        }
        _ => {}
    }
    if !c.eat(b')') {
        return Err(c.err("expected `)`"));
    }
    Ok(Complex::from_f64(re, im))
}

/// One term: optional coefficient, factors joined by `*`.
fn parse_term<R: Real>(c: &mut Cursor<'_>, negate: bool) -> Result<Term<R>, ParseError> {
    let mut coeff = Complex::<R>::one();
    let mut have_coeff = false;
    match c.peek() {
        Some(b'(') => {
            c.bump();
            coeff = parse_complex_paren(c)?;
            have_coeff = true;
        }
        Some(b'i') => {
            c.bump();
            coeff = Complex::i();
            have_coeff = true;
        }
        Some(ch) if ch.is_ascii_digit() || ch == b'.' => {
            coeff = Complex::from_f64(c.number()?, 0.0);
            have_coeff = true;
        }
        _ => {}
    }
    let mut factors = Vec::new();
    // After a coefficient, factors come via '*'; a bare leading factor
    // needs no '*'.
    loop {
        if have_coeff || !factors.is_empty() {
            if !c.eat(b'*') {
                break;
            }
        } else if c.peek() != Some(b'x') {
            break;
        }
        factors.push(parse_factor(c)?);
    }
    if !have_coeff && factors.is_empty() {
        return Err(c.err("expected a term"));
    }
    let monomial = Monomial::new(factors).map_err(|e| c.err(e.to_string()))?;
    if negate {
        coeff = -coeff;
    }
    Ok(Term { coeff, monomial })
}

/// Parse one polynomial.
pub fn parse_polynomial<R: Real>(input: &str) -> Result<Polynomial<R>, ParseError> {
    let mut c = Cursor::new(input);
    let poly = parse_polynomial_inner(&mut c)?;
    c.skip_ws();
    if c.pos != c.s.len() {
        return Err(c.err("trailing input after polynomial"));
    }
    Ok(poly)
}

fn parse_polynomial_inner<R: Real>(c: &mut Cursor<'_>) -> Result<Polynomial<R>, ParseError> {
    let mut terms = Vec::new();
    let mut negate = c.eat(b'-');
    loop {
        terms.push(parse_term(c, negate)?);
        match c.peek() {
            Some(b'+') => {
                c.bump();
                negate = false;
            }
            Some(b'-') => {
                c.bump();
                negate = true;
            }
            _ => break,
        }
    }
    Ok(Polynomial::new(terms))
}

/// Parse a `;`-separated square system; `n` is inferred as the largest
/// variable index + 1, clamped up to the polynomial count.
pub fn parse_system<R: Real>(input: &str) -> Result<System<R>, ParseError> {
    let mut c = Cursor::new(input);
    let mut polys = Vec::new();
    loop {
        polys.push(parse_polynomial_inner::<R>(&mut c)?);
        if !c.eat(b';') {
            break;
        }
        if c.peek().is_none() {
            break; // trailing semicolon
        }
    }
    c.skip_ws();
    if c.pos != c.s.len() {
        return Err(c.err("trailing input after system"));
    }
    let n = polys
        .iter()
        .map(|p| p.min_dimension())
        .max()
        .unwrap_or(0)
        .max(polys.len());
    System::new(n, polys).map_err(|e: SystemError| ParseError {
        position: input.len(),
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygpu_complex::C64;

    #[test]
    fn parses_simple_terms() {
        let p: Polynomial<f64> = parse_polynomial("3.5*x0^2*x2 + x1 - 2*x0").unwrap();
        assert_eq!(p.num_terms(), 3);
        let v = p.eval(&[
            C64::from_f64(1.0, 0.0),
            C64::from_f64(2.0, 0.0),
            C64::from_f64(3.0, 0.0),
        ]);
        // 3.5*1*3 + 2 - 2 = 10.5
        assert_eq!(v, C64::from_f64(10.5, 0.0));
    }

    #[test]
    fn parses_complex_coefficients() {
        let p: Polynomial<f64> =
            parse_polynomial("(1+2i)*x0 + (3-i)*x1 + (2.5i)*x2 + i*x3").unwrap();
        let ones = vec![C64::one(); 4];
        let v = p.eval(&ones);
        assert_eq!(v, C64::from_f64(4.0, 2.0 - 1.0 + 2.5 + 1.0));
    }

    #[test]
    fn leading_minus_and_bare_constants() {
        let p: Polynomial<f64> = parse_polynomial("-x0 + 4").unwrap();
        let v = p.eval(&[C64::from_f64(1.5, 0.0)]);
        assert_eq!(v, C64::from_f64(2.5, 0.0));
        // pure constant polynomial
        let q: Polynomial<f64> = parse_polynomial("7.25").unwrap();
        assert_eq!(q.eval(&[]), C64::from_f64(7.25, 0.0));
    }

    #[test]
    fn scientific_notation_coefficients() {
        let p: Polynomial<f64> = parse_polynomial("1.5e2*x0 + 2e-3").unwrap();
        let v = p.eval(&[C64::one()]);
        assert_eq!(v, C64::from_f64(150.002, 0.0));
    }

    #[test]
    fn system_parsing_infers_dimension() {
        let s: System<f64> = parse_system("x0^2 - 1; x0*x1 + 2;").unwrap();
        assert_eq!(s.dim(), 2);
        assert_eq!(s.polys().len(), 2);
    }

    #[test]
    fn display_round_trip() {
        use crate::generator::{random_system, BenchmarkParams};
        let sys = random_system::<f64>(&BenchmarkParams {
            n: 4,
            m: 3,
            k: 2,
            d: 3,
            seed: 8,
        });
        let printed = format!("{}", sys.polys()[0]);
        // Our Display wraps coefficients like (re+imi); strip the f-line
        // prefix is not present for a bare polynomial.
        let reparsed: Polynomial<f64> = parse_polynomial(&printed)
            .unwrap_or_else(|e| panic!("could not reparse {printed:?}: {e}"));
        assert_eq!(reparsed.num_terms(), sys.polys()[0].num_terms());
        // Values agree at a point (coefficients printed with enough
        // digits to survive the trip at f64 precision).
        let x = crate::generator::random_point::<f64>(4, 1);
        let a = sys.polys()[0].eval(&x);
        let b = reparsed.eval(&x);
        assert!((a - b).abs() < 1e-10, "{a} vs {b}");
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse_polynomial::<f64>("3*x0 + @").unwrap_err();
        assert!(e.position >= 7, "{e}");
        assert!(parse_polynomial::<f64>("x0^0").is_err(), "zero exponent");
        assert!(parse_polynomial::<f64>("x0*x0").is_err(), "duplicate var");
        assert!(parse_polynomial::<f64>("(1+2j)*x0").is_err(), "bad imag");
        assert!(parse_polynomial::<f64>("").is_err(), "empty");
    }

    #[test]
    fn dd_coefficients_parse() {
        use polygpu_qd::Dd;
        let p: Polynomial<Dd> = parse_polynomial("0.5*x0 + (0.25+0.125i)*x1").unwrap();
        let v = p.eval(&[Complex::one(), Complex::one()]);
        assert_eq!(v.re.to_f64(), 0.75);
        assert_eq!(v.im.to_f64(), 0.125);
    }
}
