//! The paper's multiplication-count cost model (§3.1–§3.3).
//!
//! These closed forms are stated in the paper and verified against the
//! instrumented evaluators by tests (`op_counts_match_paper_formulas` in
//! `eval::ad`, and the kernel-2 counter test in `polygpu-core`).

/// Multiplications to obtain all partial derivatives of the Speelpenning
/// product `x_{i1}···x_{ik}`: `3k − 6` for `k >= 3` (forward `k − 2`,
/// backward `k − 2`, products `k − 2`); zero for `k <= 2`, where the
/// derivatives are plain copies.
pub fn speelpenning_muls(k: usize) -> u64 {
    if k >= 3 {
        (3 * k - 6) as u64
    } else {
        0
    }
}

/// Total multiplications per thread of the paper's second kernel:
/// `5k − 4` = (`3k − 6` Speelpenning) + (`k` by the common factor) +
/// (1 to recover the monomial value) + (`k + 1` by the coefficients).
///
/// Stated for `k >= 2`. For `k = 1` the algorithm performs 4 (the
/// closed form does not apply; the paper's benchmarks use `k ∈ {9, 16}`).
pub fn kernel2_muls(k: usize) -> u64 {
    match k {
        0 => 0,
        1 => 4,
        k => (5 * k - 4) as u64,
    }
}

/// Multiplications per thread of kernel 1's second stage: the common
/// factor is a product of `k` precomputed powers, `k − 1`
/// multiplications.
pub fn common_factor_muls(k: usize) -> u64 {
    (k.saturating_sub(1)) as u64
}

/// Multiplications per *block* of kernel 1's first stage: each of the
/// `n` active threads computes powers 2..=d−1 of its variable, `d − 2`
/// multiplications each (zero when `d <= 2`... note `d = 2` still needs
/// no multiplication because `x^1` is a copy and `x^0` a constant).
pub fn power_stage_muls_per_block(n: usize, d: usize) -> u64 {
    (n as u64) * (d.saturating_sub(2)) as u64
}

/// Additions per thread of kernel 3: each thread adds exactly `m` terms
/// (including the pre-zeroed slots), by the paper's §3.3 design.
pub fn kernel3_adds_per_thread(m: usize) -> u64 {
    m as u64
}

/// Total complex multiplications for one full evaluation of the system
/// and Jacobian with the three-kernel algorithm, excluding the power
/// stage (which is per-block, see
/// [`power_stage_muls_per_block`]): `n·m` monomials, each costing
/// kernel 1 stage 2 plus kernel 2.
pub fn evaluation_muls(n: usize, m: usize, k: usize) -> u64 {
    (n * m) as u64 * (common_factor_muls(k) + kernel2_muls(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_values() {
        // Table 1 family: k = 9 -> kernel 2 does 41 muls per monomial.
        assert_eq!(kernel2_muls(9), 41);
        assert_eq!(speelpenning_muls(9), 21);
        // Table 2 family: k = 16 -> 76 muls.
        assert_eq!(kernel2_muls(16), 76);
        assert_eq!(speelpenning_muls(16), 42);
    }

    #[test]
    fn decomposition_identity() {
        // 5k-4 = (3k-6) + k + 1 + (k+1) for k >= 2.
        for k in 2..200 {
            assert_eq!(
                kernel2_muls(k),
                speelpenning_muls(k) + k as u64 + 1 + (k as u64 + 1)
            );
        }
    }

    #[test]
    fn small_k_edge_cases() {
        assert_eq!(speelpenning_muls(0), 0);
        assert_eq!(speelpenning_muls(1), 0);
        assert_eq!(speelpenning_muls(2), 0);
        assert_eq!(speelpenning_muls(3), 3);
        assert_eq!(kernel2_muls(2), 6);
        assert_eq!(common_factor_muls(1), 0);
        assert_eq!(common_factor_muls(9), 8);
    }

    #[test]
    fn power_stage() {
        assert_eq!(power_stage_muls_per_block(32, 2), 0);
        assert_eq!(power_stage_muls_per_block(32, 10), 32 * 8);
    }

    #[test]
    fn whole_evaluation() {
        // Table 1, 1024 monomials: 1024 * (8 + 41).
        assert_eq!(evaluation_muls(32, 32, 9), 1024 * 49);
    }
}
