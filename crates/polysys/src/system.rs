//! Polynomial systems, the uniform benchmark shape, and the evaluator
//! interface shared by CPU and GPU implementations.

use crate::monomial::Exp;
use crate::polynomial::Polynomial;
use polygpu_complex::{CMat, Complex, Real};
use std::fmt;

/// A system `f(x) = 0` of polynomials in `n` variables.
///
/// [`System::new`] builds the paper's **square** system (`n`
/// polynomials in `n` variables — what the solvers require);
/// [`System::rectangular`] admits any number of rows in `n` variables,
/// which is how a *row shard* of a square system travels to one device
/// of a row-sharded cluster (each device encodes only its rows'
/// supports). [`System::row_block`] cuts those shards.
#[derive(Debug, Clone, PartialEq)]
pub struct System<R> {
    n: usize,
    polys: Vec<Polynomial<R>>,
}

/// Errors constructing or validating a [`System`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SystemError {
    /// Number of polynomials differs from the declared dimension.
    NotSquare { n: usize, polys: usize },
    /// A polynomial references a variable outside `0..n`.
    VariableOutOfRange { poly: usize, var: usize, n: usize },
    /// The system does not have the uniform `(m, k, d)` shape the GPU
    /// pipeline requires (the paper's regularity assumption).
    NotUniform(String),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::NotSquare { n, polys } => {
                write!(
                    f,
                    "system declared dimension {n} but has {polys} polynomials"
                )
            }
            SystemError::VariableOutOfRange { poly, var, n } => {
                write!(f, "polynomial {poly} uses x{var} outside dimension {n}")
            }
            SystemError::NotUniform(msg) => write!(f, "system is not uniform: {msg}"),
        }
    }
}

impl std::error::Error for SystemError {}

/// The regular benchmark shape of the paper's §2: every polynomial has
/// exactly `m` monomials, every monomial exactly `k` variables, and no
/// variable exceeds degree `d`.
///
/// Generalized to **rectangular** row blocks: `rows` is the number of
/// polynomials, `n` the number of variables. The paper's square systems
/// have `rows == n`; a row shard of a square system keeps `n` and
/// carries only its own `rows`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformShape {
    /// Number of variables (the dimension points live in).
    pub n: usize,
    /// Number of polynomials — `n` for a square system, the shard's
    /// row count for a row block.
    pub rows: usize,
    /// Monomials per polynomial.
    pub m: usize,
    /// Variables per monomial.
    pub k: usize,
    /// Maximal exponent of any variable in any monomial.
    pub d: Exp,
}

impl UniformShape {
    /// A square shape (`rows == n`) — the paper's benchmark family.
    pub fn square(n: usize, m: usize, k: usize, d: Exp) -> Self {
        UniformShape {
            n,
            rows: n,
            m,
            k,
            d,
        }
    }

    /// Whether this shape is square (`rows == n`).
    pub fn is_square(&self) -> bool {
        self.rows == self.n
    }

    /// Total number of monomials in the system: `rows·m`.
    pub fn total_monomials(&self) -> usize {
        self.rows * self.m
    }

    /// Total number of values produced per evaluation: the `rows`
    /// polynomial values plus the `rows × n` Jacobian.
    pub fn outputs(&self) -> usize {
        self.rows * self.n + self.rows
    }
}

impl<R: Real> System<R> {
    pub fn new(n: usize, polys: Vec<Polynomial<R>>) -> Result<Self, SystemError> {
        if polys.len() != n {
            return Err(SystemError::NotSquare {
                n,
                polys: polys.len(),
            });
        }
        System::rectangular(n, polys)
    }

    /// A (possibly) rectangular system: any number of polynomials in
    /// `n` variables. Row shards of a square system are built this way;
    /// the solvers still require square systems, but evaluators accept
    /// rectangular ones (values of length [`System::rows`], Jacobian
    /// `rows × n`).
    pub fn rectangular(n: usize, polys: Vec<Polynomial<R>>) -> Result<Self, SystemError> {
        for (p, poly) in polys.iter().enumerate() {
            let dim = poly.min_dimension();
            if dim > n {
                let var = poly
                    .terms()
                    .iter()
                    .flat_map(|t| t.monomial.factors())
                    .map(|&(v, _)| v as usize)
                    .max()
                    .unwrap_or(0);
                return Err(SystemError::VariableOutOfRange { poly: p, var, n });
            }
        }
        Ok(System { n, polys })
    }

    /// The rectangular subsystem holding the polynomials whose indices
    /// appear in `rows`, in the given order — one device's share under
    /// row sharding. Panics if an index is out of range.
    pub fn row_block(&self, rows: &[usize]) -> System<R> {
        let polys = rows.iter().map(|&r| self.polys[r].clone()).collect();
        System { n: self.n, polys }
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of polynomials (equals [`System::dim`] for square
    /// systems).
    #[inline]
    pub fn rows(&self) -> usize {
        self.polys.len()
    }

    /// Whether the system is square (`rows == dim`), as the solvers
    /// require.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.polys.len() == self.n
    }

    #[inline]
    pub fn polys(&self) -> &[Polynomial<R>] {
        &self.polys
    }

    /// Check the paper's regularity assumptions and return the shape.
    pub fn uniform_shape(&self) -> Result<UniformShape, SystemError> {
        let first = self
            .polys
            .first()
            .ok_or_else(|| SystemError::NotUniform("empty system".into()))?;
        let m = first.num_terms();
        let k = first
            .terms()
            .first()
            .map(|t| t.monomial.num_vars())
            .ok_or_else(|| SystemError::NotUniform("polynomial with no terms".into()))?;
        let mut d: Exp = 0;
        for (p, poly) in self.polys.iter().enumerate() {
            if poly.num_terms() != m {
                return Err(SystemError::NotUniform(format!(
                    "polynomial {p} has {} monomials, expected m = {m}",
                    poly.num_terms()
                )));
            }
            for (j, t) in poly.terms().iter().enumerate() {
                if t.monomial.num_vars() != k {
                    return Err(SystemError::NotUniform(format!(
                        "monomial {j} of polynomial {p} has {} variables, expected k = {k}",
                        t.monomial.num_vars()
                    )));
                }
                d = d.max(t.monomial.max_exponent());
            }
        }
        Ok(UniformShape {
            n: self.n,
            rows: self.polys.len(),
            m,
            k,
            d,
        })
    }

    /// Map coefficients into another precision.
    pub fn convert<S: Real>(&self) -> System<S> {
        System {
            n: self.n,
            polys: self.polys.iter().map(|p| p.convert()).collect(),
        }
    }

    /// A stable 64-bit hash of the system's **encoding-relevant
    /// structure**: the dimension, the row count, and — per polynomial,
    /// in row order — each monomial's sorted `(variable, exponent)`
    /// factors. This is exactly the information a device encoding
    /// (supports + positions + the `(k + 1)`-wide coefficient layout)
    /// derives from, and *nothing else*:
    ///
    /// * **coefficient values are excluded** — two systems with the
    ///   same supports but different coefficients hash equal (their
    ///   encoded support arrays are byte-identical; only the
    ///   coefficient upload differs), so a cache keyed by this hash
    ///   must still compare the systems for full equality before
    ///   reusing a coefficient upload;
    /// * **row order is included** — permuting the polynomials changes
    ///   the hash, because the encoded layout strides by row;
    /// * the hash is a pure function of the structure: it is identical
    ///   across runs, platforms and coefficient precisions
    ///   (`System<f64>` and its `convert::<Dd>()` image hash equal).
    ///
    /// Algorithm (documented so the value is stable forever): FNV-1a
    /// over the little-endian `u64` stream
    /// `n, rows, [m_i, [k_ij, [(var, exp)…]…]…]`. Not cryptographic —
    /// collisions are possible and callers keying storage on it must
    /// verify equality on hit.
    pub fn support_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.n as u64);
        eat(self.polys.len() as u64);
        for poly in &self.polys {
            eat(poly.num_terms() as u64);
            for t in poly.terms() {
                eat(t.monomial.num_vars() as u64);
                // Monomial factors are stored sorted by variable, so
                // the stream is canonical per monomial.
                for &(v, e) in t.monomial.factors() {
                    eat(u64::from(v));
                    eat(u64::from(e));
                }
            }
        }
        h
    }

    /// [`System::support_hash`] extended with a caller-supplied tag —
    /// the hook residency caches use to keep *distinct encodings of the
    /// same support* apart (a dense `Direct` upload and a packed-key
    /// upload are different constant-memory residents). The tag is
    /// folded into the FNV stream after the support bytes, so any tag
    /// (including 0) yields a hash distinct from the untagged one, and
    /// different tags yield different hashes for the same support.
    pub fn support_hash_tagged(&self, tag: u64) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = self.support_hash();
        for b in tag.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
}

impl<R: Real> fmt::Display for System<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.polys.iter().enumerate() {
            writeln!(f, "f{i} = {p}")?;
        }
        Ok(())
    }
}

/// The result of evaluating a system and its Jacobian at one point.
///
/// For a square system `values` has length `n` and the Jacobian is
/// `n × n`; for a rectangular row block they are `rows` and `rows × n`.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemEval<R> {
    /// `f_i(x)` for `i in 0..rows`.
    pub values: Vec<Complex<R>>,
    /// `J[(i, j)] = ∂f_i/∂x_j (x)`.
    pub jacobian: CMat<R>,
}

impl<R: Real> SystemEval<R> {
    pub fn zeros(n: usize) -> Self {
        SystemEval::zeros_rect(n, n)
    }

    /// A zeroed evaluation of a rectangular row block: `rows` values
    /// and a `rows × n` Jacobian.
    pub fn zeros_rect(rows: usize, n: usize) -> Self {
        SystemEval {
            values: vec![Complex::zero(); rows],
            jacobian: CMat::zeros(rows, n),
        }
    }

    /// Max-norm of the residual vector.
    pub fn residual_norm(&self) -> R {
        let mut m = R::zero();
        for v in &self.values {
            m = m.max_val(v.abs());
        }
        m
    }

    /// Largest absolute difference against another evaluation (both
    /// values and Jacobian entries) — used by equivalence tests.
    pub fn max_difference(&self, other: &SystemEval<R>) -> R {
        let mut m = R::zero();
        for (a, b) in self.values.iter().zip(&other.values) {
            m = m.max_val((*a - *b).abs());
        }
        for (a, b) in self
            .jacobian
            .as_slice()
            .iter()
            .zip(other.jacobian.as_slice())
        {
            m = m.max_val((*a - *b).abs());
        }
        m
    }
}

/// Anything that can evaluate a system and its Jacobian at a point:
/// the naive CPU oracle, the paper's sequential AD algorithm, or the
/// simulated-GPU pipeline. `&mut self` lets implementations keep scratch
/// buffers and accumulate performance counters.
pub trait SystemEvaluator<R: Real> {
    /// Dimension `n` of the system.
    fn dim(&self) -> usize;

    /// Evaluate values and Jacobian at `x` (`x.len() == self.dim()`).
    fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R>;

    /// Short name for reports.
    fn name(&self) -> &str {
        "evaluator"
    }
}

/// An evaluator that can amortize fixed costs (kernel launches, host to
/// device transfers) across **many points at once**. The contract mirrors
/// [`SystemEvaluator::evaluate`] point-wise: `evaluate_batch(points)[i]`
/// must equal `evaluate(&points[i])` **bit for bit** — batching is a
/// performance transformation, never a numerical one.
///
/// # Capacity contract
///
/// Implementations size their resources (e.g. device buffers) for at
/// most [`BatchSystemEvaluator::max_batch`] points; one call must
/// satisfy `1 <= points.len() <= max_batch()` with every point of
/// dimension [`SystemEvaluator::dim`]. A violating call is a **caller
/// bug**: `evaluate_batch` may panic on it. Implementations that can
/// report violations gracefully expose a `try_`-prefixed variant
/// returning a typed error (e.g. `BatchGpuEvaluator::try_evaluate_batch`
/// and `ShardedBatchEvaluator::try_evaluate_batch`); drivers that loop
/// batches of caller-controlled size should prefer those. Callers with
/// more than `max_batch()` points split into chunks (as the lockstep
/// and path-queue trackers do).
pub trait BatchSystemEvaluator<R: Real>: SystemEvaluator<R> {
    /// Largest number of points one `evaluate_batch` call accepts.
    fn max_batch(&self) -> usize;

    /// Evaluate values and Jacobian at every point of the batch
    /// (`1 <= points.len() <= self.max_batch()`, each of length
    /// `self.dim()` — see the capacity contract above).
    fn evaluate_batch(&mut self, points: &[Vec<Complex<R>>]) -> Vec<SystemEval<R>>;
}

// --- Forwarding impls -------------------------------------------------
//
// `&mut E` and `Box<E>` forward both evaluator traits (including for
// unsized `E`), so trait objects flow through every generic driver:
// `Box<dyn AnyEvaluator<R>>` or `&mut dyn AnyEvaluator<R>` (the unified
// engine interface of `polygpu-core`) can sit directly in a `Homotopy`
// or `BatchHomotopy` endpoint.

impl<R: Real, E: SystemEvaluator<R> + ?Sized> SystemEvaluator<R> for &mut E {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        (**self).evaluate(x)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<R: Real, E: BatchSystemEvaluator<R> + ?Sized> BatchSystemEvaluator<R> for &mut E {
    fn max_batch(&self) -> usize {
        (**self).max_batch()
    }

    fn evaluate_batch(&mut self, points: &[Vec<Complex<R>>]) -> Vec<SystemEval<R>> {
        (**self).evaluate_batch(points)
    }
}

impl<R: Real, E: SystemEvaluator<R> + ?Sized> SystemEvaluator<R> for Box<E> {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn evaluate(&mut self, x: &[Complex<R>]) -> SystemEval<R> {
        (**self).evaluate(x)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<R: Real, E: BatchSystemEvaluator<R> + ?Sized> BatchSystemEvaluator<R> for Box<E> {
    fn max_batch(&self) -> usize {
        (**self).max_batch()
    }

    fn evaluate_batch(&mut self, points: &[Vec<Complex<R>>]) -> Vec<SystemEval<R>> {
        (**self).evaluate_batch(points)
    }
}

/// Batch a single-point evaluator by looping — the canonical
/// [`BatchSystemEvaluator::evaluate_batch`] body for CPU evaluators,
/// whose batch is a performance no-op.
pub fn loop_evaluate_batch<R: Real, E: SystemEvaluator<R> + ?Sized>(
    eval: &mut E,
    points: &[Vec<Complex<R>>],
) -> Vec<SystemEval<R>> {
    points.iter().map(|x| eval.evaluate(x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomial::Monomial;
    use crate::polynomial::Term;
    use polygpu_complex::C64;

    fn term(c: f64, factors: Vec<(u16, u16)>) -> Term<f64> {
        Term {
            coeff: C64::from_f64(c, 0.0),
            monomial: Monomial::new(factors).unwrap(),
        }
    }

    #[test]
    fn square_validation() {
        let p = Polynomial::new(vec![term(1.0, vec![(0, 1), (1, 1)])]);
        assert!(System::new(2, vec![p.clone()]).is_err());
        assert!(System::new(2, vec![p.clone(), p.clone()]).is_ok());
        // variable out of range
        let bad = Polynomial::new(vec![term(1.0, vec![(5, 1), (0, 1)])]);
        let err = System::new(2, vec![p, bad]).unwrap_err();
        assert!(matches!(
            err,
            SystemError::VariableOutOfRange {
                poly: 1,
                var: 5,
                n: 2
            }
        ));
    }

    #[test]
    fn uniform_shape_detects_shape() {
        let p1 = Polynomial::new(vec![
            term(1.0, vec![(0, 2), (1, 1)]),
            term(2.0, vec![(0, 1), (1, 3)]),
        ]);
        let p2 = Polynomial::new(vec![
            term(3.0, vec![(0, 1), (1, 1)]),
            term(4.0, vec![(0, 3), (1, 2)]),
        ]);
        let sys = System::new(2, vec![p1, p2]).unwrap();
        let shape = sys.uniform_shape().unwrap();
        assert_eq!(
            shape,
            UniformShape {
                n: 2,
                rows: 2,
                m: 2,
                k: 2,
                d: 3
            }
        );
        assert!(shape.is_square());
        assert_eq!(shape.total_monomials(), 4);
        assert_eq!(shape.outputs(), 6);
    }

    #[test]
    fn uniform_shape_rejects_ragged() {
        let p1 = Polynomial::new(vec![
            term(1.0, vec![(0, 1), (1, 1)]),
            term(2.0, vec![(0, 1), (1, 2)]),
        ]);
        let p2 = Polynomial::new(vec![term(3.0, vec![(0, 1), (1, 1)])]);
        let sys = System::new(2, vec![p1.clone(), p2]).unwrap();
        assert!(matches!(
            sys.uniform_shape(),
            Err(SystemError::NotUniform(_))
        ));
        // ragged k
        let p3 = Polynomial::new(vec![
            term(1.0, vec![(0, 1)]),
            term(2.0, vec![(0, 1), (1, 2)]),
        ]);
        let sys = System::new(2, vec![p1, p3]).unwrap();
        assert!(matches!(
            sys.uniform_shape(),
            Err(SystemError::NotUniform(_))
        ));
    }

    #[test]
    fn row_blocks_are_rectangular_views() {
        let p1 = Polynomial::new(vec![
            term(1.0, vec![(0, 2), (1, 1)]),
            term(2.0, vec![(0, 1), (1, 3)]),
        ]);
        let p2 = Polynomial::new(vec![
            term(3.0, vec![(0, 1), (1, 1)]),
            term(4.0, vec![(0, 3), (1, 2)]),
        ]);
        let sys = System::new(2, vec![p1.clone(), p2.clone()]).unwrap();
        let block = sys.row_block(&[1]);
        assert_eq!(block.dim(), 2);
        assert_eq!(block.rows(), 1);
        assert!(!block.is_square());
        assert_eq!(block.polys()[0], p2);
        let shape = block.uniform_shape().unwrap();
        assert_eq!(shape.rows, 1);
        assert_eq!(shape.n, 2);
        assert_eq!(shape.total_monomials(), 2);
        assert_eq!(shape.outputs(), 3); // 1 value + 1×2 Jacobian
                                        // Out-of-order row selections preserve the given order.
        let swapped = sys.row_block(&[1, 0]);
        assert_eq!(swapped.polys()[0], p2);
        assert_eq!(swapped.polys()[1], p1);
        assert!(swapped.is_square());
        // Rectangular construction still validates variable ranges.
        let bad = Polynomial::new(vec![term(1.0, vec![(5, 1), (0, 1)])]);
        assert!(matches!(
            System::rectangular(2, vec![bad]),
            Err(SystemError::VariableOutOfRange { .. })
        ));
    }

    #[test]
    fn support_hash_ignores_coefficients_but_not_structure() {
        let p1 = Polynomial::new(vec![
            term(1.0, vec![(0, 2), (1, 1)]),
            term(2.0, vec![(0, 1), (1, 3)]),
        ]);
        let p2 = Polynomial::new(vec![
            term(3.0, vec![(0, 1), (1, 1)]),
            term(4.0, vec![(0, 3), (1, 2)]),
        ]);
        let sys = System::new(2, vec![p1.clone(), p2.clone()]).unwrap();

        // Same supports, different coefficients: equal hashes (it is a
        // *support* hash — cache implementations must still compare
        // the systems before reusing a coefficient upload).
        let q1 = Polynomial::new(vec![
            term(-7.5, vec![(0, 2), (1, 1)]),
            term(0.25, vec![(0, 1), (1, 3)]),
        ]);
        let q2 = Polynomial::new(vec![
            term(9.0, vec![(0, 1), (1, 1)]),
            term(-1.0, vec![(0, 3), (1, 2)]),
        ]);
        let recoeffed = System::new(2, vec![q1, q2]).unwrap();
        assert_ne!(sys, recoeffed, "coefficients differ");
        assert_eq!(sys.support_hash(), recoeffed.support_hash());

        // Row permutation changes the encoded layout, so the hash.
        let permuted = System::new(2, vec![p2.clone(), p1.clone()]).unwrap();
        assert_ne!(sys.support_hash(), permuted.support_hash());

        // A different exponent anywhere changes the hash.
        let p1_bumped = Polynomial::new(vec![
            term(1.0, vec![(0, 2), (1, 2)]),
            term(2.0, vec![(0, 1), (1, 3)]),
        ]);
        let bumped = System::new(2, vec![p1_bumped, p2.clone()]).unwrap();
        assert_ne!(sys.support_hash(), bumped.support_hash());

        // A row block hashes differently from its parent (row count is
        // part of the stream), and identically to itself.
        let block = sys.row_block(&[1]);
        assert_ne!(sys.support_hash(), block.support_hash());
        assert_eq!(block.support_hash(), sys.row_block(&[1]).support_hash());

        // Precision conversion preserves the structure stream.
        let dd = sys.convert::<polygpu_qd::Dd>();
        assert_eq!(sys.support_hash(), dd.support_hash());

        // Stable across clones and repeated calls.
        assert_eq!(sys.support_hash(), sys.clone().support_hash());
    }

    #[test]
    fn system_eval_difference() {
        let mut a = SystemEval::<f64>::zeros(2);
        let b = SystemEval::<f64>::zeros(2);
        a.values[1] = C64::from_f64(0.0, 3.0);
        a.jacobian[(1, 0)] = C64::from_f64(4.0, 0.0);
        assert_eq!(a.max_difference(&b), 4.0);
        assert_eq!(a.residual_norm(), 3.0);
    }

    /// The CPU evaluators batch by looping (`loop_evaluate_batch`), so
    /// their batch interface is point-wise identical to single-point
    /// evaluation — the contract the removed `SingleBatch` adapter
    /// used to provide.
    #[test]
    fn loop_batching_matches_pointwise_evaluation() {
        use crate::eval::AdEvaluator;
        use crate::generator::{random_points, random_system, BenchmarkParams};
        let params = BenchmarkParams {
            n: 5,
            m: 3,
            k: 2,
            d: 2,
            seed: 9,
        };
        let sys = random_system::<f64>(&params);
        let points = random_points::<f64>(5, 4, 3);
        let mut single = AdEvaluator::new(sys.clone()).unwrap();
        let mut batch = AdEvaluator::new(sys).unwrap();
        assert_eq!(batch.dim(), 5);
        assert_eq!(batch.max_batch(), usize::MAX);
        let batched = batch.evaluate_batch(&points);
        assert_eq!(batched.len(), 4);
        for (x, got) in points.iter().zip(&batched) {
            let want = single.evaluate(x);
            assert_eq!(got.values, want.values);
            assert_eq!(got.jacobian.as_slice(), want.jacobian.as_slice());
        }
    }
}
