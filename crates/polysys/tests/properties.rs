//! Property-based tests: the AD evaluator must agree with the naive
//! oracle on random systems of random shapes, in every precision.

use polygpu_complex::Complex;
use polygpu_polysys::eval::{AdEvaluator, NaiveEvaluator};
use polygpu_polysys::generator::{random_point, random_system, BenchmarkParams};
use polygpu_polysys::system::SystemEvaluator;
use polygpu_qd::Dd;
use proptest::prelude::*;

fn shapes() -> impl Strategy<Value = BenchmarkParams> {
    (2usize..12, 1usize..6, 1u16..5, 0u64..1_000_000).prop_flat_map(|(n, m, d, seed)| {
        (1usize..=n).prop_map(move |k| BenchmarkParams { n, m, k, d, seed })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ad_matches_naive_on_random_shapes(params in shapes()) {
        let sys = random_system::<f64>(&params);
        let mut ad = AdEvaluator::new(sys.clone()).unwrap();
        let mut naive = NaiveEvaluator::new(sys);
        let x = random_point::<f64>(params.n, params.seed ^ 0x5555);
        let a = ad.evaluate(&x);
        let b = naive.evaluate(&x);
        // Unit-circle inputs and coefficients: absolute tolerance scales
        // with the monomial count.
        let tol = 1e-12 * (params.m as f64) * (params.k as f64 + 1.0);
        prop_assert!(a.max_difference(&b) < tol,
            "diff {:e} for {:?}", a.max_difference(&b), params);
    }

    #[test]
    fn evaluation_is_deterministic(params in shapes()) {
        let sys = random_system::<f64>(&params);
        let mut ad = AdEvaluator::new(sys).unwrap();
        let x = random_point::<f64>(params.n, 1);
        let a = ad.evaluate(&x);
        let b = ad.evaluate(&x);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn dd_evaluation_refines_f64(params in shapes()) {
        let sys = random_system::<f64>(&params);
        let sys_dd = sys.convert::<Dd>();
        let mut ad64 = AdEvaluator::new(sys).unwrap();
        let mut ad_dd = AdEvaluator::new(sys_dd).unwrap();
        let x = random_point::<f64>(params.n, params.seed);
        let x_dd: Vec<Complex<Dd>> = x.iter().map(|z| z.convert()).collect();
        let a = ad64.evaluate(&x);
        let b = ad_dd.evaluate(&x_dd);
        let tol = 1e-11 * (params.m as f64) * (params.k as f64 + 1.0);
        for (va, vb) in a.values.iter().zip(&b.values) {
            prop_assert!((va.re - vb.re.to_f64()).abs() < tol);
            prop_assert!((va.im - vb.im.to_f64()).abs() < tol);
        }
    }

    #[test]
    fn jacobian_row_count_matches_dim(params in shapes()) {
        let sys = random_system::<f64>(&params);
        let mut ad = AdEvaluator::new(sys).unwrap();
        let x = random_point::<f64>(params.n, 3);
        let r = ad.evaluate(&x);
        prop_assert_eq!(r.values.len(), params.n);
        prop_assert_eq!(r.jacobian.rows(), params.n);
        prop_assert_eq!(r.jacobian.cols(), params.n);
    }

    #[test]
    fn generator_shape_is_exact(params in shapes()) {
        let sys = random_system::<f64>(&params);
        let shape = sys.uniform_shape().unwrap();
        prop_assert_eq!(shape.n, params.n);
        prop_assert_eq!(shape.m, params.m);
        prop_assert_eq!(shape.k, params.k);
        prop_assert!(shape.d <= params.d);
    }
}
