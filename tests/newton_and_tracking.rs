//! Integration: Newton's method and path tracking with the simulated
//! GPU evaluator in the loop.

use polygpu::prelude::*;

#[test]
fn newton_on_gpu_evaluator_converges_and_matches_cpu() {
    let p = BenchmarkParams {
        n: 16,
        m: 8,
        k: 5,
        d: 2,
        seed: 11,
    };
    let system = random_system::<f64>(&p);
    let root = random_point::<f64>(16, 3);
    let x0: Vec<C64> = root
        .iter()
        .map(|z| *z + C64::from_f64(5e-3, -5e-3))
        .collect();

    let gpu = GpuEvaluator::new(&system, GpuOptions::default()).unwrap();
    let mut f_gpu = ShiftedEvaluator::with_root(gpu, &root);
    let r_gpu = newton(&mut f_gpu, &x0, NewtonParams::default());
    assert!(r_gpu.converged, "gpu newton: {:?}", r_gpu.residuals);

    let cpu = AdEvaluator::new(system).unwrap();
    let mut f_cpu = ShiftedEvaluator::with_root(cpu, &root);
    let r_cpu = newton(&mut f_cpu, &x0, NewtonParams::default());
    assert_eq!(
        r_gpu.x, r_cpu.x,
        "identical arithmetic -> identical iterates"
    );
    assert_eq!(r_gpu.iterations, r_cpu.iterations);
}

#[test]
fn gpu_corrector_tracks_a_path() {
    // Track one path of a tiny system with the *GPU* evaluator as the
    // target side of the homotopy.
    let p = BenchmarkParams {
        n: 2,
        m: 2,
        k: 2,
        d: 2,
        seed: 5,
    };
    let system = random_system::<f64>(&p);
    let degrees: Vec<u32> = system.polys().iter().map(|q| q.total_degree()).collect();
    let start = StartSystem::new(degrees);
    let x0: Vec<C64> = start.solution_by_index(0);
    let target = GpuEvaluator::new(&system, GpuOptions::default()).unwrap();
    let mut h = Homotopy::with_random_gamma(start, target, 99);
    let r = track(&mut h, &x0, TrackParams::default());
    if r.success() {
        let mut check = AdEvaluator::new(system).unwrap();
        let resid = check.evaluate(&r.end().x).residual_norm();
        assert!(resid < 1e-8, "endpoint residual {resid:e}");
    } else {
        // A single random path may legitimately diverge; the tracker
        // must say so rather than loop forever.
        assert!(matches!(
            r.outcome,
            TrackOutcome::StepUnderflow { .. } | TrackOutcome::SingularJacobian { .. }
        ));
    }
}

#[test]
fn tracking_cost_is_dominated_by_evaluations() {
    // The paper's premise: evaluation dominates linear algebra. Count
    // evaluator calls through the pipeline stats.
    let p = BenchmarkParams {
        n: 4,
        m: 3,
        k: 2,
        d: 2,
        seed: 23,
    };
    let system = random_system::<f64>(&p);
    let start = StartSystem::uniform(4, 2);
    let x0: Vec<C64> = start.solution_by_index(1);
    let target = GpuEvaluator::new(&system, GpuOptions::default()).unwrap();
    let mut h = Homotopy::with_random_gamma(start, target, 7);
    let r = track(&mut h, &x0, TrackParams::default());
    let evals = h.f.stats().evaluations;
    assert!(
        evals as usize >= r.steps_accepted,
        "every step evaluates at least once: {evals} vs {}",
        r.steps_accepted
    );
    // Modeled device time accrued along the whole path.
    assert!(h.f.stats().total_seconds() > 0.0);
}

#[test]
fn dd_newton_polishes_an_f64_root() {
    // Precision escalation: converge in f64, then polish in DD — the
    // quality-up workflow.
    let p = BenchmarkParams {
        n: 8,
        m: 4,
        k: 3,
        d: 2,
        seed: 37,
    };
    let system = random_system::<f64>(&p);
    let root = random_point::<f64>(8, 2);
    let x0: Vec<C64> = root
        .iter()
        .map(|z| *z + C64::from_f64(1e-4, 1e-4))
        .collect();
    let mut f64_eval =
        ShiftedEvaluator::with_root(AdEvaluator::new(system.clone()).unwrap(), &root);
    let r64 = newton(&mut f64_eval, &x0, NewtonParams::default());
    assert!(r64.converged);

    // Promote and polish. Note: the shift must be recomputed in DD from
    // the DD system so the root stays exact in the higher precision.
    let system_dd = system.convert::<Dd>();
    let root_dd: Vec<CDd> = root.iter().map(|z| z.convert()).collect();
    let mut dd_eval = ShiftedEvaluator::with_root(AdEvaluator::new(system_dd).unwrap(), &root_dd);
    let x0_dd: Vec<CDd> = r64.x.iter().map(|z| z.convert()).collect();
    let rdd = newton(
        &mut dd_eval,
        &x0_dd,
        NewtonParams {
            residual_tol: 1e-28,
            step_tol: 1e-30,
            max_iters: 10,
            ..Default::default()
        },
    );
    assert!(rdd.converged, "dd polish failed: {:?}", rdd.residuals);
    assert!(*rdd.residuals.last().unwrap() < 1e-28);
}
