//! Integration: determinism under host parallelism, device capacity
//! limits (E3), and the occupancy arithmetic of §3.2.

use polygpu::prelude::*;

#[test]
fn pipeline_is_deterministic_under_host_parallelism() {
    // The simulator runs blocks on rayon; results and every counter
    // must nonetheless be identical run to run.
    let p = BenchmarkParams {
        n: 32,
        m: 16,
        k: 9,
        d: 2,
        seed: 1,
    };
    let system = random_system::<f64>(&p);
    let x = random_point::<f64>(32, 2);
    let run = || {
        let mut gpu = GpuEvaluator::new(&system, GpuOptions::default()).unwrap();
        let e = gpu.evaluate(&x);
        (e, gpu.stats().counters, gpu.stats().total_seconds())
    };
    let (e1, c1, t1) = run();
    let (e2, c2, t2) = run();
    assert_eq!(e1.values, e2.values);
    assert_eq!(e1.jacobian.as_slice(), e2.jacobian.as_slice());
    assert_eq!(c1, c2, "counters must be reduction-order independent");
    assert_eq!(t1, t2, "modeled time must be deterministic");
}

#[test]
fn serial_and_parallel_host_execution_agree() {
    let p = BenchmarkParams {
        n: 16,
        m: 8,
        k: 4,
        d: 3,
        seed: 9,
    };
    let system = random_system::<f64>(&p);
    let x = random_point::<f64>(16, 4);
    let mut par = GpuEvaluator::new(&system, GpuOptions::default()).unwrap();
    let mut ser = GpuEvaluator::new(
        &system,
        GpuOptions {
            launch: polygpu::gpusim::LaunchOptions {
                parallel_host: false,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    let a = par.evaluate(&x);
    let b = ser.evaluate(&x);
    assert_eq!(a.values, b.values);
    assert_eq!(par.stats().counters, ser.stats().counters);
}

#[test]
fn capacity_wall_matches_paper_arithmetic() {
    // k = 16: 2,048 monomials need exactly 65,536 payload bytes.
    for (total, should_fit) in [(1536usize, true), (2048, false)] {
        let p = BenchmarkParams {
            n: 32,
            m: total / 32,
            k: 16,
            d: 10,
            seed: 3,
        };
        let system = random_system::<f64>(&p);
        let r = GpuEvaluator::new(&system, GpuOptions::default());
        assert_eq!(
            r.is_ok(),
            should_fit,
            "{total} monomials: expected fit = {should_fit}"
        );
    }
    // k = 9 at 2,048 monomials needs only 36,864 bytes and fits — the
    // wall is k-dependent (see EXPERIMENTS.md for the discussion of the
    // paper's blanket statement).
    let p = BenchmarkParams {
        n: 32,
        m: 64,
        k: 9,
        d: 2,
        seed: 3,
    };
    let system = random_system::<f64>(&p);
    assert!(GpuEvaluator::new(&system, GpuOptions::default()).is_ok());
}

#[test]
fn paper_shared_memory_budget_section_3_2() {
    // Reproduce the paper's §3.2 arithmetic through the occupancy
    // calculator: kernel 2 with complex double-double at n = 70,
    // k = 35, B = 32 uses 32*36 locations + 70 variables of 32 bytes
    // = 39,104 bytes <= 49,152.
    use polygpu::gpusim::occupancy;
    let device = DeviceSpec::tesla_c2050();
    let bytes = (32 * 36 + 70) * 32;
    assert_eq!(bytes, 39_104);
    let occ = occupancy::occupancy(&device, 32, bytes, 24).expect("fits");
    assert_eq!(occ.blocks_per_sm, 1);
    // And the paper's own slack claim: "we are still … > 10,000 bytes
    // below the maximal capacity".
    let (capacity, used) = (49_152u32, 36_864 + 2_240);
    assert!(capacity - used > 10_000);
}

#[test]
fn evaluator_trait_objects_are_interchangeable() {
    // The three evaluators behind one dyn interface — the property that
    // lets Newton/tracking code stay engine-agnostic.
    let p = BenchmarkParams {
        n: 8,
        m: 4,
        k: 3,
        d: 2,
        seed: 100,
    };
    let system = random_system::<f64>(&p);
    let x = random_point::<f64>(8, 1);
    let mut engines: Vec<Box<dyn SystemEvaluator<f64>>> = vec![
        Box::new(NaiveEvaluator::new(system.clone())),
        Box::new(AdEvaluator::new(system.clone()).unwrap()),
        Box::new(GpuEvaluator::new(&system, GpuOptions::default()).unwrap()),
    ];
    let results: Vec<SystemEval<f64>> = engines.iter_mut().map(|e| e.evaluate(&x)).collect();
    for r in &results[1..] {
        assert!(results[0].max_difference(r) < 1e-11);
    }
    let names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
    assert_eq!(names, vec!["cpu-naive", "cpu-ad", "gpu-sim"]);
}
