//! The solver-API acceptance: one `SolveRequest`, every scheduler ×
//! backend combination, identical answers.
//!
//! * [`PerPath`](SchedulerKind::PerPath) and
//!   [`Queue`](SchedulerKind::Queue) (any slot policy) are bit-identical
//!   to each other — and across the CPU-reference, batched-GPU and
//!   cluster backends — for arbitrary requests.
//! * [`Lockstep`](SchedulerKind::Lockstep) shares one step size across
//!   its front, so its multi-path trajectories legitimately differ; its
//!   guarantee is bit-identity across *backends* for any request, and
//!   bit-identity to the other schedulers whenever the front is one
//!   path.
//! * `SlotPolicy::Auto` sizes the queue front to `D ×` per-device
//!   capacity through `EngineCaps` and keeps it > 0.8 occupied at
//!   D ∈ {2, 4}.

use polygpu::prelude::*;
use proptest::prelude::*;

fn backends(devices: usize, capacity: usize) -> Vec<Backend> {
    vec![
        Backend::CpuReference,
        Backend::GpuBatch { capacity },
        Backend::Cluster {
            devices: vec![DeviceSpec::tesla_c2050(); devices],
            shard: ClusterPolicy::default().into(),
        },
    ]
}

fn solver_for(backend: Backend, per_device_capacity: usize) -> Solver {
    Solver::from_builder(
        Engine::builder()
            .backend(backend)
            .per_device_capacity(per_device_capacity),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// One request, every scheduler, every backend: the per-path and
    /// queue schedulers agree bit for bit everywhere; lockstep agrees
    /// with itself across backends, and with everything else on
    /// single-path fronts.
    #[test]
    fn solve_endpoints_identical_across_schedulers_and_backends(
        seed in 0u64..1_000,
        gamma_seed in 1u64..1_000,
        devices in 2usize..4,
        d in 2u32..4,
    ) {
        let params = BenchmarkParams { n: 2, m: 2, k: 2, d: d as u16, seed };
        let sys = random_system::<f64>(&params);
        let start = StartSystem::uniform(2, d);
        let req = SolveRequest::new(sys)
            .with_start(start)
            .with_gamma_seed(gamma_seed);

        // Reference: per-path on the CPU reference.
        let want = solver_for(Backend::CpuReference, 4).solve(&req).unwrap();
        prop_assert_eq!(want.paths.len(), (d * d) as usize);

        let schedulers = [
            SchedulerKind::PerPath,
            SchedulerKind::Queue { slots: SlotPolicy::Auto },
            SchedulerKind::Queue { slots: SlotPolicy::Fixed(3) },
        ];
        for backend in backends(devices, 4) {
            for scheduler in schedulers {
                let report = solver_for(backend.clone(), 2)
                    .solve(&req.clone().with_scheduler(scheduler))
                    .unwrap();
                for (i, (got, w)) in report.paths.iter().zip(&want.paths).enumerate() {
                    prop_assert_eq!(&got.outcome, &w.outcome,
                        "outcome: {:?} on {:?}, path {}", scheduler, backend, i);
                    prop_assert_eq!(&got.endpoint, &w.endpoint,
                        "endpoint: {:?} on {:?}, path {}", scheduler, backend, i);
                    prop_assert_eq!(got.t, w.t,
                        "final t: {:?} on {:?}, path {}", scheduler, backend, i);
                }
            }
        }

        // Lockstep: bit-identical across backends…
        let ls_want = solver_for(Backend::CpuReference, 4)
            .solve(&req.clone().with_scheduler(SchedulerKind::Lockstep))
            .unwrap();
        for backend in backends(devices, 4) {
            let report = solver_for(backend.clone(), 2)
                .solve(&req.clone().with_scheduler(SchedulerKind::Lockstep))
                .unwrap();
            for (i, (got, w)) in report.paths.iter().zip(&ls_want.paths).enumerate() {
                prop_assert_eq!(&got.endpoint, &w.endpoint,
                    "lockstep endpoint on {:?}, path {}", backend, i);
            }
        }
        // …and identical to the other schedulers when the front is one
        // path (the shared step size then is the per-path step size).
        for (i, w) in want.paths.iter().enumerate().take(2) {
            let single = req
                .clone()
                .with_starts(StartSelection::Indices(vec![i as u128]))
                .with_scheduler(SchedulerKind::Lockstep);
            let report = solver_for(Backend::GpuBatch { capacity: 4 }, 4)
                .solve(&single)
                .unwrap();
            prop_assert_eq!(&report.paths[0].endpoint, &w.endpoint,
                "single-path lockstep vs per-path, path {}", i);
            prop_assert_eq!(&report.paths[0].outcome, &w.outcome,
                "single-path lockstep vs per-path, path {}", i);
        }
    }
}

/// The ROADMAP's "cluster-aware `track_queue`" lever: `SlotPolicy::Auto`
/// sizes the front to `D × per-device capacity` read off `EngineCaps`,
/// and the front stays > 0.8 occupied at D ∈ {2, 4}.
#[test]
fn auto_slots_scale_with_device_count_and_stay_occupied() {
    let params = BenchmarkParams {
        n: 2,
        m: 2,
        k: 2,
        d: 2,
        seed: 5,
    };
    let sys = random_system::<f64>(&params);
    let start = StartSystem::uniform(2, 6); // 36 paths: a real queue depth
    let req = SolveRequest::new(sys)
        .with_start(start)
        .with_gamma_seed(11)
        .with_scheduler(SchedulerKind::Queue {
            slots: SlotPolicy::Auto,
        });
    let per_device = 2usize;
    let mut endpoints: Vec<Vec<PathEndpoint>> = Vec::new();
    for d in [2usize, 4] {
        let solver = solver_for(
            Backend::Cluster {
                devices: vec![DeviceSpec::tesla_c2050(); d],
                shard: ClusterPolicy::default().into(),
            },
            per_device,
        );
        let report = solver.solve(&req).unwrap();
        assert_eq!(report.caps.devices, d);
        assert_eq!(report.caps.per_device_capacity, per_device);
        assert_eq!(
            report.caps.auto_slots(),
            d * per_device,
            "auto front = D x per-device capacity"
        );
        assert_eq!(report.stats.slots, d * per_device, "D = {d}");
        assert!(
            report.occupancy() > 0.8,
            "D = {d}: occupancy {:.3} with {} slots over {} paths",
            report.occupancy(),
            report.stats.slots,
            report.paths.len()
        );
        assert_eq!(report.paths.len(), 36);
        endpoints.push(report.paths.iter().map(|p| p.endpoint.clone()).collect());
    }
    // Front size is a performance knob only: D = 2 and D = 4 agree.
    assert_eq!(endpoints[0], endpoints[1]);
}

/// The acceptance headline: a system whose encoding exceeds one
/// device's constant memory — every single-device backend rejects it at
/// build — **solves** through `Backend::Cluster { shard: Rows }` at
/// D ∈ {2, 4}, with endpoints bit-identical to the single-device
/// CPU-reference run.
#[test]
fn over_budget_system_solves_row_sharded_at_d2_and_d4() {
    // 2,048 monomials at k = 16: the paper's constant-memory wall
    // (65,536 bytes of supports against a 65,280-byte budget). The
    // multilinear d = 1 family keeps coefficient magnitudes tractable
    // for tracking while hitting the identical encoding size.
    let params = BenchmarkParams {
        n: 32,
        m: 64,
        k: 16,
        d: 1,
        seed: 3,
    };
    let sys = random_system::<f64>(&params);
    // One path with an eager step schedule and a corrector tolerance
    // matched to the system's conditioning: simulating the
    // 2,048-monomial kernels is the expensive part of the test, and one
    // tracked path is enough to pin the whole solve pipeline bitwise.
    let eager = TrackParams {
        initial_dt: 0.1,
        max_dt: 0.4,
        grow: 2.0,
        corrector: NewtonParams {
            residual_tol: 1e-4,
            step_tol: 1e-8,
            max_iters: 6,
            ..Default::default()
        },
        ..Default::default()
    };
    let req = SolveRequest::new(sys.clone())
        .with_starts(StartSelection::FirstN(1))
        .with_params(eager)
        .with_gamma_seed(7);

    // The wall: the single-device backends refuse the system…
    for backend in [Backend::Gpu, Backend::GpuBatch { capacity: 2 }] {
        assert!(
            matches!(
                solver_for(backend, 2).solve(&req),
                Err(SolveError::Build(_))
            ),
            "a 65,536-byte encoding must not fit one device"
        );
    }
    // …and so does a D = 1 "cluster" in row mode (one device, one arena).
    let one = Backend::Cluster {
        devices: vec![DeviceSpec::tesla_c2050()],
        shard: SystemShardPolicy::Contiguous.into(),
    };
    assert!(matches!(
        solver_for(one, 2).solve(&req),
        Err(SolveError::Build(_))
    ));

    // The reference: the CPU solves it (no constant memory involved).
    let want = solver_for(Backend::CpuReference, 2).solve(&req).unwrap();
    assert_eq!(want.paths.len(), 1);
    assert_eq!(want.successes(), 1, "the reference path must converge");

    for d in [2usize, 4] {
        let backend = Backend::Cluster {
            devices: vec![DeviceSpec::tesla_c2050(); d],
            shard: SystemShardPolicy::Contiguous.into(),
        };
        let report = solver_for(backend, 2)
            .solve(&req)
            .unwrap_or_else(|e| panic!("row-sharded solve must build at D = {d}: {e}"));
        assert_eq!(report.backend, "cluster-rows");
        assert_eq!(report.caps.devices, d);
        // The whole 65,536-byte encoding is resident — spread over D
        // arenas of 65,280 usable bytes each.
        assert_eq!(report.caps.constant_bytes, 65_536);
        for (i, (got, w)) in report.paths.iter().zip(&want.paths).enumerate() {
            assert_eq!(got.outcome, w.outcome, "outcome, D = {d}, path {i}");
            assert_eq!(got.endpoint, w.endpoint, "endpoint, D = {d}, path {i}");
            assert_eq!(got.t, w.t, "t, D = {d}, path {i}");
        }
        // The gather is charged: the engine's transfer time is visible.
        assert!(report.engine.transfer_seconds > 0.0);
        assert!(report.engine.wall_clock_seconds() > 0.0);
    }
}

/// Row-sharded caps-aware slot sizing: `SlotPolicy::Auto` must resolve
/// to the *per-device* capacity (not `D ×` it), because every device of
/// a row-sharded cluster absorbs the whole batch.
#[test]
fn auto_slots_stay_per_device_under_row_sharding() {
    let params = BenchmarkParams {
        n: 2,
        m: 2,
        k: 2,
        d: 2,
        seed: 5,
    };
    let sys = random_system::<f64>(&params);
    let req = SolveRequest::new(sys)
        .with_start(StartSystem::uniform(2, 6)) // 36 paths
        .with_gamma_seed(11)
        .with_scheduler(SchedulerKind::Queue {
            slots: SlotPolicy::Auto,
        });
    let per_device = 4usize;
    let mut endpoints: Vec<Vec<PathEndpoint>> = Vec::new();
    for d in [2usize, 4] {
        let backend = Backend::Cluster {
            devices: vec![DeviceSpec::tesla_c2050(); d],
            shard: SystemShardPolicy::Contiguous.into(),
        };
        let report = solver_for(backend, per_device).solve(&req).unwrap();
        assert_eq!(report.caps.devices, 2.min(d), "2 rows cap the fleet");
        assert_eq!(report.caps.capacity, per_device);
        assert_eq!(
            report.caps.auto_slots(),
            per_device,
            "auto front clamps to the row-sharded batch capacity"
        );
        assert_eq!(report.stats.slots, per_device);
        assert!(
            report.occupancy() > 0.8,
            "D = {d}: occupancy {:.3}",
            report.occupancy()
        );
        endpoints.push(report.paths.iter().map(|p| p.endpoint.clone()).collect());
    }
    assert_eq!(endpoints[0], endpoints[1]);
}

/// The report carries the telemetry the old drivers scattered:
/// occupancy, escalation counts, engine stats and caps — no consumer
/// needs to recompute them from internals.
#[test]
fn report_surfaces_scheduler_engine_and_escalation_telemetry() {
    let params = BenchmarkParams {
        n: 2,
        m: 2,
        k: 2,
        d: 2,
        seed: 7,
    };
    let sys = random_system::<f64>(&params);
    let brutal = TrackParams {
        corrector: NewtonParams {
            residual_tol: 1e-19, // unreachable in f64: every path escalates
            step_tol: 1e-21,
            max_iters: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    let req = SolveRequest::new(sys)
        .with_start(StartSystem::uniform(2, 2))
        .with_gamma_seed(33)
        .with_params(brutal)
        .with_precision(PrecisionPolicy::Escalating { dd_params: brutal });
    let report = solver_for(Backend::GpuBatch { capacity: 4 }, 4)
        .solve(&req)
        .unwrap();
    assert_eq!(report.backend, "gpu-batch");
    assert_eq!(report.scheduler, SchedulerKind::default());
    assert!(report.occupancy() > 0.0);
    assert_eq!(report.escalated(), 4);
    assert_eq!(report.escalation_rate(), 1.0);
    let esc = report.escalation.as_ref().unwrap();
    assert_eq!(esc.retried, 4);
    assert!(esc.stats.occupancy() > 0.0);
    // Both passes ran on modeled engines from the same spec.
    assert!(report.engine.evaluations > 0);
    assert!(esc.engine.evaluations > 0);
    assert!(report.paths_per_second() > 0.0);
    for p in &report.paths {
        assert_eq!(p.precision(), UsedPrecision::DoubleDouble);
    }
}
