//! The solver-API acceptance: one `SolveRequest`, every scheduler ×
//! backend combination, identical answers.
//!
//! * [`PerPath`](SchedulerKind::PerPath) and
//!   [`Queue`](SchedulerKind::Queue) (any slot policy) are bit-identical
//!   to each other — and across the CPU-reference, batched-GPU and
//!   cluster backends — for arbitrary requests.
//! * [`Lockstep`](SchedulerKind::Lockstep) shares one step size across
//!   its front, so its multi-path trajectories legitimately differ; its
//!   guarantee is bit-identity across *backends* for any request, and
//!   bit-identity to the other schedulers whenever the front is one
//!   path.
//! * `SlotPolicy::Auto` sizes the queue front to `D ×` per-device
//!   capacity through `EngineCaps` and keeps it > 0.8 occupied at
//!   D ∈ {2, 4}.

use polygpu::prelude::*;
use proptest::prelude::*;

fn backends(devices: usize, capacity: usize) -> Vec<Backend> {
    vec![
        Backend::CpuReference,
        Backend::GpuBatch { capacity },
        Backend::Cluster {
            devices: vec![DeviceSpec::tesla_c2050(); devices],
            policy: ClusterPolicy::default(),
        },
    ]
}

fn solver_for(backend: Backend, per_device_capacity: usize) -> Solver {
    Solver::from_builder(
        Engine::builder()
            .backend(backend)
            .per_device_capacity(per_device_capacity),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// One request, every scheduler, every backend: the per-path and
    /// queue schedulers agree bit for bit everywhere; lockstep agrees
    /// with itself across backends, and with everything else on
    /// single-path fronts.
    #[test]
    fn solve_endpoints_identical_across_schedulers_and_backends(
        seed in 0u64..1_000,
        gamma_seed in 1u64..1_000,
        devices in 2usize..4,
        d in 2u32..4,
    ) {
        let params = BenchmarkParams { n: 2, m: 2, k: 2, d: d as u16, seed };
        let sys = random_system::<f64>(&params);
        let start = StartSystem::uniform(2, d);
        let req = SolveRequest::new(sys)
            .with_start(start)
            .with_gamma_seed(gamma_seed);

        // Reference: per-path on the CPU reference.
        let want = solver_for(Backend::CpuReference, 4).solve(&req).unwrap();
        prop_assert_eq!(want.paths.len(), (d * d) as usize);

        let schedulers = [
            SchedulerKind::PerPath,
            SchedulerKind::Queue { slots: SlotPolicy::Auto },
            SchedulerKind::Queue { slots: SlotPolicy::Fixed(3) },
        ];
        for backend in backends(devices, 4) {
            for scheduler in schedulers {
                let report = solver_for(backend.clone(), 2)
                    .solve(&req.clone().with_scheduler(scheduler))
                    .unwrap();
                for (i, (got, w)) in report.paths.iter().zip(&want.paths).enumerate() {
                    prop_assert_eq!(&got.outcome, &w.outcome,
                        "outcome: {:?} on {:?}, path {}", scheduler, backend, i);
                    prop_assert_eq!(&got.endpoint, &w.endpoint,
                        "endpoint: {:?} on {:?}, path {}", scheduler, backend, i);
                    prop_assert_eq!(got.t, w.t,
                        "final t: {:?} on {:?}, path {}", scheduler, backend, i);
                }
            }
        }

        // Lockstep: bit-identical across backends…
        let ls_want = solver_for(Backend::CpuReference, 4)
            .solve(&req.clone().with_scheduler(SchedulerKind::Lockstep))
            .unwrap();
        for backend in backends(devices, 4) {
            let report = solver_for(backend.clone(), 2)
                .solve(&req.clone().with_scheduler(SchedulerKind::Lockstep))
                .unwrap();
            for (i, (got, w)) in report.paths.iter().zip(&ls_want.paths).enumerate() {
                prop_assert_eq!(&got.endpoint, &w.endpoint,
                    "lockstep endpoint on {:?}, path {}", backend, i);
            }
        }
        // …and identical to the other schedulers when the front is one
        // path (the shared step size then is the per-path step size).
        for (i, w) in want.paths.iter().enumerate().take(2) {
            let single = req
                .clone()
                .with_starts(StartSelection::Indices(vec![i as u128]))
                .with_scheduler(SchedulerKind::Lockstep);
            let report = solver_for(Backend::GpuBatch { capacity: 4 }, 4)
                .solve(&single)
                .unwrap();
            prop_assert_eq!(&report.paths[0].endpoint, &w.endpoint,
                "single-path lockstep vs per-path, path {}", i);
            prop_assert_eq!(&report.paths[0].outcome, &w.outcome,
                "single-path lockstep vs per-path, path {}", i);
        }
    }
}

/// The ROADMAP's "cluster-aware `track_queue`" lever: `SlotPolicy::Auto`
/// sizes the front to `D × per-device capacity` read off `EngineCaps`,
/// and the front stays > 0.8 occupied at D ∈ {2, 4}.
#[test]
fn auto_slots_scale_with_device_count_and_stay_occupied() {
    let params = BenchmarkParams {
        n: 2,
        m: 2,
        k: 2,
        d: 2,
        seed: 5,
    };
    let sys = random_system::<f64>(&params);
    let start = StartSystem::uniform(2, 6); // 36 paths: a real queue depth
    let req = SolveRequest::new(sys)
        .with_start(start)
        .with_gamma_seed(11)
        .with_scheduler(SchedulerKind::Queue {
            slots: SlotPolicy::Auto,
        });
    let per_device = 2usize;
    let mut endpoints: Vec<Vec<PathEndpoint>> = Vec::new();
    for d in [2usize, 4] {
        let solver = solver_for(
            Backend::Cluster {
                devices: vec![DeviceSpec::tesla_c2050(); d],
                policy: ClusterPolicy::default(),
            },
            per_device,
        );
        let report = solver.solve(&req).unwrap();
        assert_eq!(report.caps.devices, d);
        assert_eq!(report.caps.per_device_capacity, per_device);
        assert_eq!(
            report.caps.auto_slots(),
            d * per_device,
            "auto front = D x per-device capacity"
        );
        assert_eq!(report.stats.slots, d * per_device, "D = {d}");
        assert!(
            report.occupancy() > 0.8,
            "D = {d}: occupancy {:.3} with {} slots over {} paths",
            report.occupancy(),
            report.stats.slots,
            report.paths.len()
        );
        assert_eq!(report.paths.len(), 36);
        endpoints.push(report.paths.iter().map(|p| p.endpoint.clone()).collect());
    }
    // Front size is a performance knob only: D = 2 and D = 4 agree.
    assert_eq!(endpoints[0], endpoints[1]);
}

/// The report carries the telemetry the old drivers scattered:
/// occupancy, escalation counts, engine stats and caps — no consumer
/// needs to recompute them from internals.
#[test]
fn report_surfaces_scheduler_engine_and_escalation_telemetry() {
    let params = BenchmarkParams {
        n: 2,
        m: 2,
        k: 2,
        d: 2,
        seed: 7,
    };
    let sys = random_system::<f64>(&params);
    let brutal = TrackParams {
        corrector: NewtonParams {
            residual_tol: 1e-19, // unreachable in f64: every path escalates
            step_tol: 1e-21,
            max_iters: 8,
        },
        ..Default::default()
    };
    let req = SolveRequest::new(sys)
        .with_start(StartSystem::uniform(2, 2))
        .with_gamma_seed(33)
        .with_params(brutal)
        .with_precision(PrecisionPolicy::Escalating { dd_params: brutal });
    let report = solver_for(Backend::GpuBatch { capacity: 4 }, 4)
        .solve(&req)
        .unwrap();
    assert_eq!(report.backend, "gpu-batch");
    assert_eq!(report.scheduler, SchedulerKind::default());
    assert!(report.occupancy() > 0.0);
    assert_eq!(report.escalated(), 4);
    assert_eq!(report.escalation_rate(), 1.0);
    let esc = report.escalation.as_ref().unwrap();
    assert_eq!(esc.retried, 4);
    assert!(esc.stats.occupancy() > 0.0);
    // Both passes ran on modeled engines from the same spec.
    assert!(report.engine.evaluations > 0);
    assert!(esc.engine.evaluations > 0);
    assert!(report.paths_per_second() > 0.0);
    for p in &report.paths {
        assert_eq!(p.precision(), UsedPrecision::DoubleDouble);
    }
}
