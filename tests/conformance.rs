//! Backend conformance harness: every [`AnyEvaluator`] backend
//! reachable from the facade's `Engine::builder()` — `CpuReference`,
//! `Gpu`, `GpuBatch`, `Cluster { Points }` and `Cluster { Rows }` —
//! runs through **one** shared contract suite, in `f64` and in
//! double-double:
//!
//! * single ↔ batch bit-identity (`evaluate_batch(pts)[i]` equals
//!   `evaluate(&pts[i])` bit for bit, and `try_evaluate` agrees);
//! * cross-backend bit-identity against the CPU reference;
//! * `try_evaluate_batch` typed-error contracts (empty batch, capacity
//!   overflow, dimension mismatch) — rejected calls cost nothing and
//!   leave the engine usable;
//! * statistics monotonicity and `reset_engine_stats`;
//! * `caps()` consistency (`capacity == max_batch()`,
//!   `per_device_capacity`, `auto_slots`, device counts, constant
//!   bytes).
//!
//! A new backend added to the builder gets the whole contract for the
//! price of one entry in [`backend_cases`].

use polygpu::prelude::*;
use polygpu::qd::Dd;

/// The per-device point capacity every cluster case uses.
const PER_DEVICE: usize = 4;
/// The single-device batch engine's capacity.
const BATCH_CAP: usize = 8;
/// Devices in the cluster cases.
const DEVICES: usize = 3;
/// Points per conformance batch — within every backend's capacity
/// (the row-sharded cluster's is `PER_DEVICE`).
const POINTS: usize = 4;

/// Every backend the builder reaches, by name.
fn backend_cases() -> Vec<(&'static str, Backend)> {
    let fleet = vec![DeviceSpec::tesla_c2050(); DEVICES];
    vec![
        ("cpu-reference", Backend::CpuReference),
        ("gpu", Backend::Gpu),
        (
            "gpu-batch",
            Backend::GpuBatch {
                capacity: BATCH_CAP,
            },
        ),
        (
            "cluster",
            Backend::Cluster {
                devices: fleet.clone(),
                shard: ClusterPolicy::default().into(),
            },
        ),
        (
            "cluster-rows",
            Backend::Cluster {
                devices: fleet,
                shard: SystemShardPolicy::Contiguous.into(),
            },
        ),
    ]
}

fn build<R: Real>(
    backend: &Backend,
    sys: &polygpu::polysys::System<R>,
) -> Box<dyn AnyEvaluator<R>> {
    Engine::builder()
        .backend(backend.clone())
        .per_device_capacity(PER_DEVICE)
        .build(sys)
        .expect("conformance system fits every backend")
}

fn test_system<R: Real>() -> polygpu::polysys::System<R> {
    random_system::<R>(&BenchmarkParams {
        n: 8,
        m: 3,
        k: 2,
        d: 2,
        seed: 23,
    })
}

fn test_points<R: Real>(p: usize) -> Vec<Vec<Complex<R>>> {
    random_points::<f64>(8, p, 31)
        .into_iter()
        .map(|x| x.into_iter().map(|z| z.convert()).collect())
        .collect()
}

/// Contract 1: batched evaluation is bit-identical to the single-point
/// path of the same engine, through both the panicking and the typed
/// interfaces.
fn contract_single_batch_identity<R: Real>(name: &str, engine: &mut dyn AnyEvaluator<R>) {
    let points = test_points::<R>(POINTS);
    let batch = engine
        .try_evaluate_batch(&points)
        .unwrap_or_else(|e| panic!("{name}: conformance batch must pass: {e}"));
    assert_eq!(batch.len(), POINTS, "{name}");
    for (i, x) in points.iter().enumerate() {
        let single = engine.evaluate(x);
        assert_eq!(single.values, batch[i].values, "{name}, point {i}");
        assert_eq!(
            single.jacobian.as_slice(),
            batch[i].jacobian.as_slice(),
            "{name}, point {i}"
        );
        let typed = engine.try_evaluate(x).unwrap();
        assert_eq!(typed.values, batch[i].values, "{name}, try point {i}");
    }
}

/// Contract 2: contract violations return typed errors, cost nothing,
/// and leave the engine usable.
fn contract_typed_errors<R: Real>(name: &str, engine: &mut dyn AnyEvaluator<R>) {
    engine.reset_engine_stats();
    assert!(
        matches!(engine.try_evaluate_batch(&[]), Err(BatchError::Empty)),
        "{name}: empty batch"
    );
    let short = vec![vec![Complex::<R>::one(); 3]];
    assert!(
        matches!(
            engine.try_evaluate_batch(&short),
            Err(BatchError::DimensionMismatch {
                point: 0,
                got: 3,
                expected: 8
            })
        ),
        "{name}: dimension mismatch"
    );
    let caps = engine.caps();
    if caps.capacity < usize::MAX {
        let too_many = test_points::<R>(caps.capacity + 1);
        match engine.try_evaluate_batch(&too_many) {
            Err(BatchError::CapacityExceeded { points, capacity }) => {
                assert_eq!(points, caps.capacity + 1, "{name}");
                assert_eq!(capacity, caps.capacity, "{name}");
            }
            other => panic!("{name}: expected CapacityExceeded, got {other:?}"),
        }
    }
    assert_eq!(
        engine.engine_stats().evaluations,
        0,
        "{name}: rejected calls must cost nothing"
    );
    let ok = engine.try_evaluate_batch(&test_points::<R>(1)).unwrap();
    assert_eq!(ok.len(), 1, "{name}: engine usable after rejections");
}

/// Contract 3: statistics count evaluations and batches monotonically
/// and reset to zero.
fn contract_stats<R: Real>(name: &str, engine: &mut dyn AnyEvaluator<R>) {
    engine.reset_engine_stats();
    let points = test_points::<R>(POINTS);
    let _ = engine.try_evaluate_batch(&points).unwrap();
    let after_batch = engine.engine_stats();
    assert_eq!(after_batch.evaluations, POINTS as u64, "{name}");
    assert!(after_batch.batches >= 1, "{name}");
    let _ = engine.evaluate(&points[0]);
    let after_single = engine.engine_stats();
    assert_eq!(
        after_single.evaluations,
        POINTS as u64 + 1,
        "{name}: single-point evaluations accumulate"
    );
    assert!(
        after_single.batches >= after_batch.batches,
        "{name}: batches monotone"
    );
    assert!(
        after_single.wall_seconds >= after_batch.wall_seconds,
        "{name}: wall clock monotone"
    );
    engine.reset_engine_stats();
    let zeroed = engine.engine_stats();
    assert_eq!(zeroed.evaluations, 0, "{name}");
    assert_eq!(zeroed.batches, 0, "{name}");
    assert_eq!(zeroed.wall_seconds, 0.0, "{name}");
}

/// Contract 4: the capability report is consistent with the engine's
/// actual behavior and with the scheduler sizing rules.
fn contract_caps<R: Real>(name: &str, engine: &mut dyn AnyEvaluator<R>) {
    let caps = engine.caps();
    assert_eq!(caps.backend, name, "caps name the backend");
    assert_eq!(
        caps.capacity,
        engine.max_batch(),
        "{name}: caps.capacity is the batch contract"
    );
    assert!(
        caps.per_device_capacity <= caps.capacity,
        "{name}: one device cannot absorb more than the whole engine"
    );
    assert!(
        caps.auto_slots() <= caps.capacity,
        "{name}: the auto front must fit one batch"
    );
    assert!(
        caps.auto_slots() >= caps.per_device_capacity.min(caps.capacity),
        "{name}: the auto front fills at least one device"
    );
    match name {
        "cpu-reference" => {
            assert_eq!(caps.devices, 0, "{name}");
            assert!(!caps.batched, "{name}");
            assert_eq!(caps.constant_bytes, 0, "{name}");
        }
        "gpu" => {
            assert_eq!(caps.devices, 1, "{name}");
            assert!(!caps.batched, "{name}");
            assert!(caps.constant_bytes > 0, "{name}");
        }
        "gpu-batch" => {
            assert_eq!(caps.devices, 1, "{name}");
            assert_eq!(caps.capacity, BATCH_CAP, "{name}");
            assert!(caps.batched, "{name}");
        }
        "cluster" => {
            assert_eq!(caps.devices, DEVICES, "{name}");
            // Point sharding: capacity scales with the fleet.
            assert_eq!(caps.capacity, DEVICES * PER_DEVICE, "{name}");
            assert_eq!(caps.per_device_capacity, PER_DEVICE, "{name}");
            assert_eq!(caps.auto_slots(), DEVICES * PER_DEVICE, "{name}");
        }
        "cluster-rows" => {
            assert_eq!(caps.devices, DEVICES, "{name}");
            // Row sharding: every device sees every point, so the
            // capacity — and the auto slot front — stay per-device.
            assert_eq!(caps.capacity, PER_DEVICE, "{name}");
            assert_eq!(caps.per_device_capacity, PER_DEVICE, "{name}");
            assert_eq!(caps.auto_slots(), PER_DEVICE, "{name}");
        }
        other => panic!("unknown backend case {other}"),
    }
}

/// Run the whole contract suite over every backend in precision `R`,
/// checking cross-backend bit-identity along the way.
fn run_suite<R: Real>() {
    let sys = test_system::<R>();
    let points = test_points::<R>(POINTS);
    let mut reference: Option<Vec<SystemEval<R>>> = None;
    for (name, backend) in backend_cases() {
        let mut engine = build::<R>(&backend, &sys);
        let got = engine.try_evaluate_batch(&points).unwrap();
        match &reference {
            None => reference = Some(got),
            Some(want) => {
                for (i, (g, w)) in got.iter().zip(want).enumerate() {
                    assert_eq!(g.values, w.values, "{name} vs cpu, point {i}");
                    assert_eq!(
                        g.jacobian.as_slice(),
                        w.jacobian.as_slice(),
                        "{name} vs cpu, point {i}"
                    );
                }
            }
        }
        contract_single_batch_identity(name, engine.as_mut());
        contract_typed_errors(name, engine.as_mut());
        contract_stats(name, engine.as_mut());
        contract_caps(name, engine.as_mut());
    }
}

#[test]
fn all_backends_honor_the_contract_in_double() {
    run_suite::<f64>();
}

#[test]
fn all_backends_honor_the_contract_in_double_double() {
    run_suite::<Dd>();
}

/// The sparse conformance system: ragged supports — every monomial its
/// own variable count, constants included — which the paper's Direct
/// layout cannot express at any degree bound.
fn sparse_test_system<R: Real>() -> polygpu::polysys::System<R> {
    random_sparse_system::<R>(&SparseBenchmarkParams {
        n: 8,
        m_min: 2,
        m_max: 5,
        k_min: 0,
        k_max: 4,
        d: 3,
        seed: 29,
    })
}

/// Sparse contract: the ragged system rejects **typed** under the
/// Direct encoding on every device backend, builds everywhere under
/// [`EncodingKind::Packed`], and then honors the same single↔batch,
/// cross-backend bit-identity, typed-error, stats and caps contracts
/// as the uniform suite — in the same precision `R`.
fn run_sparse_suite<R: Real>() {
    let sys = sparse_test_system::<R>();
    let points = test_points::<R>(POINTS);
    let mut reference: Option<Vec<SystemEval<R>>> = None;
    for (name, backend) in backend_cases() {
        let direct = Engine::builder()
            .backend(backend.clone())
            .per_device_capacity(PER_DEVICE)
            .build(&sys);
        if name == "cpu-reference" {
            assert!(direct.is_ok(), "{name}: the reference runs any shape");
        } else {
            let err = match direct {
                Err(e) => e,
                Ok(_) => panic!("{name}: ragged supports must not encode Direct"),
            };
            assert!(err.to_string().contains("expected k"), "{name}: {err}");
        }
        let mut engine = Engine::builder()
            .backend(backend.clone())
            .per_device_capacity(PER_DEVICE)
            .encoding(EncodingKind::Packed)
            .build(&sys)
            .unwrap_or_else(|e| panic!("{name}: packed build must pass: {e}"));
        let got = engine.try_evaluate_batch(&points).unwrap();
        match &reference {
            None => reference = Some(got),
            Some(want) => {
                for (i, (g, w)) in got.iter().zip(want).enumerate() {
                    assert_eq!(g.values, w.values, "sparse {name} vs cpu, point {i}");
                    assert_eq!(
                        g.jacobian.as_slice(),
                        w.jacobian.as_slice(),
                        "sparse {name} vs cpu, point {i}"
                    );
                }
            }
        }
        contract_single_batch_identity(name, engine.as_mut());
        contract_typed_errors(name, engine.as_mut());
        contract_stats(name, engine.as_mut());
        contract_caps(name, engine.as_mut());
    }
}

#[test]
fn sparse_packed_backends_honor_the_contract_in_double() {
    run_sparse_suite::<f64>();
}

#[test]
fn sparse_packed_backends_honor_the_contract_in_double_double() {
    run_sparse_suite::<Dd>();
}

/// Chaos contract over the sparse path: fault injection on packed
/// engines either recovers bit-identically to the fault-free run or
/// surfaces typed — same rules as the uniform sweep.
#[test]
fn sparse_packed_backends_survive_fault_injection() {
    let sys = sparse_test_system::<f64>();
    let points = test_points::<f64>(POINTS);
    let clean = Engine::builder()
        .backend(Backend::CpuReference)
        .build(&sys)
        .unwrap()
        .try_evaluate_batch(&points)
        .unwrap();

    let mut injected_total = 0u64;
    for (name, backend) in backend_cases() {
        for seed in 0..6u64 {
            let mut engine = Engine::builder()
                .backend(backend.clone())
                .per_device_capacity(PER_DEVICE)
                .encoding(EncodingKind::Packed)
                .fault_plan(FaultPlan::new(seed, 30_000))
                .recovery(RecoveryPolicy::default())
                .build(&sys)
                .expect("arming fault injection must not break the packed build");
            let mut recovered = None;
            for _ in 0..4 {
                match engine.try_evaluate_batch(&points) {
                    Ok(evals) => {
                        recovered = Some(evals);
                        break;
                    }
                    Err(BatchError::Fault(e)) => {
                        if e.kind == FaultKind::DeviceLost {
                            break;
                        }
                    }
                    Err(BatchError::DegradedFleet { .. }) => break,
                    Err(e) => panic!("sparse {name} seed {seed}: non-fault error {e}"),
                }
            }
            if let Some(evals) = recovered {
                for (i, (g, w)) in evals.iter().zip(&clean).enumerate() {
                    assert_eq!(
                        g.values, w.values,
                        "sparse {name} seed {seed} point {i}: recovery must be bit-identical"
                    );
                    assert_eq!(
                        g.jacobian.as_slice(),
                        w.jacobian.as_slice(),
                        "sparse {name} seed {seed} point {i}: recovery must be bit-identical"
                    );
                }
            }
            injected_total += engine.engine_stats().fault.faults;
        }
    }
    assert!(
        injected_total > 0,
        "the sparse chaos sweep never injected a fault — the contract went untested"
    );
}

/// Chaos contract: with a seeded fault plan armed, every backend
/// either recovers (internally for cluster fleets, via caller-level
/// round retries for single devices) — in which case its results are
/// **bit-identical** to the fault-free run — or surfaces a typed
/// `Fault`/`DegradedFleet` error. No backend panics, and none returns
/// silently wrong values. The sweep must observe real injections, or
/// the contract went untested.
#[test]
fn all_backends_survive_fault_injection() {
    let sys = test_system::<f64>();
    let points = test_points::<f64>(POINTS);
    let clean = build::<f64>(&Backend::CpuReference, &sys)
        .try_evaluate_batch(&points)
        .unwrap();

    let mut injected_total = 0u64;
    for (name, backend) in backend_cases() {
        for seed in 0..6u64 {
            let mut engine = Engine::builder()
                .backend(backend.clone())
                .per_device_capacity(PER_DEVICE)
                .fault_plan(FaultPlan::new(seed, 30_000))
                .recovery(RecoveryPolicy::default())
                .build(&sys)
                .expect("arming fault injection must not break provisioning");
            // Caller-level round retry, exactly what the schedulers do:
            // a faulted batch is re-issued; sticky device loss and
            // degraded fleets end the attempt with their typed error.
            let mut recovered = None;
            for _ in 0..4 {
                match engine.try_evaluate_batch(&points) {
                    Ok(evals) => {
                        recovered = Some(evals);
                        break;
                    }
                    Err(BatchError::Fault(e)) => {
                        if e.kind == FaultKind::DeviceLost {
                            break;
                        }
                    }
                    Err(BatchError::DegradedFleet { .. }) => break,
                    Err(e) => panic!("{name} seed {seed}: non-fault error {e}"),
                }
            }
            if let Some(evals) = recovered {
                for (i, (g, w)) in evals.iter().zip(&clean).enumerate() {
                    assert_eq!(
                        g.values, w.values,
                        "{name} seed {seed} point {i}: recovery must be bit-identical"
                    );
                    assert_eq!(
                        g.jacobian.as_slice(),
                        w.jacobian.as_slice(),
                        "{name} seed {seed} point {i}: recovery must be bit-identical"
                    );
                }
            }
            injected_total += engine.engine_stats().fault.faults;
        }
    }
    assert!(
        injected_total > 0,
        "the chaos sweep never injected a fault — the contract went untested"
    );
}

/// Tracing contract: installing a tracer — no-op or collecting — on
/// any backend changes *nothing* about the computation: values,
/// Jacobians, and every modeled stat stay bit-identical to the
/// untraced engine. Observation is free by construction, because spans
/// only read the modeled clocks the stats already advance.
#[test]
fn tracing_never_perturbs_any_backend() {
    use std::sync::Arc;

    let sys = test_system::<f64>();
    let points = test_points::<f64>(POINTS);
    for (name, backend) in backend_cases() {
        let mut plain = build::<f64>(&backend, &sys);
        let want = plain.try_evaluate_batch(&points).unwrap();
        let want_stats = plain.engine_stats();

        let collector = Arc::new(CollectingTracer::new());
        let tracers: [(&str, Arc<dyn Tracer>); 2] = [
            ("noop", Arc::new(NoopTracer)),
            ("collecting", collector.clone()),
        ];
        for (mode, tracer) in tracers {
            let mut traced = Engine::builder()
                .backend(backend.clone())
                .per_device_capacity(PER_DEVICE)
                .tracer(tracer)
                .build(&sys)
                .expect("tracing must not break provisioning");
            let got = traced.try_evaluate_batch(&points).unwrap();
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.values, w.values, "{name}/{mode}, point {i}");
                assert_eq!(
                    g.jacobian.as_slice(),
                    w.jacobian.as_slice(),
                    "{name}/{mode}, point {i}"
                );
            }
            let stats = traced.engine_stats();
            assert_eq!(stats.evaluations, want_stats.evaluations, "{name}/{mode}");
            assert_eq!(stats.batches, want_stats.batches, "{name}/{mode}");
            assert_eq!(
                stats.wall_seconds, want_stats.wall_seconds,
                "{name}/{mode}: the modeled wall clock must not move"
            );
            assert_eq!(
                stats.kernel_seconds, want_stats.kernel_seconds,
                "{name}/{mode}"
            );
        }
        // The device-modeled backends actually narrate their work; the
        // CPU reference has no modeled timeline and stays silent.
        if name == "cpu-reference" {
            assert!(collector.is_empty(), "{name}: nothing to trace");
        } else {
            assert!(!collector.is_empty(), "{name}: spans must be recorded");
        }
    }
}

/// The host corrector loop — `drive_correct` over
/// `try_evaluate_batch`, exactly the `AnyEvaluator` trait default —
/// replicated here so fused overrides can be compared against it on
/// the *same* backend.
struct HostLoop<'a, R: Real>(&'a mut dyn AnyEvaluator<R>);

impl<R: Real> CorrectOps<R> for HostLoop<'_, R> {
    fn eval(
        &mut self,
        points: &[Vec<Complex<R>>],
        _indices: &[usize],
    ) -> Result<Vec<SystemEval<R>>, BatchError> {
        self.0.try_evaluate_batch(points)
    }
}

fn correct_params() -> CorrectParams {
    CorrectParams {
        max_iters: 6,
        ..Default::default()
    }
}

/// Corrector contract: `try_correct_batch` on every backend — fused
/// device-resident overrides and host defaults alike — produces
/// endpoints, statuses, and full residual histories **bit-identical**
/// to the CPU reference's host loop, in precision `R`.
fn run_correct_suite<R: Real>() {
    let sys = test_system::<R>();
    let points = test_points::<R>(POINTS);
    let params = correct_params();
    let mut want_pts = points.clone();
    let want_st = build::<R>(&Backend::CpuReference, &sys)
        .try_correct_batch(&mut want_pts, &mut IdentityCombine, &params)
        .unwrap();
    for (name, backend) in backend_cases() {
        let mut engine = build::<R>(&backend, &sys);
        let mut got_pts = points.clone();
        let got_st = engine
            .try_correct_batch(&mut got_pts, &mut IdentityCombine, &params)
            .unwrap();
        for i in 0..POINTS {
            assert_eq!(
                got_pts[i], want_pts[i],
                "{name} point {i}: corrected endpoint must be bit-identical to the host loop"
            );
            assert_eq!(
                got_st[i], want_st[i],
                "{name} point {i}: status and residual history must match"
            );
        }
        // Only the fused overrides charge the corrector counters; the
        // host-default backends pay through their evaluate round trips.
        if matches!(name, "gpu-batch" | "cluster") {
            let stats = engine.engine_stats();
            assert_eq!(
                stats.corrections, POINTS as u64,
                "{name}: corrections counted"
            );
            assert!(stats.corrector_iterations > 0, "{name}: iterations counted");
        }
    }
}

#[test]
fn all_backends_correct_bit_identically_in_double() {
    run_correct_suite::<f64>();
}

#[test]
fn all_backends_correct_bit_identically_in_double_double() {
    run_correct_suite::<Dd>();
}

/// Transfer contract: on the batched device backends the fused
/// corrector's device→host traffic is strictly below the host loop's
/// (which downloads every value and Jacobian every iteration) — the
/// per-iteration residual download shrinks to the `O(P)` flag vector —
/// while the endpoints stay bit-identical.
#[test]
fn fused_corrector_downloads_less_than_the_host_loop() {
    let sys = test_system::<f64>();
    let points = test_points::<f64>(POINTS);
    let params = correct_params();
    for (name, backend) in backend_cases() {
        if !matches!(name, "gpu-batch" | "cluster") {
            continue; // no fused override: the host loop *is* the path
        }
        let mut host = build::<f64>(&backend, &sys);
        host.reset_engine_stats();
        let mut host_pts = points.clone();
        let host_st = drive_correct(
            &mut HostLoop(host.as_mut()),
            &mut IdentityCombine,
            &mut host_pts,
            &params,
        )
        .unwrap();
        let host_stats = host.engine_stats();

        let mut fused = build::<f64>(&backend, &sys);
        fused.reset_engine_stats();
        let mut fused_pts = points.clone();
        let fused_st = fused
            .try_correct_batch(&mut fused_pts, &mut IdentityCombine, &params)
            .unwrap();
        let fused_stats = fused.engine_stats();

        assert_eq!(fused_pts, host_pts, "{name}: endpoints bit-identical");
        assert_eq!(fused_st, host_st, "{name}: statuses bit-identical");
        assert!(
            fused_stats.d2h_bytes < host_stats.d2h_bytes,
            "{name}: fused D2H {} must undercut the host loop's {}",
            fused_stats.d2h_bytes,
            host_stats.d2h_bytes
        );
        assert!(
            fused_stats.factor_seconds > 0.0 && fused_stats.backsub_seconds > 0.0,
            "{name}: on-device factorization must be charged"
        );
        assert_eq!(
            host_stats.factor_seconds, 0.0,
            "{name}: the host loop factors on the host"
        );
    }
}

/// Chaos contract for the fused corrector: with a seeded fault plan
/// armed, every backend's `try_correct_batch` either recovers — with
/// endpoints and statuses **bit-identical** to the fault-free run — or
/// surfaces a typed `Fault`/`DegradedFleet` error. Each retry starts
/// from a fresh copy of the inputs, exactly as the trait documents.
#[test]
fn fused_corrector_survives_fault_injection() {
    let sys = test_system::<f64>();
    let points = test_points::<f64>(POINTS);
    let params = correct_params();
    let mut clean_pts = points.clone();
    let clean_st = build::<f64>(&Backend::CpuReference, &sys)
        .try_correct_batch(&mut clean_pts, &mut IdentityCombine, &params)
        .unwrap();

    let mut injected_total = 0u64;
    for (name, backend) in backend_cases() {
        for seed in 0..6u64 {
            let mut engine = Engine::builder()
                .backend(backend.clone())
                .per_device_capacity(PER_DEVICE)
                .fault_plan(FaultPlan::new(seed, 30_000))
                .recovery(RecoveryPolicy::default())
                .build(&sys)
                .expect("arming fault injection must not break provisioning");
            let mut recovered = None;
            for _ in 0..4 {
                let mut pts = points.clone();
                match engine.try_correct_batch(&mut pts, &mut IdentityCombine, &params) {
                    Ok(st) => {
                        recovered = Some((pts, st));
                        break;
                    }
                    Err(BatchError::Fault(e)) => {
                        if e.kind == FaultKind::DeviceLost {
                            break;
                        }
                    }
                    Err(BatchError::DegradedFleet { .. }) => break,
                    Err(e) => panic!("{name} seed {seed}: non-fault error {e}"),
                }
            }
            if let Some((pts, st)) = recovered {
                for i in 0..POINTS {
                    assert_eq!(
                        pts[i], clean_pts[i],
                        "{name} seed {seed} point {i}: recovery must be bit-identical"
                    );
                    assert_eq!(
                        st[i], clean_st[i],
                        "{name} seed {seed} point {i}: statuses must survive recovery"
                    );
                }
            }
            injected_total += engine.engine_stats().fault.faults;
        }
    }
    assert!(
        injected_total > 0,
        "the corrector chaos sweep never injected a fault — the contract went untested"
    );
}

/// Tracing contract for the fused corrector: a no-op or collecting
/// tracer changes nothing — endpoints, statuses, and every modeled
/// stat stay bit-identical to the untraced engine.
#[test]
fn tracing_never_perturbs_the_fused_corrector() {
    use std::sync::Arc;

    let sys = test_system::<f64>();
    let points = test_points::<f64>(POINTS);
    let params = correct_params();
    for (name, backend) in backend_cases() {
        let mut plain = build::<f64>(&backend, &sys);
        let mut want_pts = points.clone();
        let want_st = plain
            .try_correct_batch(&mut want_pts, &mut IdentityCombine, &params)
            .unwrap();
        let want_stats = plain.engine_stats();

        let tracers: [(&str, Arc<dyn Tracer>); 2] = [
            ("noop", Arc::new(NoopTracer)),
            ("collecting", Arc::new(CollectingTracer::new())),
        ];
        for (mode, tracer) in tracers {
            let mut traced = Engine::builder()
                .backend(backend.clone())
                .per_device_capacity(PER_DEVICE)
                .tracer(tracer)
                .build(&sys)
                .expect("tracing must not break provisioning");
            let mut got_pts = points.clone();
            let got_st = traced
                .try_correct_batch(&mut got_pts, &mut IdentityCombine, &params)
                .unwrap();
            assert_eq!(got_pts, want_pts, "{name}/{mode}: endpoints");
            assert_eq!(got_st, want_st, "{name}/{mode}: statuses");
            let stats = traced.engine_stats();
            assert_eq!(
                stats.wall_seconds, want_stats.wall_seconds,
                "{name}/{mode}: the modeled wall clock must not move"
            );
            assert_eq!(stats.d2h_bytes, want_stats.d2h_bytes, "{name}/{mode}");
            assert_eq!(
                stats.corrector_iterations, want_stats.corrector_iterations,
                "{name}/{mode}"
            );
        }
    }
}

/// The device-modeled backends report modeled cost; the CPU reference
/// reports zeroes for the device terms — both through the same trait.
#[test]
fn modeled_cost_reporting_is_uniform() {
    let sys = test_system::<f64>();
    let points = test_points::<f64>(POINTS);
    for (name, backend) in backend_cases() {
        let mut engine = build::<f64>(&backend, &sys);
        engine.reset_engine_stats();
        let _ = engine.try_evaluate_batch(&points).unwrap();
        let stats = engine.engine_stats();
        if name == "cpu-reference" {
            assert_eq!(stats.kernel_seconds, 0.0, "{name}");
            assert_eq!(stats.wall_clock_seconds(), 0.0, "{name}");
        } else {
            assert!(stats.kernel_seconds > 0.0, "{name}");
            assert!(stats.wall_clock_seconds() > 0.0, "{name}");
            assert!(stats.throughput_evals_per_sec() > 0.0, "{name}");
        }
    }
}
