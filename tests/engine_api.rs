//! Facade-level integration of the unified engine API: the `polygpu`
//! crate's `Engine::builder()` reaches every backend (including the
//! cluster, wired to `polygpu_cluster::Sharded`), with bit-identical
//! results and a working residency session.

use polygpu::prelude::*;

#[test]
fn facade_builder_reaches_all_four_backends_bit_identically() {
    let params = BenchmarkParams {
        n: 8,
        m: 4,
        k: 3,
        d: 2,
        seed: 5,
    };
    let system = random_system::<f64>(&params);
    let points = random_points::<f64>(8, 6, 11);
    let backends = [
        Backend::CpuReference,
        Backend::Gpu,
        Backend::GpuBatch { capacity: 6 },
        Backend::Cluster {
            devices: vec![DeviceSpec::tesla_c2050(); 3],
            shard: ClusterPolicy::default().into(),
        },
    ];
    let mut want: Option<Vec<SystemEval<f64>>> = None;
    for backend in backends {
        let mut engine = Engine::builder()
            .backend(backend)
            .per_device_capacity(2)
            .build(&system)
            .unwrap();
        let got = engine.try_evaluate_batch(&points).unwrap();
        let name = engine.caps().backend;
        match &want {
            None => want = Some(got),
            Some(w) => {
                for (i, (g, x)) in got.iter().zip(w).enumerate() {
                    assert_eq!(g.values, x.values, "{name}, point {i}");
                    assert_eq!(
                        g.jacobian.as_slice(),
                        x.jacobian.as_slice(),
                        "{name}, point {i}"
                    );
                }
            }
        }
    }
}

#[test]
fn facade_builder_validates_and_reports_errors() {
    let system = random_system::<f64>(&BenchmarkParams {
        n: 4,
        m: 3,
        k: 2,
        d: 2,
        seed: 1,
    });
    let err = match Engine::builder()
        .backend(Backend::Cluster {
            devices: vec![],
            shard: ClusterPolicy::RoundRobin.into(),
        })
        .build(&system)
    {
        Ok(_) => panic!("empty device list must not build"),
        Err(e) => e,
    };
    assert!(matches!(err, BuildError::NoDevices));
    // Errors are std::error::Error with Display.
    let boxed: Box<dyn std::error::Error> = Box::new(err);
    assert!(boxed.to_string().contains("at least one device"));
}

#[test]
fn facade_session_amortizes_against_reencoding() {
    let builder = Engine::builder().backend(Backend::GpuBatch { capacity: 4 });
    let mut session = builder.session::<f64>().unwrap();
    let sys_a = random_system::<f64>(&BenchmarkParams {
        n: 16,
        m: 8,
        k: 5,
        d: 2,
        seed: 2,
    });
    let sys_b = random_system::<f64>(&BenchmarkParams {
        n: 16,
        m: 12,
        k: 5,
        d: 2,
        seed: 3,
    });
    let a = session.load("g", &sys_a).unwrap();
    let b = session.load("f", &sys_b).unwrap();
    let points = random_points::<f64>(16, 4, 9);
    for _ in 0..5 {
        for id in [a, b] {
            let _ = session.activate(id).try_evaluate_batch(&points).unwrap();
        }
    }
    let am = session.amortization();
    assert_eq!(am.stages, 10);
    assert!(
        am.steady_state_ratio >= 5.0,
        "resident stages must be >= 5x cheaper than re-encoding, got {:.2}x",
        am.steady_state_ratio
    );
    assert!(session.constant_bytes_used() <= session.constant_budget());
}
