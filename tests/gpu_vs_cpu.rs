//! End-to-end equivalence: the simulated-GPU pipeline against both CPU
//! evaluators, across shapes, encodings and precisions.

use polygpu::prelude::*;

fn shapes() -> Vec<BenchmarkParams> {
    vec![
        BenchmarkParams {
            n: 4,
            m: 2,
            k: 2,
            d: 1,
            seed: 1,
        },
        BenchmarkParams {
            n: 8,
            m: 3,
            k: 3,
            d: 3,
            seed: 2,
        },
        BenchmarkParams {
            n: 16,
            m: 5,
            k: 8,
            d: 5,
            seed: 3,
        },
        BenchmarkParams {
            n: 32,
            m: 22,
            k: 9,
            d: 2,
            seed: 4,
        }, // Table 1
        BenchmarkParams {
            n: 32,
            m: 22,
            k: 16,
            d: 10,
            seed: 5,
        }, // Table 2
        BenchmarkParams {
            n: 40,
            m: 40,
            k: 20,
            d: 5,
            seed: 6,
        }, // paper's dim-40 sizing
        BenchmarkParams {
            n: 7,
            m: 3,
            k: 7,
            d: 2,
            seed: 7,
        }, // k == n
        BenchmarkParams {
            n: 33,
            m: 5,
            k: 4,
            d: 3,
            seed: 8,
        }, // n not multiple of warp
    ]
}

#[test]
fn gpu_bitwise_equals_cpu_ad_across_shapes() {
    for p in shapes() {
        let system = random_system::<f64>(&p);
        let mut gpu = GpuEvaluator::new(&system, GpuOptions::default())
            .unwrap_or_else(|e| panic!("setup failed for {p:?}: {e}"));
        let mut cpu = AdEvaluator::new(system).unwrap();
        for round in 0..3 {
            let x = random_point::<f64>(p.n, p.seed * 100 + round);
            let a = gpu.evaluate(&x);
            let b = cpu.evaluate(&x);
            assert_eq!(a.values, b.values, "{p:?} round {round}");
            assert_eq!(
                a.jacobian.as_slice(),
                b.jacobian.as_slice(),
                "{p:?} round {round}"
            );
        }
        if p.n <= 32 {
            // The paper's divergence-freedom claim is for its n = B = 32
            // setting. For n > B the variable-staging loops have ragged
            // trip counts across a warp (benign loop-exit divergence the
            // simulator rightly reports); the arithmetic phases remain
            // uniform either way, as the bitwise equality above shows.
            assert_eq!(
                gpu.stats().counters.divergent_segments,
                0,
                "paper kernels must be divergence-free for {p:?}"
            );
        }
    }
}

#[test]
fn gpu_matches_naive_oracle_within_rounding() {
    for p in shapes() {
        let system = random_system::<f64>(&p);
        let mut gpu = GpuEvaluator::new(&system, GpuOptions::default()).unwrap();
        let mut oracle = NaiveEvaluator::new(system);
        let x = random_point::<f64>(p.n, 9_000 + p.seed);
        let a = gpu.evaluate(&x);
        let b = oracle.evaluate(&x);
        let tol = 1e-11 * (p.m as f64) * (p.k as f64 + 1.0);
        assert!(
            a.max_difference(&b).to_f64() < tol,
            "{p:?}: differ by {:e}",
            a.max_difference(&b)
        );
    }
}

#[test]
fn compact_encoding_bitwise_equals_direct() {
    let p = BenchmarkParams {
        n: 32,
        m: 8,
        k: 9,
        d: 10,
        seed: 42,
    };
    let system = random_system::<f64>(&p);
    let mut direct = GpuEvaluator::new(&system, GpuOptions::default()).unwrap();
    let mut compact = GpuEvaluator::new(
        &system,
        GpuOptions {
            encoding: EncodingKind::Compact,
            ..Default::default()
        },
    )
    .unwrap();
    for round in 0..3 {
        let x = random_point::<f64>(32, round);
        let a = direct.evaluate(&x);
        let b = compact.evaluate(&x);
        assert_eq!(a.values, b.values);
        assert_eq!(a.jacobian.as_slice(), b.jacobian.as_slice());
    }
}

#[test]
fn double_double_gpu_pipeline_equals_cpu_ad() {
    let p = BenchmarkParams {
        n: 16,
        m: 4,
        k: 5,
        d: 4,
        seed: 77,
    };
    let system = random_system::<f64>(&p).convert::<Dd>();
    let mut gpu = GpuEvaluator::new(&system, GpuOptions::default()).unwrap();
    let mut cpu = AdEvaluator::new(system).unwrap();
    let x: Vec<CDd> = random_point::<f64>(16, 5)
        .into_iter()
        .map(|z| z.convert())
        .collect();
    let a = gpu.evaluate(&x);
    let b = cpu.evaluate(&x);
    assert_eq!(a.values, b.values);
    assert_eq!(a.jacobian.as_slice(), b.jacobian.as_slice());
}

#[test]
fn dd_evaluation_beats_f64_accuracy_against_qd_truth() {
    // Evaluate one system in f64, Dd and Qd; use Qd as ground truth and
    // confirm the precision ladder (values only — magnitudes are O(m)).
    let p = BenchmarkParams {
        n: 8,
        m: 6,
        k: 4,
        d: 4,
        seed: 13,
    };
    let sys64 = random_system::<f64>(&p);
    let x64 = random_point::<f64>(8, 21);

    let mut e64 = AdEvaluator::new(sys64.clone()).unwrap();
    let r64 = e64.evaluate(&x64);

    let mut edd = AdEvaluator::new(sys64.convert::<Dd>()).unwrap();
    let xdd: Vec<CDd> = x64.iter().map(|z| z.convert()).collect();
    let rdd = edd.evaluate(&xdd);

    let mut eqd = AdEvaluator::new(sys64.convert::<Qd>()).unwrap();
    let xqd: Vec<CQd> = x64.iter().map(|z| z.convert()).collect();
    let rqd = eqd.evaluate(&xqd);

    let mut err64 = 0.0f64;
    let mut err_dd = 0.0f64;
    for i in 0..8 {
        let truth = rqd.values[i];
        let t64 = Complex::<f64>::new(truth.re.to_f64(), truth.im.to_f64());
        err64 = err64.max((r64.values[i] - t64).abs());
        let d = rdd.values[i];
        let diff_re = (d.re.to_f64() - truth.re.to_f64()).abs();
        // compare in dd space for the dd error
        let ddiff = CQd::new(Qd::from_dd(d.re) - truth.re, Qd::from_dd(d.im) - truth.im);
        err_dd = err_dd.max(ddiff.abs().to_f64());
        let _ = diff_re;
    }
    assert!(
        err_dd < err64 * 1e-10 + 1e-25,
        "dd {err_dd:e} vs f64 {err64:e}"
    );
}
