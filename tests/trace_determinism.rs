//! Property-based trace determinism: for arbitrary requests — any
//! scheduler, any backend, chaos included — running the same
//! `SolveRequest` twice with a fresh [`CollectingTracer`] each time
//! yields **byte-identical** exported Chrome traces, because spans are
//! timestamped by the simulated clock, never the host's. And tracing
//! is free: a [`NoopTracer`] leaves endpoints, modeled timings, and
//! the telemetry snapshot bit-identical to the untraced solve.

use polygpu::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn backend(ix: usize) -> Backend {
    match ix {
        0 => Backend::GpuBatch { capacity: 4 },
        1 => Backend::Cluster {
            devices: vec![DeviceSpec::tesla_c2050(); 2],
            shard: ClusterPolicy::default().into(),
        },
        _ => Backend::Cluster {
            devices: vec![DeviceSpec::tesla_c2050(); 2],
            shard: SystemShardPolicy::Contiguous.into(),
        },
    }
}

fn solver(backend_ix: usize, chaos_seed: Option<u64>) -> Solver {
    let mut b = Engine::builder()
        .backend(backend(backend_ix))
        .per_device_capacity(2);
    if let Some(seed) = chaos_seed {
        b = b.fault_plan(FaultPlan::new(seed, 300));
    }
    Solver::from_builder(b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn traces_replay_byte_for_byte_and_noop_tracing_is_free(
        seed in 0u64..1_000,
        gamma_seed in 1u64..1_000,
        sched_ix in 0usize..3,
        backend_ix in 0usize..3,
        chaos_seed in prop_oneof![Just(None::<u64>), (0u64..4).prop_map(Some)],
    ) {
        let sys = random_system::<f64>(&BenchmarkParams { n: 2, m: 2, k: 2, d: 2, seed });
        let scheduler = [
            SchedulerKind::PerPath,
            SchedulerKind::Lockstep,
            SchedulerKind::Queue { slots: SlotPolicy::Auto },
        ][sched_ix];
        let req = SolveRequest::new(sys)
            .with_start(StartSystem::uniform(2, 2))
            .with_gamma_seed(gamma_seed)
            .with_scheduler(scheduler);

        // Two traced runs: the exported trace must replay byte for
        // byte — a surfaced chaos fault is a legal outcome, but it
        // must surface identically, with an identical partial trace.
        let run = || {
            let tracer = Arc::new(CollectingTracer::new());
            let res = solver(backend_ix, chaos_seed)
                .solve(&req.clone().with_tracer(tracer.clone()));
            (res, chrome_trace_json(&tracer.spans()))
        };
        let (res1, json1) = run();
        let (res2, json2) = run();
        prop_assert_eq!(&json1, &json2, "same seed must replay the same trace");
        match (&res1, &res2) {
            (Ok(a), Ok(b)) => {
                for (i, (x, y)) in a.paths.iter().zip(&b.paths).enumerate() {
                    prop_assert_eq!(&x.endpoint, &y.endpoint, "rerun endpoint, path {}", i);
                    prop_assert_eq!(&x.outcome, &y.outcome, "rerun outcome, path {}", i);
                }
                prop_assert_eq!(&a.telemetry, &b.telemetry);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            _ => prop_assert!(false, "reruns must share their outcome"),
        }
        if res1.is_ok() {
            prop_assert!(!json1.is_empty());
        }

        // No-op tracer bit-identity: observation must change nothing.
        let plain = solver(backend_ix, chaos_seed).solve(&req);
        let noop = solver(backend_ix, chaos_seed)
            .solve(&req.clone().with_tracer(Arc::new(NoopTracer)));
        match (plain, noop) {
            (Ok(a), Ok(b)) => {
                for (i, (x, y)) in a.paths.iter().zip(&b.paths).enumerate() {
                    prop_assert_eq!(&x.endpoint, &y.endpoint, "noop endpoint, path {}", i);
                    prop_assert_eq!(&x.outcome, &y.outcome, "noop outcome, path {}", i);
                }
                prop_assert_eq!(a.modeled_wall_seconds(), b.modeled_wall_seconds());
                prop_assert_eq!(a.engine.wall_seconds, b.engine.wall_seconds);
                prop_assert_eq!(&a.telemetry, &b.telemetry);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            _ => prop_assert!(false, "a no-op tracer must not change the outcome"),
        }
    }
}
